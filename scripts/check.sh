#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails fastest
# after the expensive build artifacts exist.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Smoke-run the kernel and end-to-end search benches (with real criterion,
# --test runs each closure once; the offline stub just times a short run)
# so bench-only breakage fails the gate too.
cargo bench -p autohet-bench --bench kernels -- --test >/dev/null
cargo bench -p autohet-bench --bench search -- --test >/dev/null
cargo bench -p autohet-bench --bench noise -- --test >/dev/null
cargo bench -p autohet-bench --bench lifetime -- --test >/dev/null
cargo bench -p autohet-bench --bench serve_scale -- --test >/dev/null
cargo fmt --check
# --all-targets lints tests, examples, and benches too, not just lib code.
cargo clippy --workspace --all-targets -- -D warnings
# The observability crate's docs are part of its API contract.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p autohet-obs

# Observability smoke: the full dump pipeline must run end to end and
# emit every artifact (CI uploads target/obs_smoke for inspection).
cargo run --release -p autohet --example obs_dump -- --smoke --alerts --out target/obs_smoke
for f in trace.jsonl trace.collapsed metrics.txt metrics.jsonl \
         search_episodes.csv search_episodes.jsonl \
         vec_groups.csv vec_groups.jsonl \
         serving_windows.csv serving_windows.jsonl \
         alerts.jsonl alerts.csv stream_episodes.jsonl; do
  [ -s "target/obs_smoke/$f" ] || { echo "missing obs artifact: $f" >&2; exit 1; }
done
# The alert timeline must exercise the full state machine: the engineered
# overload has to both fire and later resolve on simulated time.
grep -q '"kind":"firing"' target/obs_smoke/alerts.jsonl \
  || { echo "alert smoke: no firing transition on the timeline" >&2; exit 1; }
grep -q '"kind":"resolved"' target/obs_smoke/alerts.jsonl \
  || { echo "alert smoke: no resolved transition on the timeline" >&2; exit 1; }

# Perf-regression sentinel (warn mode): compare the committed kernel
# snapshot against itself via the `regress` binary so parser + CLI +
# verdict artifact stay wired, then prove the sentinel actually bites by
# injecting a 25% slowdown and expecting hard mode to fail.
cargo build --release -p autohet-bench --bin regress
target/release/regress --baseline BENCH_kernels.json --current BENCH_kernels.json \
  --out target/regress_verdict.jsonl
grep -q '"kind":"summary"' target/regress_verdict.jsonl \
  || { echo "regress smoke: verdict artifact missing its summary line" >&2; exit 1; }
python3 - <<'PY'
import json
snap = json.load(open("BENCH_kernels.json"))
worst = max(snap["results"], key=lambda n: snap["results"][n])
snap["results"][worst] = int(snap["results"][worst] * 1.25)
json.dump(snap, open("target/BENCH_kernels_injected.json", "w"))
PY
if target/release/regress --baseline BENCH_kernels.json \
     --current target/BENCH_kernels_injected.json --hard >/dev/null; then
  echo "regress smoke: hard mode missed an injected 25% slowdown" >&2; exit 1
fi
# The sentinel also covers the sharded-runtime snapshot's rows.
target/release/regress --baseline BENCH_serve.json --current BENCH_serve.json \
  --out target/regress_serve.jsonl
grep -q '"kind":"summary"' target/regress_serve.jsonl \
  || { echo "regress smoke: serve snapshot missing its summary line" >&2; exit 1; }

# Robustness smoke: the NSGA-II study must run end to end, emit its
# artifacts, and find a noise-robust pick distinct from the noise-blind
# winner (the DESIGN.md §11 acceptance bar).
cargo run --release -p autohet --example robustness_study -- --smoke --out target/robustness_smoke
for f in nsga_front.csv nsga_front.jsonl metrics.txt summary.txt; do
  [ -s "target/robustness_smoke/$f" ] || { echo "missing robustness artifact: $f" >&2; exit 1; }
done
grep -q '^picks_differ: true$' target/robustness_smoke/summary.txt \
  || { echo "robustness smoke: noise-robust pick equals the noise-blind winner" >&2; exit 1; }

# Lifetime smoke: the drift × recovery campaign must run end to end, emit
# its artifacts, and show the full detect → recalibrate → remap cascade
# strictly dominating no-recovery at every nonzero drift rate (the
# DESIGN.md §12 acceptance bar).
cargo run --release -p autohet --example lifetime_study -- --smoke --out target/lifetime_smoke
for f in rows.csv summary.txt; do
  [ -s "target/lifetime_smoke/$f" ] || { echo "missing lifetime artifact: $f" >&2; exit 1; }
done
grep -q '^full_cascade_beats_no_recovery: true$' target/lifetime_smoke/summary.txt \
  || { echo "lifetime smoke: full cascade failed to dominate no-recovery" >&2; exit 1; }

# Sharded-runtime smoke: a scaled-down day of fleet traffic plus the
# engineered burst and drift scenarios must run end to end — the
# autoscaler has to both add and drain replicas, the online strategy
# swap has to fire without losing a request, and every artifact must
# land (CI uploads target/serve_smoke for inspection).
cargo run --release -p autohet --example serve_scale -- --smoke --out target/serve_smoke
for f in summary.txt shard_windows.csv shard_windows.jsonl \
         shard_alerts.jsonl shard_alerts.csv metrics.txt; do
  [ -s "target/serve_smoke/$f" ] || { echo "missing serve artifact: $f" >&2; exit 1; }
done
grep -Eq '^scale_up_events: [1-9]' target/serve_smoke/summary.txt \
  || { echo "serve smoke: autoscaler never scaled up" >&2; exit 1; }
grep -Eq '^scale_down_events: [1-9]' target/serve_smoke/summary.txt \
  || { echo "serve smoke: autoscaler never drained after the burst" >&2; exit 1; }
grep -Eq '^swap_events: [1-9]' target/serve_smoke/summary.txt \
  || { echo "serve smoke: drifting mix never triggered a strategy swap" >&2; exit 1; }
grep -q '^lost_requests: 0$' target/serve_smoke/summary.txt \
  || { echo "serve smoke: the runtime lost requests" >&2; exit 1; }
grep -q '"rule":"serve.scale_up"' target/serve_smoke/shard_alerts.jsonl \
  || { echo "serve smoke: autoscaler rules missing from the alert timeline" >&2; exit 1; }
