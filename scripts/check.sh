#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails fastest
# after the expensive build artifacts exist.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
# --all-targets lints tests, examples, and benches too, not just lib code.
cargo clippy --workspace --all-targets -- -D warnings
