#!/usr/bin/env bash
# Snapshot the kernel micro-benchmarks into BENCH_kernels.json.
#
# The shared CI box is noisy (throttling plus neighbors), so the snapshot
# runs the whole bench group REPS times and keeps the per-benchmark
# MINIMUM — the run least perturbed by outside load. Compare snapshots
# taken on the same machine only.
#
# Usage: scripts/bench_snapshot.sh [reps]   (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
OUT="BENCH_kernels.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

for i in $(seq 1 "$REPS"); do
  echo "bench_snapshot: run $i/$REPS" >&2
  cargo bench -p autohet-bench --bench kernels 2>/dev/null \
    | grep -E '^bench .*: [0-9]+ ns/iter' >>"$TMP" || true
done

python3 - "$TMP" "$OUT" "$REPS" <<'PY'
import json, re, subprocess, sys

tmp, out, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
best = {}
order = []
for line in open(tmp):
    m = re.match(r"bench (.+): (\d+) ns/iter", line)
    if not m:
        continue
    name, ns = m.group(1), int(m.group(2))
    if name not in best:
        order.append(name)
        best[name] = ns
    else:
        best[name] = min(best[name], ns)

if not best:
    sys.exit("bench_snapshot: no benchmark output parsed")

rev = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or "unknown"

snapshot = {
    "bench": "kernels",
    "git_rev": rev,
    "reps": reps,
    "stat": "min_ns_per_iter",
    "results": {name: best[name] for name in order},
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"bench_snapshot: wrote {out} ({len(best)} benchmarks, min of {reps} runs)")
PY
