#!/usr/bin/env bash
# Snapshot benchmark groups into BENCH_*.json files:
#   kernels  → BENCH_kernels.json   (substrate micro-benchmarks)
#   search   → BENCH_search.json    (300-round end-to-end search drivers)
#   noise    → BENCH_noise.json     (device-variation kernels + MC evaluator)
#   lifetime → BENCH_lifetime.json  (drift snapshots + degraded epoch evals)
#   serve    → BENCH_serve.json     (sharded runtime: a simulated day of
#                                    fleet traffic, scan vs heap scheduler)
#
# The shared CI box is noisy (throttling plus neighbors), so each snapshot
# runs its whole bench group REPS times — sequential and vectorized search
# runs interleave within every rep — and keeps the per-benchmark MINIMUM,
# the run least perturbed by outside load. Compare snapshots taken on the
# same machine only. The search snapshot derives episodes/sec and the
# speed-up of every driver over the sequential baseline in its group.
#
# Usage: scripts/bench_snapshot.sh [reps] [bench ...]   (default: 5, all)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
shift || true
if [ $# -eq 0 ]; then BENCHES=(kernels search noise lifetime serve); else BENCHES=("$@"); fi

snapshot() {
  local bench="$1" out="$2"
  local tmp
  tmp="$(mktemp)"
  for i in $(seq 1 "$REPS"); do
    echo "bench_snapshot[$bench]: run $i/$REPS" >&2
    cargo bench -p autohet-bench --bench "$bench" 2>/dev/null \
      | grep -E '^(bench .*: [0-9]+ ns/iter|serve_meta .*)' >>"$tmp" || true
  done
  python3 - "$tmp" "$out" "$REPS" "$bench" <<'PY'
import json, re, subprocess, sys

tmp, out, reps, bench = sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]
best = {}
order = []
for line in open(tmp):
    m = re.match(r"bench (.+): (\d+) ns/iter", line)
    if not m:
        continue
    name, ns = m.group(1), int(m.group(2))
    if name not in best:
        order.append(name)
        best[name] = ns
    else:
        best[name] = min(best[name], ns)

if not best:
    sys.exit(f"bench_snapshot[{bench}]: no benchmark output parsed")

rev = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or "unknown"

snapshot = {
    "bench": bench,
    "git_rev": rev,
    "reps": reps,
    "stat": "min_ns_per_iter",
    "results": {name: best[name] for name in order},
}

if bench == "search":
    # Each search/<group>/<driver> bench runs a full 300-episode search;
    # derive episodes/sec and each driver's speed-up over its group's
    # sequential baseline.
    EPISODES = 300
    derived = {}
    for name in order:
        m = re.match(r"(search/[^/]+)/(.+)", name)
        if not m:
            continue
        group, driver = m.groups()
        ns = best[name]
        row = {"ns_per_search": ns, "episodes_per_sec": round(EPISODES / (ns * 1e-9), 1)}
        seq = best.get(f"{group}/seq")
        if seq is not None:
            row["speedup_vs_seq"] = round(seq / ns, 2)
        derived.setdefault(group, {})[driver] = row
    snapshot["episodes"] = EPISODES
    snapshot["derived"] = derived

if bench == "noise":
    # The packed variation MVM must beat the dense f64 fallback it
    # replaces (DESIGN.md §11 acceptance: ≥3×); derive the speed-ups so
    # the snapshot records the claim directly.
    fast = best.get("noise/variation_mvm/fast_108x64")
    derived = {}
    for other in ("dense", "scalar", "ideal"):
        ns = best.get(f"noise/variation_mvm/{other}_108x64")
        if fast and ns:
            derived[f"speedup_fast_vs_{other}"] = round(ns / fast, 2)
    snapshot["derived"] = derived

if bench == "serve_scale":
    # Headline claim of the sharded runtime (DESIGN.md §14 acceptance:
    # ≥3×): the 8-shard heap scheduler must beat the 1-shard linear-scan
    # reference on the same simulated day of fleet traffic. The bench's
    # serve_meta line records the workload scale the claim was earned on.
    derived = {}
    scan1 = best.get("serve/day/scan_shard1")
    heap1 = best.get("serve/day/heap_shard1")
    heap8 = best.get("serve/day/heap_shard8")
    if scan1 and heap8:
        derived["speedup_heap8_vs_scan1"] = round(scan1 / heap8, 2)
    if scan1 and heap1:
        derived["speedup_heap1_vs_scan1"] = round(scan1 / heap1, 2)
    for line in open(tmp):
        m = re.match(r"serve_meta (.+)", line)
        if m:
            for kv in m.group(1).split():
                k, v = kv.split("=", 1)
                derived[k] = int(v)
            break
    snapshot["derived"] = derived

if bench == "lifetime":
    # The per-epoch memo is the campaign's speed lever: a warm epoch
    # (revisited for another recovery arm) must be much cheaper than the
    # cold one that pays the cascade plus the Monte-Carlo slices.
    cold = best.get("lifetime/degraded_eval/micro_cnn_cold")
    warm = best.get("lifetime/degraded_eval/micro_cnn_warm")
    if cold and warm:
        snapshot["derived"] = {"speedup_warm_vs_cold": round(cold / warm, 2)}

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"bench_snapshot[{bench}]: wrote {out} ({len(best)} benchmarks, min of {reps} runs)")
PY
  rm -f "$tmp"
}

for b in "${BENCHES[@]}"; do
  case "$b" in
    kernels) snapshot kernels BENCH_kernels.json ;;
    search) snapshot search BENCH_search.json ;;
    noise) snapshot noise BENCH_noise.json ;;
    lifetime) snapshot lifetime BENCH_lifetime.json ;;
    serve) snapshot serve_scale BENCH_serve.json ;;
    *) echo "bench_snapshot: unknown bench '$b' (kernels|search|noise|lifetime|serve)" >&2; exit 1 ;;
  esac
done

# Combined index over every snapshot present on disk, so the regression
# sentinel (and humans) can discover the full set from one file.
python3 - <<'PY'
import glob, json

index = {"stat": "min_ns_per_iter", "snapshots": {}}
for path in sorted(glob.glob("BENCH_*.json")):
    if path == "BENCH_index.json":
        continue
    with open(path) as f:
        snap = json.load(f)
    index["snapshots"][snap["bench"]] = {
        "file": path,
        "git_rev": snap.get("git_rev", "unknown"),
        "reps": snap.get("reps", 0),
        "benchmarks": len(snap.get("results", {})),
    }
with open("BENCH_index.json", "w") as f:
    json.dump(index, f, indent=2)
    f.write("\n")
print(f"bench_snapshot: wrote BENCH_index.json ({len(index['snapshots'])} snapshots)")
PY
