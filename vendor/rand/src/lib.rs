//! Offline stand-in for `rand` 0.8 covering the surface this workspace
//! uses: `SmallRng` (xoshiro256++ seeded via SplitMix64, matching the
//! upstream `small_rng` feature on 64-bit targets), `Rng::gen` for the
//! primitive types, and `Rng::gen_range` over integer and float ranges
//! (Lemire widening-multiply rejection for integers, the `[1, 2)`
//! mantissa trick for floats — the same algorithms rand 0.8 uses, so
//! streams are stable and uniform).

use core::ops::{Range, RangeInclusive};

/// Core entropy source: 32/64-bit outputs.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range. The
    /// output type is a free parameter (as in rand 0.8) so untyped
    /// literals in the range adopt the expected type.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — what `rand 0.8`'s `SmallRng` is on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core's seed_from_u64.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// The standard distribution for a primitive type.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! std_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
std_from_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! std_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_from_u64!(u64, i64, usize, isize);

impl Standard for f64 {
    /// 53 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// 24 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

/// A range a uniform sample of `T` can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Lemire widening-multiply rejection, bit-faithful to rand 0.8's
/// `UniformInt::sample_single`: uniform in `[0, span)` drawing one u32;
/// `span == 0` means the full 2^32 domain. `exact_zone` is true for
/// types ≤ 16 bits (rand computes the exact rejection zone there).
#[inline]
fn uniform_u32<R: RngCore>(rng: &mut R, span: u32, exact_zone: bool) -> u32 {
    if span == 0 {
        return rng.next_u32();
    }
    let zone = if exact_zone {
        let ints_to_reject = (u32::MAX - span + 1) % span;
        u32::MAX - ints_to_reject
    } else {
        (span << span.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let wide = (v as u64) * (span as u64);
        if (wide as u32) <= zone {
            return (wide >> 32) as u32;
        }
    }
}

/// 64-bit variant of [`uniform_u32`]; `span == 0` means the full 2^64
/// domain.
#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (span as u128);
        if (wide as u64) <= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_uniform_32 {
    ($($t:ty => $u:ty, $exact:expr);*$(;)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u32;
                lo.wrapping_add(uniform_u32(rng, span, $exact) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as $u as u32).wrapping_add(1);
                lo.wrapping_add(uniform_u32(rng, span, $exact) as $t)
            }
        }
    )*};
}
int_uniform_32!(u8 => u8, true; u16 => u16, true; u32 => u32, false;
                i8 => u8, true; i16 => u16, true; i32 => u32, false);

macro_rules! int_uniform_64 {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
int_uniform_64!(u64 => u64, usize => usize, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    /// rand 0.8's `UniformFloat`: a value in `[1, 2)` from 52 random
    /// mantissa bits, shifted into the range.
    #[inline]
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        (value1_2 - 1.0) * (hi - lo) + lo
    }
    /// Inclusive variant: the scale is stretched by `1 / (1 - ε/2)` so
    /// the maximum mantissa draw lands exactly on `hi` (as rand 0.8).
    #[inline]
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let scale = (hi - lo) / (1.0 - f64::EPSILON / 2.0);
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let res = (value1_2 - 1.0) * scale + lo;
        if res <= hi {
            res
        } else {
            hi
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        (value1_2 - 1.0) * (hi - lo) + lo
    }
    #[inline]
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let scale = (hi - lo) / (1.0 - f32::EPSILON / 2.0);
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        let res = (value1_2 - 1.0) * scale + lo;
        if res <= hi {
            res
        } else {
            hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-127i32..=127);
            assert!((-127..=127).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
