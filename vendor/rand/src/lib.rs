//! Offline stand-in for `rand` 0.8 covering the surface this workspace
//! uses: `SmallRng` (xoshiro256++ seeded via SplitMix64, matching the
//! upstream `small_rng` feature on 64-bit targets), `Rng::gen` for the
//! primitive types, and `Rng::gen_range` over integer and float ranges
//! (Lemire widening-multiply rejection for integers, the `[1, 2)`
//! mantissa trick for floats — the same algorithms rand 0.8 uses, so
//! streams are stable and uniform).

use core::ops::{Range, RangeInclusive};

/// Core entropy source: 32/64-bit outputs.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range. The
    /// output type is a free parameter (as in rand 0.8) so untyped
    /// literals in the range adopt the expected type.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — what `rand 0.8`'s `SmallRng` is on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core's seed_from_u64.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// The standard distribution for a primitive type.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! std_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
std_from_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! std_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_from_u64!(u64, i64, usize, isize);

impl Standard for f64 {
    /// 53 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// 24 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

pub mod distributions {
    //! Seeded sampling distributions, mirroring the `rand::distributions`
    //! surface this workspace uses.
    //!
    //! Divergence from upstream: real `rand`/`rand_distr` samples normals
    //! with a ziggurat algorithm; this stub uses the Box–Muller transform
    //! (cosine branch, exactly two `f64` draws per sample). That is the
    //! same arithmetic `autohet-xbar`'s noise model has always inlined, so
    //! adopting the shared sampler keeps every seeded stream in the
    //! workspace bit-identical — but numbers will differ from real
    //! `rand_distr` streams.

    use crate::{Rng, RngCore};

    /// A distribution values of `T` can be sampled from.
    pub trait Distribution<T> {
        /// Draw one sample using `rng`.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// The standard normal distribution `N(0, 1)`.
    ///
    /// Box–Muller: `z = √(−2 ln u₁) · cos(τ u₂)` with `u₁` clamped away
    /// from zero so the log stays finite. Consumes exactly two `f64`
    /// draws per sample, always.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct StandardNormal;

    impl Distribution<f64> for StandardNormal {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
        }
    }

    /// The log-normal distribution: `ln X ~ N(mu, sigma²)`.
    ///
    /// `LogNormal::new(r.ln(), dev)` gives the multiplicative resistance
    /// spread `R = r · exp(dev · z)` device-variation models use.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct LogNormal {
        mu: f64,
        sigma: f64,
    }

    impl LogNormal {
        /// Distribution of `exp(mu + sigma · z)`, `z ~ N(0, 1)`;
        /// `sigma` must be non-negative and both parameters finite.
        pub fn new(mu: f64, sigma: f64) -> Self {
            assert!(
                mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
                "invalid LogNormal(mu={mu}, sigma={sigma})"
            );
            LogNormal { mu, sigma }
        }

        /// Location parameter (mean of `ln X`).
        pub fn mu(&self) -> f64 {
            self.mu
        }

        /// Scale parameter (std-dev of `ln X`).
        pub fn sigma(&self) -> f64 {
            self.sigma
        }
    }

    impl Distribution<f64> for LogNormal {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
        }
    }
}

/// A range a uniform sample of `T` can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Lemire widening-multiply rejection, bit-faithful to rand 0.8's
/// `UniformInt::sample_single`: uniform in `[0, span)` drawing one u32;
/// `span == 0` means the full 2^32 domain. `exact_zone` is true for
/// types ≤ 16 bits (rand computes the exact rejection zone there).
#[inline]
fn uniform_u32<R: RngCore>(rng: &mut R, span: u32, exact_zone: bool) -> u32 {
    if span == 0 {
        return rng.next_u32();
    }
    let zone = if exact_zone {
        let ints_to_reject = (u32::MAX - span + 1) % span;
        u32::MAX - ints_to_reject
    } else {
        (span << span.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let wide = (v as u64) * (span as u64);
        if (wide as u32) <= zone {
            return (wide >> 32) as u32;
        }
    }
}

/// 64-bit variant of [`uniform_u32`]; `span == 0` means the full 2^64
/// domain.
#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (span as u128);
        if (wide as u64) <= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_uniform_32 {
    ($($t:ty => $u:ty, $exact:expr);*$(;)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u32;
                lo.wrapping_add(uniform_u32(rng, span, $exact) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as $u as u32).wrapping_add(1);
                lo.wrapping_add(uniform_u32(rng, span, $exact) as $t)
            }
        }
    )*};
}
int_uniform_32!(u8 => u8, true; u16 => u16, true; u32 => u32, false;
                i8 => u8, true; i16 => u16, true; i32 => u32, false);

macro_rules! int_uniform_64 {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
int_uniform_64!(u64 => u64, usize => usize, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    /// rand 0.8's `UniformFloat`: a value in `[1, 2)` from 52 random
    /// mantissa bits, shifted into the range.
    #[inline]
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        (value1_2 - 1.0) * (hi - lo) + lo
    }
    /// Inclusive variant: the scale is stretched by `1 / (1 - ε/2)` so
    /// the maximum mantissa draw lands exactly on `hi` (as rand 0.8).
    #[inline]
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let scale = (hi - lo) / (1.0 - f64::EPSILON / 2.0);
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let res = (value1_2 - 1.0) * scale + lo;
        if res <= hi {
            res
        } else {
            hi
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        (value1_2 - 1.0) * (hi - lo) + lo
    }
    #[inline]
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let scale = (hi - lo) / (1.0 - f32::EPSILON / 2.0);
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        let res = (value1_2 - 1.0) * scale + lo;
        if res <= hi {
            res
        } else {
            hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_stream_is_stable_and_matches_inline_box_muller() {
        use crate::distributions::{Distribution, StandardNormal};
        // Two RNGs on the same seed: the sampler stream must match a
        // hand-inlined Box–Muller consuming the identical two draws per
        // sample — the contract that lets dependent crates refactor their
        // inline normal math onto this sampler without moving any seeded
        // stream.
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..256 {
            let z = StandardNormal.sample(&mut a);
            let u1: f64 = b.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = b.gen();
            let want = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
            assert_eq!(z.to_bits(), want.to_bits());
        }
        // And the stream itself is reproducible across constructions.
        let mut c = SmallRng::seed_from_u64(99);
        let first = StandardNormal.sample(&mut c);
        let mut d = SmallRng::seed_from_u64(99);
        assert_eq!(first.to_bits(), StandardNormal.sample(&mut d).to_bits());
    }

    #[test]
    fn normal_moments_are_plausible() {
        use crate::distributions::{Distribution, StandardNormal};
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn lognormal_is_exp_of_scaled_normal() {
        use crate::distributions::{Distribution, LogNormal, StandardNormal};
        let d = LogNormal::new(2500.0_f64.ln(), 0.18);
        assert_eq!(d.mu(), 2500.0_f64.ln());
        assert_eq!(d.sigma(), 0.18);
        let mut a = SmallRng::seed_from_u64(13);
        let mut b = SmallRng::seed_from_u64(13);
        for _ in 0..128 {
            let x = d.sample(&mut a);
            let want = (d.mu() + d.sigma() * StandardNormal.sample(&mut b)).exp();
            assert_eq!(x.to_bits(), want.to_bits());
            assert!(x > 0.0);
        }
        // Zero sigma degenerates to the point mass exp(mu).
        let point = LogNormal::new(3.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(point.sample(&mut rng), 3.0_f64.exp());
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_negative_sigma() {
        let _ = crate::distributions::LogNormal::new(0.0, -0.1);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-127i32..=127);
            assert!((-127..=127).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
