//! Offline stand-in for `proptest` 1.x covering the surface this
//! workspace uses: the `proptest!` macro, range / tuple / `Just` /
//! `prop_oneof!` / `collection::vec` / `sample::select` strategies,
//! `.prop_map`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the sampled inputs unshrunk), and the per-test RNG is seeded from
//! the test name so runs are deterministic — which suits this repo's
//! "identical invocations produce identical results" policy.

pub mod test_runner {
    /// Subset of proptest's `Config`: only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// xoshiro256++ seeded from an FNV-1a hash of the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform in `[0, span)` via widening-multiply rejection;
        /// `span == 0` means the full 64-bit domain.
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                return self.next_u64();
            }
            let zone = (span << span.leading_zeros()).wrapping_sub(1);
            loop {
                let v = self.next_u64();
                let wide = (v as u128) * (span as u128);
                if (wide as u64) <= zone {
                    return (wide >> 64) as u64;
                }
            }
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A generator of values. Object-safe: combinators require `Sized`.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { s: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample_value(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.s.sample_value(rng))
        }
    }

    /// Uniform choice among strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice from a non-empty list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_tuples_and_maps_compose(
            (a, b) in (1usize..=8, 0u32..5).prop_map(|(x, y)| (x * 2, y)),
            v in prop::collection::vec(0usize..10, 2..6),
            pick in prop::sample::select(vec![3u32, 5, 7]),
            flag in any::<bool>(),
            w in prop_oneof![Just(1u8), Just(2)],
        ) {
            prop_assert!((2..=16).contains(&a) && a % 2 == 0);
            prop_assert!(b < 5);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!([3u32, 5, 7].contains(&pick));
            prop_assert!(flag || !flag);
            prop_assert!(w == 1 || w == 2);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
