//! Offline stand-in for `crossbeam`: the workspace only uses
//! `crossbeam::thread::scope` + `Scope::spawn`, which map directly onto
//! `std::thread::scope` (stable since 1.63). The crossbeam API differs
//! in two ways this shim preserves: the spawned closure receives a
//! `&Scope` argument (for nested spawns), and `scope` returns a
//! `Result` that is `Err` when a spawned child panicked. As in
//! upstream crossbeam, a panic in the scope *body* itself is not
//! converted to `Err` — children are joined first, then the body's
//! panic resumes unwinding in the caller.
//! See `vendor/README.md` for why this stub exists.

pub mod thread {
    use std::any::Any;

    /// Wrapper over `std::thread::Scope` exposing crossbeam's
    /// closure-takes-scope spawn signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let sub = Scope { inner: inner_scope };
                    f(&sub)
                }),
            }
        }
    }

    /// Run `f` with a scope all of whose spawned threads are joined
    /// before this returns. `Err` carries a panic payload when an
    /// unjoined child thread panicked (crossbeam semantics). A panic
    /// in the scope body itself is re-raised after the children are
    /// joined, exactly as upstream crossbeam does — it never becomes
    /// an `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut body_panic: Option<Box<dyn Any + Send + 'static>> = None;
        let scope_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&wrapper))) {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        // Hold the payload until every child has been
                        // joined by the std scope, then resume below.
                        body_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        if let Some(payload) = body_panic {
            std::panic::resume_unwind(payload);
        }
        match scope_result {
            Ok(Some(r)) => Ok(r),
            // `None` without a stored body panic is unreachable, but a
            // stub should not panic in an impossible branch either.
            Ok(None) => unreachable!("scope body result lost"),
            Err(child_payload) => Err(child_payload),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let mut out = vec![0u32; 4];
        super::thread::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn body_panic_resumes_unwinding_not_err() {
        // Upstream crossbeam re-raises a scope-body panic after joining
        // children instead of folding it into the Err return.
        let caught = std::panic::catch_unwind(|| {
            let _ = super::thread::scope(|_s| -> u32 { panic!("body") });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn explicit_join_recovers_child_panic() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("child"));
            h.join().is_err()
        });
        assert_eq!(r.ok(), Some(true));
    }
}
