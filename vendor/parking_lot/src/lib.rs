//! Offline stand-in for `parking_lot`: `Mutex` and `Condvar` with the
//! parking_lot API shape (non-poisoning `lock()` returning the guard
//! directly, `Condvar::wait(&mut guard)`), backed by `std::sync`.
//! Poison errors are unwrapped into the inner guard so a panicked
//! worker doesn't cascade into unrelated lock sites — parking_lot has
//! no poisoning at all.
//!
//! Known divergence from upstream: `notify_one`/`notify_all` return
//! `()` instead of `bool`/`usize` — std cannot report wakeup counts,
//! so the misleading return values are removed rather than faked.
//! See `vendor/README.md` for why this stub exists.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard invariant")
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter. Unlike `parking_lot`, this returns `()` rather
    /// than `bool`: `std::sync::Condvar` cannot report whether a thread
    /// was actually woken, and a hardcoded value would be a lie.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters. Unlike `parking_lot`, this returns `()` rather
    /// than the number of woken threads: `std::sync::Condvar` cannot
    /// count wakeups, and a hardcoded value would be a lie. Code that
    /// needs the count cannot use this stub.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condvar_roundtrip() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                *g = 1;
                cv.notify_all();
            });
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            assert_eq!(*g, 1);
        });
    }
}
