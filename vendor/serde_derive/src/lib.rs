//! Offline stand-in for `serde_derive` — **the derives are no-ops**.
//! They emit an empty `TokenStream`: no `Serialize`/`Deserialize`
//! impls are generated and every `#[serde(...)]` attribute is
//! swallowed. This is survivable only because the workspace never
//! *uses* the serde traits (no bounds, no (de)serializer calls) — and
//! the sibling `vendor/serde` stub does not even define the traits, so
//! any such use is a compile error, not a silent behavior change.
//! `crates/autohet/tests/serde_stub_guard.rs` pins both halves of that
//! contract. See `vendor/README.md`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
