//! Offline stand-in for `serde` 1.x — **serialization is disabled**.
//!
//! This stub re-exports no-op `Serialize`/`Deserialize` derive macros
//! and nothing else. The workspace derives the serde traits on its
//! public report/model types only for forward compatibility with
//! downstream consumers; all persistence in this repo goes through its
//! own hand-rolled writers (`autohet::persist`, `autohet-obs` JSONL/CSV
//! exporters), so no serde trait machinery is ever exercised.
//!
//! Guard against silent misuse: this crate deliberately does **not**
//! define the `Serialize`/`Deserialize` *traits*. Any code that adds a
//! trait bound (`T: serde::Serialize`), calls a serializer, or pulls in
//! `serde_json` fails to **compile** against this stub — the breakage
//! is loud, never a silent behavior change. The workspace additionally
//! pins this contract with a test (`tests/serde_stub_guard.rs` in
//! `crates/autohet`) that fails if the stub ever grows a trait surface.
//!
//! To restore real serialization: delete the `[patch.crates-io]` block
//! in the workspace `Cargo.toml` on a machine with crates.io access.
//! See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};
