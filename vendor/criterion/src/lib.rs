//! Offline stand-in for `criterion` 0.5 with the API surface this
//! workspace's benches use. Two modes, decided from the process args:
//!
//! - bench mode (`--bench` present, no `--test`): each benchmark is
//!   timed over `sample_size` samples and the per-iteration minimum is
//!   printed as `bench <name>: <N> ns/iter` — the line format
//!   `scripts/bench_snapshot.sh` parses.
//! - test mode (`--test` present, or run under `cargo test`): every
//!   benchmark closure runs exactly once, untimed, so bench-only
//!   breakage still fails fast.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Nanoseconds a single timing sample aims to cover.
const SAMPLE_TARGET_NS: u64 = 2_000_000;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let bench_mode =
            args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            bench_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Upstream re-parses CLI flags here; the stub already did in
    /// `default()`, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.bench_mode, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            bench_mode: self.bench_mode,
            _c: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    bench_mode: bool,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Throughput annotation — recorded by upstream's reports, inert here.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_bench(&full, self.sample_size, self.bench_mode, f);
        self
    }

    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_bench(&full, self.sample_size, self.bench_mode, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

enum Mode {
    /// Run the closure body once, untimed.
    Once,
    /// Time `iters` iterations into `elapsed_ns`.
    Timed { iters: u64 },
}

pub struct Bencher {
    mode: Mode,
    elapsed_ns: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
            }
            Mode::Timed { iters } => {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.elapsed_ns = t.elapsed().as_nanos() as u64;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, bench_mode: bool, mut f: F) {
    if !bench_mode {
        let mut b = Bencher {
            mode: Mode::Once,
            elapsed_ns: 0,
        };
        f(&mut b);
        return;
    }
    // Calibrate: one timed iteration estimates the per-iter cost.
    let mut b = Bencher {
        mode: Mode::Timed { iters: 1 },
        elapsed_ns: 0,
    };
    f(&mut b);
    let est = b.elapsed_ns.max(1);
    let iters = (SAMPLE_TARGET_NS / est).clamp(1, 1_000_000);
    // Keep the minimum per-iter time across samples — least perturbed
    // by outside load (matches the snapshot protocol in scripts/).
    let mut best = est;
    for _ in 0..sample_size {
        b.mode = Mode::Timed { iters };
        b.elapsed_ns = 0;
        f(&mut b);
        best = best.min(b.elapsed_ns / iters.max(1));
    }
    println!("bench {name}: {best} ns/iter");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once_and_prints_nothing() {
        let mut count = 0;
        run_bench("t", 10, false, |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_mode_times_samples() {
        let mut calls = 0u64;
        run_bench("t", 3, true, |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1))
        });
        assert_eq!(calls, 4); // 1 calibration + 3 samples
    }
}
