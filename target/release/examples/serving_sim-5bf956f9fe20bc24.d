/root/repo/target/release/examples/serving_sim-5bf956f9fe20bc24.d: crates/autohet/../../examples/serving_sim.rs

/root/repo/target/release/examples/serving_sim-5bf956f9fe20bc24: crates/autohet/../../examples/serving_sim.rs

crates/autohet/../../examples/serving_sim.rs:
