/root/repo/target/release/deps/crossbeam-f2253ab5a6d7bfcf.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f2253ab5a6d7bfcf.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f2253ab5a6d7bfcf.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
