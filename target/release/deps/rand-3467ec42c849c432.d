/root/repo/target/release/deps/rand-3467ec42c849c432.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-3467ec42c849c432.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-3467ec42c849c432.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
