/root/repo/target/release/deps/autohet_rl-4d8463861a25ccdc.d: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

/root/repo/target/release/deps/libautohet_rl-4d8463861a25ccdc.rlib: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

/root/repo/target/release/deps/libautohet_rl-4d8463861a25ccdc.rmeta: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

crates/rl/src/lib.rs:
crates/rl/src/ddpg.rs:
crates/rl/src/dqn.rs:
crates/rl/src/env.rs:
crates/rl/src/matrix.rs:
crates/rl/src/nn.rs:
crates/rl/src/noise.rs:
crates/rl/src/replay.rs:
