/root/repo/target/release/deps/serde_derive-5e1ea3d111856e93.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5e1ea3d111856e93.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
