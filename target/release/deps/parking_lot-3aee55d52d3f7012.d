/root/repo/target/release/deps/parking_lot-3aee55d52d3f7012.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3aee55d52d3f7012.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3aee55d52d3f7012.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
