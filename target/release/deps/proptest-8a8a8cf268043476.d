/root/repo/target/release/deps/proptest-8a8a8cf268043476.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-8a8a8cf268043476.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-8a8a8cf268043476.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
