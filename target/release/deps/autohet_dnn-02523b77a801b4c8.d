/root/repo/target/release/deps/autohet_dnn-02523b77a801b4c8.d: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libautohet_dnn-02523b77a801b4c8.rlib: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libautohet_dnn-02523b77a801b4c8.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dataset.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/metrics.rs:
crates/dnn/src/model.rs:
crates/dnn/src/ops.rs:
crates/dnn/src/quant.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/zoo.rs:
