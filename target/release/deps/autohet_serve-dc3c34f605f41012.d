/root/repo/target/release/deps/autohet_serve-dc3c34f605f41012.d: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libautohet_serve-dc3c34f605f41012.rlib: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libautohet_serve-dc3c34f605f41012.rmeta: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/deploy.rs:
crates/serve/src/parallel.rs:
crates/serve/src/report.rs:
crates/serve/src/sim.rs:
crates/serve/src/workload.rs:
