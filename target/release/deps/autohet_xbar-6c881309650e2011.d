/root/repo/target/release/deps/autohet_xbar-6c881309650e2011.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/area.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/dac.rs crates/xbar/src/energy.rs crates/xbar/src/geometry.rs crates/xbar/src/latency.rs crates/xbar/src/noise.rs crates/xbar/src/program_cost.rs crates/xbar/src/utilization.rs

/root/repo/target/release/deps/libautohet_xbar-6c881309650e2011.rlib: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/area.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/dac.rs crates/xbar/src/energy.rs crates/xbar/src/geometry.rs crates/xbar/src/latency.rs crates/xbar/src/noise.rs crates/xbar/src/program_cost.rs crates/xbar/src/utilization.rs

/root/repo/target/release/deps/libautohet_xbar-6c881309650e2011.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/area.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/dac.rs crates/xbar/src/energy.rs crates/xbar/src/geometry.rs crates/xbar/src/latency.rs crates/xbar/src/noise.rs crates/xbar/src/program_cost.rs crates/xbar/src/utilization.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/area.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/dac.rs:
crates/xbar/src/energy.rs:
crates/xbar/src/geometry.rs:
crates/xbar/src/latency.rs:
crates/xbar/src/noise.rs:
crates/xbar/src/program_cost.rs:
crates/xbar/src/utilization.rs:
