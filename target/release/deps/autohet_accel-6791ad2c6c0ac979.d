/root/repo/target/release/deps/autohet_accel-6791ad2c6c0ac979.d: crates/accel/src/lib.rs crates/accel/src/alloc.rs crates/accel/src/controller.rs crates/accel/src/engine.rs crates/accel/src/hierarchy.rs crates/accel/src/mapping.rs crates/accel/src/metrics.rs crates/accel/src/noc.rs crates/accel/src/pipeline.rs crates/accel/src/tile_shared.rs

/root/repo/target/release/deps/libautohet_accel-6791ad2c6c0ac979.rlib: crates/accel/src/lib.rs crates/accel/src/alloc.rs crates/accel/src/controller.rs crates/accel/src/engine.rs crates/accel/src/hierarchy.rs crates/accel/src/mapping.rs crates/accel/src/metrics.rs crates/accel/src/noc.rs crates/accel/src/pipeline.rs crates/accel/src/tile_shared.rs

/root/repo/target/release/deps/libautohet_accel-6791ad2c6c0ac979.rmeta: crates/accel/src/lib.rs crates/accel/src/alloc.rs crates/accel/src/controller.rs crates/accel/src/engine.rs crates/accel/src/hierarchy.rs crates/accel/src/mapping.rs crates/accel/src/metrics.rs crates/accel/src/noc.rs crates/accel/src/pipeline.rs crates/accel/src/tile_shared.rs

crates/accel/src/lib.rs:
crates/accel/src/alloc.rs:
crates/accel/src/controller.rs:
crates/accel/src/engine.rs:
crates/accel/src/hierarchy.rs:
crates/accel/src/mapping.rs:
crates/accel/src/metrics.rs:
crates/accel/src/noc.rs:
crates/accel/src/pipeline.rs:
crates/accel/src/tile_shared.rs:
