/root/repo/target/release/deps/serde-50d2753d0cded598.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-50d2753d0cded598.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-50d2753d0cded598.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
