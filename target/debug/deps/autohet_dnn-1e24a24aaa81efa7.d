/root/repo/target/debug/deps/autohet_dnn-1e24a24aaa81efa7.d: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_dnn-1e24a24aaa81efa7.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs Cargo.toml

crates/dnn/src/lib.rs:
crates/dnn/src/dataset.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/metrics.rs:
crates/dnn/src/model.rs:
crates/dnn/src/ops.rs:
crates/dnn/src/quant.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
