/root/repo/target/debug/deps/repro-7c564e8a95289d34.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7c564e8a95289d34: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
