/root/repo/target/debug/deps/integration_inference-54649e13cbb25615.d: crates/autohet/../../tests/integration_inference.rs

/root/repo/target/debug/deps/integration_inference-54649e13cbb25615: crates/autohet/../../tests/integration_inference.rs

crates/autohet/../../tests/integration_inference.rs:
