/root/repo/target/debug/deps/kernels-0254150bf30806f1.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-0254150bf30806f1.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
