/root/repo/target/debug/deps/repro-02a10990f77d7de4.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-02a10990f77d7de4.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
