/root/repo/target/debug/deps/repro-691906924d0b3155.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-691906924d0b3155: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
