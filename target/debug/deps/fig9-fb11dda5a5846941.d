/root/repo/target/debug/deps/fig9-fb11dda5a5846941.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-fb11dda5a5846941.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
