/root/repo/target/debug/deps/fig3-139d770af82cdcf1.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-139d770af82cdcf1.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
