/root/repo/target/debug/deps/integration_mapping-6f67025d38b2c78b.d: crates/autohet/../../tests/integration_mapping.rs

/root/repo/target/debug/deps/integration_mapping-6f67025d38b2c78b: crates/autohet/../../tests/integration_mapping.rs

crates/autohet/../../tests/integration_mapping.rs:
