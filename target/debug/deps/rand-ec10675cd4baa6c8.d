/root/repo/target/debug/deps/rand-ec10675cd4baa6c8.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ec10675cd4baa6c8.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ec10675cd4baa6c8.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
