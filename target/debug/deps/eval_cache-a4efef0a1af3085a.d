/root/repo/target/debug/deps/eval_cache-a4efef0a1af3085a.d: crates/bench/benches/eval_cache.rs Cargo.toml

/root/repo/target/debug/deps/libeval_cache-a4efef0a1af3085a.rmeta: crates/bench/benches/eval_cache.rs Cargo.toml

crates/bench/benches/eval_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
