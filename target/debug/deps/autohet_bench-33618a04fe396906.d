/root/repo/target/debug/deps/autohet_bench-33618a04fe396906.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautohet_bench-33618a04fe396906.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautohet_bench-33618a04fe396906.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
