/root/repo/target/debug/deps/repro-13e7d16577786612.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-13e7d16577786612: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
