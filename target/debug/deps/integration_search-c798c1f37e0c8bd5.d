/root/repo/target/debug/deps/integration_search-c798c1f37e0c8bd5.d: crates/autohet/../../tests/integration_search.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_search-c798c1f37e0c8bd5.rmeta: crates/autohet/../../tests/integration_search.rs Cargo.toml

crates/autohet/../../tests/integration_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
