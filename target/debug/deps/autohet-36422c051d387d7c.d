/root/repo/target/debug/deps/autohet-36422c051d387d7c.d: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs

/root/repo/target/debug/deps/autohet-36422c051d387d7c: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs

crates/autohet/src/lib.rs:
crates/autohet/src/ablation.rs:
crates/autohet/src/env.rs:
crates/autohet/src/homogeneous.rs:
crates/autohet/src/multi_model.rs:
crates/autohet/src/par.rs:
crates/autohet/src/pareto.rs:
crates/autohet/src/persist.rs:
crates/autohet/src/search/mod.rs:
crates/autohet/src/search/annealing.rs:
crates/autohet/src/search/dqn.rs:
crates/autohet/src/search/exhaustive.rs:
crates/autohet/src/search/greedy.rs:
crates/autohet/src/search/random.rs:
crates/autohet/src/search/rl.rs:
crates/autohet/src/sensitivity.rs:
crates/autohet/src/studies.rs:
