/root/repo/target/debug/deps/autohet_bench-839063f9d5269abd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautohet_bench-839063f9d5269abd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautohet_bench-839063f9d5269abd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
