/root/repo/target/debug/deps/autohet_xbar-4e3d0cb563245610.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/area.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/dac.rs crates/xbar/src/energy.rs crates/xbar/src/geometry.rs crates/xbar/src/latency.rs crates/xbar/src/noise.rs crates/xbar/src/program_cost.rs crates/xbar/src/utilization.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_xbar-4e3d0cb563245610.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/area.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/dac.rs crates/xbar/src/energy.rs crates/xbar/src/geometry.rs crates/xbar/src/latency.rs crates/xbar/src/noise.rs crates/xbar/src/program_cost.rs crates/xbar/src/utilization.rs Cargo.toml

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/area.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/dac.rs:
crates/xbar/src/energy.rs:
crates/xbar/src/geometry.rs:
crates/xbar/src/latency.rs:
crates/xbar/src/noise.rs:
crates/xbar/src/program_cost.rs:
crates/xbar/src/utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
