/root/repo/target/debug/deps/serde-ed312723de7e9602.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ed312723de7e9602.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
