/root/repo/target/debug/deps/autohet_bench-e1d431ae57f29fd7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_bench-e1d431ae57f29fd7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
