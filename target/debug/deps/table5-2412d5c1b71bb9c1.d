/root/repo/target/debug/deps/table5-2412d5c1b71bb9c1.d: crates/bench/benches/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-2412d5c1b71bb9c1.rmeta: crates/bench/benches/table5.rs Cargo.toml

crates/bench/benches/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
