/root/repo/target/debug/deps/rand-ee35b31c24501ef0.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ee35b31c24501ef0.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
