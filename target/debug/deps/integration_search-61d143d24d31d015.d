/root/repo/target/debug/deps/integration_search-61d143d24d31d015.d: crates/autohet/../../tests/integration_search.rs

/root/repo/target/debug/deps/integration_search-61d143d24d31d015: crates/autohet/../../tests/integration_search.rs

crates/autohet/../../tests/integration_search.rs:
