/root/repo/target/debug/deps/integration_search-35b9ea0968adaaaf.d: crates/autohet/../../tests/integration_search.rs

/root/repo/target/debug/deps/integration_search-35b9ea0968adaaaf: crates/autohet/../../tests/integration_search.rs

crates/autohet/../../tests/integration_search.rs:
