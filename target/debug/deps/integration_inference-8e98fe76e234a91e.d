/root/repo/target/debug/deps/integration_inference-8e98fe76e234a91e.d: crates/autohet/../../tests/integration_inference.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_inference-8e98fe76e234a91e.rmeta: crates/autohet/../../tests/integration_inference.rs Cargo.toml

crates/autohet/../../tests/integration_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
