/root/repo/target/debug/deps/autohet_serve-913ec1f8b0e0d4c3.d: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/autohet_serve-913ec1f8b0e0d4c3: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/deploy.rs:
crates/serve/src/parallel.rs:
crates/serve/src/report.rs:
crates/serve/src/sim.rs:
crates/serve/src/workload.rs:
