/root/repo/target/debug/deps/autohet-8aa3561f501ed1cf.d: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs

/root/repo/target/debug/deps/libautohet-8aa3561f501ed1cf.rlib: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs

/root/repo/target/debug/deps/libautohet-8aa3561f501ed1cf.rmeta: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs

crates/autohet/src/lib.rs:
crates/autohet/src/ablation.rs:
crates/autohet/src/env.rs:
crates/autohet/src/homogeneous.rs:
crates/autohet/src/multi_model.rs:
crates/autohet/src/par.rs:
crates/autohet/src/pareto.rs:
crates/autohet/src/persist.rs:
crates/autohet/src/search/mod.rs:
crates/autohet/src/search/annealing.rs:
crates/autohet/src/search/dqn.rs:
crates/autohet/src/search/exhaustive.rs:
crates/autohet/src/search/greedy.rs:
crates/autohet/src/search/random.rs:
crates/autohet/src/search/rl.rs:
crates/autohet/src/sensitivity.rs:
crates/autohet/src/studies.rs:
