/root/repo/target/debug/deps/parking_lot-935f1f4e2f4e865e.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-935f1f4e2f4e865e.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
