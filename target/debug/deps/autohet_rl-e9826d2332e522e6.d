/root/repo/target/debug/deps/autohet_rl-e9826d2332e522e6.d: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

/root/repo/target/debug/deps/autohet_rl-e9826d2332e522e6: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

crates/rl/src/lib.rs:
crates/rl/src/ddpg.rs:
crates/rl/src/dqn.rs:
crates/rl/src/env.rs:
crates/rl/src/matrix.rs:
crates/rl/src/nn.rs:
crates/rl/src/noise.rs:
crates/rl/src/replay.rs:
