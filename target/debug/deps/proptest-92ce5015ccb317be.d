/root/repo/target/debug/deps/proptest-92ce5015ccb317be.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-92ce5015ccb317be.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
