/root/repo/target/debug/deps/criterion-f4a366605a1e188f.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f4a366605a1e188f.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
