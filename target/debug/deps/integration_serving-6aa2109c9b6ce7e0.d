/root/repo/target/debug/deps/integration_serving-6aa2109c9b6ce7e0.d: crates/autohet/../../tests/integration_serving.rs

/root/repo/target/debug/deps/integration_serving-6aa2109c9b6ce7e0: crates/autohet/../../tests/integration_serving.rs

crates/autohet/../../tests/integration_serving.rs:
