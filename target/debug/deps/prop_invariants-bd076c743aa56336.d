/root/repo/target/debug/deps/prop_invariants-bd076c743aa56336.d: crates/autohet/../../tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-bd076c743aa56336: crates/autohet/../../tests/prop_invariants.rs

crates/autohet/../../tests/prop_invariants.rs:
