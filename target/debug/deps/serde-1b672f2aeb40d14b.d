/root/repo/target/debug/deps/serde-1b672f2aeb40d14b.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1b672f2aeb40d14b.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1b672f2aeb40d14b.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
