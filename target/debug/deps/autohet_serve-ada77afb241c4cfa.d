/root/repo/target/debug/deps/autohet_serve-ada77afb241c4cfa.d: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libautohet_serve-ada77afb241c4cfa.rlib: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libautohet_serve-ada77afb241c4cfa.rmeta: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/deploy.rs:
crates/serve/src/parallel.rs:
crates/serve/src/report.rs:
crates/serve/src/sim.rs:
crates/serve/src/workload.rs:
