/root/repo/target/debug/deps/integration_serving-973e509528eacb42.d: crates/autohet/../../tests/integration_serving.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_serving-973e509528eacb42.rmeta: crates/autohet/../../tests/integration_serving.rs Cargo.toml

crates/autohet/../../tests/integration_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
