/root/repo/target/debug/deps/criterion-7575193ed0b110df.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7575193ed0b110df.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7575193ed0b110df.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
