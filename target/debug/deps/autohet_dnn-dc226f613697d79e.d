/root/repo/target/debug/deps/autohet_dnn-dc226f613697d79e.d: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/autohet_dnn-dc226f613697d79e: crates/dnn/src/lib.rs crates/dnn/src/dataset.rs crates/dnn/src/layer.rs crates/dnn/src/metrics.rs crates/dnn/src/model.rs crates/dnn/src/ops.rs crates/dnn/src/quant.rs crates/dnn/src/tensor.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dataset.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/metrics.rs:
crates/dnn/src/model.rs:
crates/dnn/src/ops.rs:
crates/dnn/src/quant.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/zoo.rs:
