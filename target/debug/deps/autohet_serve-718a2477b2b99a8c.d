/root/repo/target/debug/deps/autohet_serve-718a2477b2b99a8c.d: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_serve-718a2477b2b99a8c.rmeta: crates/serve/src/lib.rs crates/serve/src/deploy.rs crates/serve/src/parallel.rs crates/serve/src/report.rs crates/serve/src/sim.rs crates/serve/src/workload.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/deploy.rs:
crates/serve/src/parallel.rs:
crates/serve/src/report.rs:
crates/serve/src/sim.rs:
crates/serve/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
