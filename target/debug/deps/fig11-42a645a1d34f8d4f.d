/root/repo/target/debug/deps/fig11-42a645a1d34f8d4f.d: crates/bench/benches/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-42a645a1d34f8d4f.rmeta: crates/bench/benches/fig11.rs Cargo.toml

crates/bench/benches/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
