/root/repo/target/debug/deps/integration_metrics-1d89e788fb723706.d: crates/autohet/../../tests/integration_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_metrics-1d89e788fb723706.rmeta: crates/autohet/../../tests/integration_metrics.rs Cargo.toml

crates/autohet/../../tests/integration_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
