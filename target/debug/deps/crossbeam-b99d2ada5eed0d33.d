/root/repo/target/debug/deps/crossbeam-b99d2ada5eed0d33.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-b99d2ada5eed0d33.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-b99d2ada5eed0d33.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
