/root/repo/target/debug/deps/fig10-7003cf8aa6775455.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-7003cf8aa6775455.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
