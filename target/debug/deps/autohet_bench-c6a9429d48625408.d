/root/repo/target/debug/deps/autohet_bench-c6a9429d48625408.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/autohet_bench-c6a9429d48625408: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
