/root/repo/target/debug/deps/integration_mapping-7ae1b10fc3476979.d: crates/autohet/../../tests/integration_mapping.rs

/root/repo/target/debug/deps/integration_mapping-7ae1b10fc3476979: crates/autohet/../../tests/integration_mapping.rs

crates/autohet/../../tests/integration_mapping.rs:
