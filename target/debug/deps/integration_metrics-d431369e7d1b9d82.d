/root/repo/target/debug/deps/integration_metrics-d431369e7d1b9d82.d: crates/autohet/../../tests/integration_metrics.rs

/root/repo/target/debug/deps/integration_metrics-d431369e7d1b9d82: crates/autohet/../../tests/integration_metrics.rs

crates/autohet/../../tests/integration_metrics.rs:
