/root/repo/target/debug/deps/serve_throughput-3bb23921ec22f274.d: crates/bench/benches/serve_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libserve_throughput-3bb23921ec22f274.rmeta: crates/bench/benches/serve_throughput.rs Cargo.toml

crates/bench/benches/serve_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
