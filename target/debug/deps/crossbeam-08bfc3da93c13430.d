/root/repo/target/debug/deps/crossbeam-08bfc3da93c13430.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-08bfc3da93c13430.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
