/root/repo/target/debug/deps/fig4-816c57bf5550c496.d: crates/bench/benches/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-816c57bf5550c496.rmeta: crates/bench/benches/fig4.rs Cargo.toml

crates/bench/benches/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
