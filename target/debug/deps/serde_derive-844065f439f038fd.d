/root/repo/target/debug/deps/serde_derive-844065f439f038fd.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-844065f439f038fd.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
