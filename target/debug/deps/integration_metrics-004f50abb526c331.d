/root/repo/target/debug/deps/integration_metrics-004f50abb526c331.d: crates/autohet/../../tests/integration_metrics.rs

/root/repo/target/debug/deps/integration_metrics-004f50abb526c331: crates/autohet/../../tests/integration_metrics.rs

crates/autohet/../../tests/integration_metrics.rs:
