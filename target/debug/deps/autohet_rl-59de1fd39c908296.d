/root/repo/target/debug/deps/autohet_rl-59de1fd39c908296.d: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

/root/repo/target/debug/deps/libautohet_rl-59de1fd39c908296.rlib: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

/root/repo/target/debug/deps/libautohet_rl-59de1fd39c908296.rmeta: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs

crates/rl/src/lib.rs:
crates/rl/src/ddpg.rs:
crates/rl/src/dqn.rs:
crates/rl/src/env.rs:
crates/rl/src/matrix.rs:
crates/rl/src/nn.rs:
crates/rl/src/noise.rs:
crates/rl/src/replay.rs:
