/root/repo/target/debug/deps/ablations-af498228224e71d8.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-af498228224e71d8.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
