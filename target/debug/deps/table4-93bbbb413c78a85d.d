/root/repo/target/debug/deps/table4-93bbbb413c78a85d.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-93bbbb413c78a85d.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
