/root/repo/target/debug/deps/autohet_bench-694428b807a796e7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/autohet_bench-694428b807a796e7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
