/root/repo/target/debug/deps/parking_lot-3644f6d35a4c1a82.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3644f6d35a4c1a82.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3644f6d35a4c1a82.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
