/root/repo/target/debug/deps/autohet-cdbbd43e1973d876.d: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs Cargo.toml

/root/repo/target/debug/deps/libautohet-cdbbd43e1973d876.rmeta: crates/autohet/src/lib.rs crates/autohet/src/ablation.rs crates/autohet/src/env.rs crates/autohet/src/homogeneous.rs crates/autohet/src/multi_model.rs crates/autohet/src/par.rs crates/autohet/src/pareto.rs crates/autohet/src/persist.rs crates/autohet/src/search/mod.rs crates/autohet/src/search/annealing.rs crates/autohet/src/search/dqn.rs crates/autohet/src/search/exhaustive.rs crates/autohet/src/search/greedy.rs crates/autohet/src/search/random.rs crates/autohet/src/search/rl.rs crates/autohet/src/sensitivity.rs crates/autohet/src/studies.rs Cargo.toml

crates/autohet/src/lib.rs:
crates/autohet/src/ablation.rs:
crates/autohet/src/env.rs:
crates/autohet/src/homogeneous.rs:
crates/autohet/src/multi_model.rs:
crates/autohet/src/par.rs:
crates/autohet/src/pareto.rs:
crates/autohet/src/persist.rs:
crates/autohet/src/search/mod.rs:
crates/autohet/src/search/annealing.rs:
crates/autohet/src/search/dqn.rs:
crates/autohet/src/search/exhaustive.rs:
crates/autohet/src/search/greedy.rs:
crates/autohet/src/search/random.rs:
crates/autohet/src/search/rl.rs:
crates/autohet/src/sensitivity.rs:
crates/autohet/src/studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
