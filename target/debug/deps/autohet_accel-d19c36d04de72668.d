/root/repo/target/debug/deps/autohet_accel-d19c36d04de72668.d: crates/accel/src/lib.rs crates/accel/src/alloc.rs crates/accel/src/controller.rs crates/accel/src/engine.rs crates/accel/src/hierarchy.rs crates/accel/src/mapping.rs crates/accel/src/metrics.rs crates/accel/src/noc.rs crates/accel/src/pipeline.rs crates/accel/src/tile_shared.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_accel-d19c36d04de72668.rmeta: crates/accel/src/lib.rs crates/accel/src/alloc.rs crates/accel/src/controller.rs crates/accel/src/engine.rs crates/accel/src/hierarchy.rs crates/accel/src/mapping.rs crates/accel/src/metrics.rs crates/accel/src/noc.rs crates/accel/src/pipeline.rs crates/accel/src/tile_shared.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/alloc.rs:
crates/accel/src/controller.rs:
crates/accel/src/engine.rs:
crates/accel/src/hierarchy.rs:
crates/accel/src/mapping.rs:
crates/accel/src/metrics.rs:
crates/accel/src/noc.rs:
crates/accel/src/pipeline.rs:
crates/accel/src/tile_shared.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
