/root/repo/target/debug/deps/prop_invariants-493c79ab5ed03fe4.d: crates/autohet/../../tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-493c79ab5ed03fe4: crates/autohet/../../tests/prop_invariants.rs

crates/autohet/../../tests/prop_invariants.rs:
