/root/repo/target/debug/deps/integration_mapping-ffb7ce3b1856e662.d: crates/autohet/../../tests/integration_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_mapping-ffb7ce3b1856e662.rmeta: crates/autohet/../../tests/integration_mapping.rs Cargo.toml

crates/autohet/../../tests/integration_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
