/root/repo/target/debug/deps/autohet_rl-569d09bc76da280f.d: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libautohet_rl-569d09bc76da280f.rmeta: crates/rl/src/lib.rs crates/rl/src/ddpg.rs crates/rl/src/dqn.rs crates/rl/src/env.rs crates/rl/src/matrix.rs crates/rl/src/nn.rs crates/rl/src/noise.rs crates/rl/src/replay.rs Cargo.toml

crates/rl/src/lib.rs:
crates/rl/src/ddpg.rs:
crates/rl/src/dqn.rs:
crates/rl/src/env.rs:
crates/rl/src/matrix.rs:
crates/rl/src/nn.rs:
crates/rl/src/noise.rs:
crates/rl/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
