/root/repo/target/debug/deps/proptest-0ab8b43d2ef8a606.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0ab8b43d2ef8a606.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0ab8b43d2ef8a606.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
