/root/repo/target/debug/deps/integration_inference-54135b13aff54e2c.d: crates/autohet/../../tests/integration_inference.rs

/root/repo/target/debug/deps/integration_inference-54135b13aff54e2c: crates/autohet/../../tests/integration_inference.rs

crates/autohet/../../tests/integration_inference.rs:
