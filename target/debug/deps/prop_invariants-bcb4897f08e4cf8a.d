/root/repo/target/debug/deps/prop_invariants-bcb4897f08e4cf8a.d: crates/autohet/../../tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-bcb4897f08e4cf8a.rmeta: crates/autohet/../../tests/prop_invariants.rs Cargo.toml

crates/autohet/../../tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
