/root/repo/target/debug/deps/fig5-4956c643c4cb0e08.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-4956c643c4cb0e08.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
