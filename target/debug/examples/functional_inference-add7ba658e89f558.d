/root/repo/target/debug/examples/functional_inference-add7ba658e89f558.d: crates/autohet/../../examples/functional_inference.rs

/root/repo/target/debug/examples/functional_inference-add7ba658e89f558: crates/autohet/../../examples/functional_inference.rs

crates/autohet/../../examples/functional_inference.rs:
