/root/repo/target/debug/examples/quickstart-e40e59e04c4233dd.d: crates/autohet/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e40e59e04c4233dd.rmeta: crates/autohet/../../examples/quickstart.rs Cargo.toml

crates/autohet/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
