/root/repo/target/debug/examples/fault_injection-cafb33c6a228a7e0.d: crates/autohet/../../examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-cafb33c6a228a7e0: crates/autohet/../../examples/fault_injection.rs

crates/autohet/../../examples/fault_injection.rs:
