/root/repo/target/debug/examples/functional_inference-e96053244fe683a8.d: crates/autohet/../../examples/functional_inference.rs

/root/repo/target/debug/examples/functional_inference-e96053244fe683a8: crates/autohet/../../examples/functional_inference.rs

crates/autohet/../../examples/functional_inference.rs:
