/root/repo/target/debug/examples/edge_energy_budget-d57a15b76e83e3bd.d: crates/autohet/../../examples/edge_energy_budget.rs

/root/repo/target/debug/examples/edge_energy_budget-d57a15b76e83e3bd: crates/autohet/../../examples/edge_energy_budget.rs

crates/autohet/../../examples/edge_energy_budget.rs:
