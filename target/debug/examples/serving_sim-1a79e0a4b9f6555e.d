/root/repo/target/debug/examples/serving_sim-1a79e0a4b9f6555e.d: crates/autohet/../../examples/serving_sim.rs Cargo.toml

/root/repo/target/debug/examples/libserving_sim-1a79e0a4b9f6555e.rmeta: crates/autohet/../../examples/serving_sim.rs Cargo.toml

crates/autohet/../../examples/serving_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
