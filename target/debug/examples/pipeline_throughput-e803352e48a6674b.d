/root/repo/target/debug/examples/pipeline_throughput-e803352e48a6674b.d: crates/autohet/../../examples/pipeline_throughput.rs

/root/repo/target/debug/examples/pipeline_throughput-e803352e48a6674b: crates/autohet/../../examples/pipeline_throughput.rs

crates/autohet/../../examples/pipeline_throughput.rs:
