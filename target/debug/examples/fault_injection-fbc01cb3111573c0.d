/root/repo/target/debug/examples/fault_injection-fbc01cb3111573c0.d: crates/autohet/../../examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-fbc01cb3111573c0.rmeta: crates/autohet/../../examples/fault_injection.rs Cargo.toml

crates/autohet/../../examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
