/root/repo/target/debug/examples/pipeline_throughput-27a6e9a64b4ff2b7.d: crates/autohet/../../examples/pipeline_throughput.rs

/root/repo/target/debug/examples/pipeline_throughput-27a6e9a64b4ff2b7: crates/autohet/../../examples/pipeline_throughput.rs

crates/autohet/../../examples/pipeline_throughput.rs:
