/root/repo/target/debug/examples/functional_inference-713e98d3132bf2b3.d: crates/autohet/../../examples/functional_inference.rs Cargo.toml

/root/repo/target/debug/examples/libfunctional_inference-713e98d3132bf2b3.rmeta: crates/autohet/../../examples/functional_inference.rs Cargo.toml

crates/autohet/../../examples/functional_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
