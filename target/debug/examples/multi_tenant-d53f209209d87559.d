/root/repo/target/debug/examples/multi_tenant-d53f209209d87559.d: crates/autohet/../../examples/multi_tenant.rs

/root/repo/target/debug/examples/multi_tenant-d53f209209d87559: crates/autohet/../../examples/multi_tenant.rs

crates/autohet/../../examples/multi_tenant.rs:
