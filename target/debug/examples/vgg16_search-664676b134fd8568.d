/root/repo/target/debug/examples/vgg16_search-664676b134fd8568.d: crates/autohet/../../examples/vgg16_search.rs Cargo.toml

/root/repo/target/debug/examples/libvgg16_search-664676b134fd8568.rmeta: crates/autohet/../../examples/vgg16_search.rs Cargo.toml

crates/autohet/../../examples/vgg16_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
