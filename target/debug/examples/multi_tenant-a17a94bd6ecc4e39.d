/root/repo/target/debug/examples/multi_tenant-a17a94bd6ecc4e39.d: crates/autohet/../../examples/multi_tenant.rs

/root/repo/target/debug/examples/multi_tenant-a17a94bd6ecc4e39: crates/autohet/../../examples/multi_tenant.rs

crates/autohet/../../examples/multi_tenant.rs:
