/root/repo/target/debug/examples/tile_shared_packing-27c2a027d152cf14.d: crates/autohet/../../examples/tile_shared_packing.rs Cargo.toml

/root/repo/target/debug/examples/libtile_shared_packing-27c2a027d152cf14.rmeta: crates/autohet/../../examples/tile_shared_packing.rs Cargo.toml

crates/autohet/../../examples/tile_shared_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
