/root/repo/target/debug/examples/quickstart-273782753035e411.d: crates/autohet/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-273782753035e411: crates/autohet/../../examples/quickstart.rs

crates/autohet/../../examples/quickstart.rs:
