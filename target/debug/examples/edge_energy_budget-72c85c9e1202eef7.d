/root/repo/target/debug/examples/edge_energy_budget-72c85c9e1202eef7.d: crates/autohet/../../examples/edge_energy_budget.rs

/root/repo/target/debug/examples/edge_energy_budget-72c85c9e1202eef7: crates/autohet/../../examples/edge_energy_budget.rs

crates/autohet/../../examples/edge_energy_budget.rs:
