/root/repo/target/debug/examples/tile_shared_packing-fb54dac36484f847.d: crates/autohet/../../examples/tile_shared_packing.rs

/root/repo/target/debug/examples/tile_shared_packing-fb54dac36484f847: crates/autohet/../../examples/tile_shared_packing.rs

crates/autohet/../../examples/tile_shared_packing.rs:
