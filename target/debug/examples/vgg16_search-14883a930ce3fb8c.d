/root/repo/target/debug/examples/vgg16_search-14883a930ce3fb8c.d: crates/autohet/../../examples/vgg16_search.rs

/root/repo/target/debug/examples/vgg16_search-14883a930ce3fb8c: crates/autohet/../../examples/vgg16_search.rs

crates/autohet/../../examples/vgg16_search.rs:
