/root/repo/target/debug/examples/quickstart-42b1e8cf4602ae72.d: crates/autohet/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-42b1e8cf4602ae72: crates/autohet/../../examples/quickstart.rs

crates/autohet/../../examples/quickstart.rs:
