/root/repo/target/debug/examples/pipeline_throughput-cf59d9b08839cad3.d: crates/autohet/../../examples/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_throughput-cf59d9b08839cad3.rmeta: crates/autohet/../../examples/pipeline_throughput.rs Cargo.toml

crates/autohet/../../examples/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
