/root/repo/target/debug/examples/fault_injection-c595727614565483.d: crates/autohet/../../examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-c595727614565483: crates/autohet/../../examples/fault_injection.rs

crates/autohet/../../examples/fault_injection.rs:
