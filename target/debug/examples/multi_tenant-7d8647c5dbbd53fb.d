/root/repo/target/debug/examples/multi_tenant-7d8647c5dbbd53fb.d: crates/autohet/../../examples/multi_tenant.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant-7d8647c5dbbd53fb.rmeta: crates/autohet/../../examples/multi_tenant.rs Cargo.toml

crates/autohet/../../examples/multi_tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
