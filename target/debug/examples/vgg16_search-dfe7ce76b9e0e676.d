/root/repo/target/debug/examples/vgg16_search-dfe7ce76b9e0e676.d: crates/autohet/../../examples/vgg16_search.rs

/root/repo/target/debug/examples/vgg16_search-dfe7ce76b9e0e676: crates/autohet/../../examples/vgg16_search.rs

crates/autohet/../../examples/vgg16_search.rs:
