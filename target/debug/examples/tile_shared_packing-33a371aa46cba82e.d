/root/repo/target/debug/examples/tile_shared_packing-33a371aa46cba82e.d: crates/autohet/../../examples/tile_shared_packing.rs

/root/repo/target/debug/examples/tile_shared_packing-33a371aa46cba82e: crates/autohet/../../examples/tile_shared_packing.rs

crates/autohet/../../examples/tile_shared_packing.rs:
