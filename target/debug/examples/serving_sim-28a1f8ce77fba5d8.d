/root/repo/target/debug/examples/serving_sim-28a1f8ce77fba5d8.d: crates/autohet/../../examples/serving_sim.rs

/root/repo/target/debug/examples/serving_sim-28a1f8ce77fba5d8: crates/autohet/../../examples/serving_sim.rs

crates/autohet/../../examples/serving_sim.rs:
