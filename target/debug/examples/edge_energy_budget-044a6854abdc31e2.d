/root/repo/target/debug/examples/edge_energy_budget-044a6854abdc31e2.d: crates/autohet/../../examples/edge_energy_budget.rs Cargo.toml

/root/repo/target/debug/examples/libedge_energy_budget-044a6854abdc31e2.rmeta: crates/autohet/../../examples/edge_energy_budget.rs Cargo.toml

crates/autohet/../../examples/edge_energy_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
