//! Property-based contracts of the sharded serving runtime
//! (DESIGN.md §14):
//!
//! - the heap-mode scheduler is **bit-identical** to the linear-scan
//!   reference for any shard count, fleet shape, and coupling config
//!   (stealing, autoscaling, strategy swap all enabled);
//! - the epoch-parallel threaded driver replays the sequential one bit
//!   for bit at any thread count;
//! - deficit round-robin starves no backlogged tenant, and attained
//!   service tracks weights (weighted Jain index stays high) under
//!   sustained overload;
//! - a drifting-mix swap never loses a request: every admitted request
//!   completes or is rejected at admission, under any seed;
//! - a golden seeded run pins the exact totals, so any cross-platform
//!   or refactoring drift in the recurrence fails loudly.

use autohet::prelude::*;
use proptest::prelude::*;

fn micro() -> Deployment {
    let m = autohet_dnn::zoo::micro_cnn();
    Deployment::compile(
        "micro",
        &m,
        &vec![XbarShape::square(128); m.layers.len()],
        &AccelConfig::default(),
    )
}

fn lenet() -> Deployment {
    let m = autohet_dnn::zoo::lenet5();
    Deployment::compile(
        "lenet",
        &m,
        &vec![XbarShape::square(128); m.layers.len()],
        &AccelConfig::default(),
    )
}

/// A mixed fleet: alternating deployments, cycling weights, every third
/// tenant bursty — the same shape the shard unit tests use.
fn mixed_fleet(n: usize, load: f64) -> Vec<TenantSpec> {
    let d_micro = micro();
    let d_lenet = lenet();
    (0..n)
        .map(|i| {
            let d = if i % 2 == 0 {
                d_micro.clone()
            } else {
                d_lenet.clone()
            };
            let rate = load * d.max_rate_rps() / n as f64;
            let slo = (8.0 * d.pipeline.fill_ns) as u64;
            let mut t =
                TenantSpec::new(&format!("t{i}"), d, rate, slo).with_weight(1 + (i % 4) as u64);
            if i % 3 == 0 {
                t = t.with_burst(BurstSpec {
                    period_ns: 12_000_000,
                    burst_ns: 3_000_000,
                    factor: 4.0,
                });
            }
            t
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole identity: heap-mode scheduling (lazy-deletion heaps
    // everywhere) makes exactly the decisions of the linear-scan
    // reference, for any shard count and with every barrier mechanism
    // switched on.
    #[test]
    fn heap_mode_matches_the_scan_reference(
        seed in any::<u64>(),
        shards in 1usize..=6,
        n_tenants in 2usize..=9,
        load_pct in 40u32..=160,
    ) {
        let tenants = mixed_fleet(n_tenants, load_pct as f64 / 100.0);
        let wl = Workload { seed, horizon_ns: 40_000_000 };
        let cfg = ShardConfig {
            shards,
            epochs: 10,
            queue_depth: 32,
            steal: Some(StealSpec { min_victim_backlog: 4, max_thief_backlog: 1 }),
            autoscale: Some(AutoscaleSpec {
                high_depth: 6.0,
                low_depth: 1.0,
                cooldown_epochs: 0,
                ..AutoscaleSpec::default()
            }),
            ..ShardConfig::default()
        };
        let heap = run_sharded(&tenants, &wl, &cfg);
        let scan = run_sharded_reference(&tenants, &wl, &cfg);
        prop_assert_eq!(heap, scan);
    }

    // The epoch-parallel driver is a pure re-schedule of the same
    // shard-local work: any thread count replays the sequential run.
    #[test]
    fn threaded_driver_is_bit_identical(
        seed in any::<u64>(),
        shards in 1usize..=5,
        threads in 1usize..=4,
    ) {
        let tenants = mixed_fleet(6, 1.1);
        let wl = Workload { seed, horizon_ns: 30_000_000 };
        let cfg = ShardConfig {
            shards,
            epochs: 8,
            steal: Some(StealSpec::default()),
            ..ShardConfig::default()
        };
        let seq = run_sharded(&tenants, &wl, &cfg);
        let par = run_sharded_threaded(&tenants, &wl, &cfg, threads);
        prop_assert_eq!(seq, par);
    }

    // DRR fairness under sustained overload with a bounded queue: no
    // backlogged tenant starves, and attained service per unit weight
    // stays near-uniform (weighted Jain index).
    #[test]
    fn drr_shares_service_by_weight_without_starvation(
        seed in any::<u64>(),
        w1 in 1u64..=8,
        w2 in 1u64..=8,
    ) {
        let d = micro();
        let rate = 2.5 * d.max_rate_rps();
        let slo = (6.0 * d.pipeline.fill_ns) as u64;
        let tenants: Vec<TenantSpec> = [1, w1, w2]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                TenantSpec::new(&format!("t{i}"), d.clone(), rate, slo).with_weight(w)
            })
            .collect();
        let wl = Workload { seed, horizon_ns: 50_000_000 };
        let cfg = ShardConfig {
            shards: 1,
            queue_depth: 12,
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        prop_assert!(r.total_rejected > 0, "overload must shed load");
        for t in &r.tenants {
            prop_assert!(t.completed > 0, "tenant {} starved", t.name);
        }
        let x = r
            .tenants
            .iter()
            .map(|t| t.attained_service_ns as f64 / t.weight as f64);
        prop_assert!(
            jain_index(x) > 0.75,
            "weighted attained service diverged: {:?}",
            r.tenants
                .iter()
                .map(|t| (t.weight, t.attained_service_ns))
                .collect::<Vec<_>>()
        );
    }

    // The online swap drains in-flight work before remapping: whatever
    // the seed, no admitted request is ever lost, and the heap/scan
    // identity survives the remap pause.
    #[test]
    fn strategy_swap_never_loses_requests(
        seed in any::<u64>(),
        to_factor in 4u32..=10,
    ) {
        let base = lenet();
        let m = autohet_dnn::zoo::lenet5();
        let alt = Deployment::compile(
            "lenet/wide",
            &m,
            &vec![XbarShape::new(256, 128); m.layers.len()],
            &AccelConfig::default(),
        );
        let d_micro = micro();
        let slo = (12.0 * base.pipeline.fill_ns) as u64;
        let tenants = vec![
            TenantSpec::new("drifter", base, 0.2 * d_micro.max_rate_rps(), slo)
                .with_ramp(RampSpec {
                    start_ns: 10_000_000,
                    end_ns: 30_000_000,
                    to_factor: to_factor as f64,
                })
                .with_alt(alt),
            TenantSpec::new("steady", d_micro.clone(), 0.4 * d_micro.max_rate_rps(), slo),
        ];
        let wl = Workload { seed, horizon_ns: 60_000_000 };
        let cfg = ShardConfig {
            shards: 2,
            epochs: 12,
            queue_depth: 4096,
            swap: Some(SwapSpec {
                share_factor: 1.5,
                min_epoch_requests: 16,
                remap_ns: 2_000_000,
            }),
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        prop_assert_eq!(r.lost_requests(), 0);
        let scan = run_sharded_reference(&tenants, &wl, &cfg);
        prop_assert_eq!(r, scan);
    }
}

/// Golden run: one fixed fleet and seed, exact totals pinned. Any change
/// to the recurrence, the DRR walk, the heaps' tie-breaks, or the
/// arrival streams shows up here as a loud diff.
#[test]
fn golden_sharded_run_is_pinned() {
    let tenants = mixed_fleet(6, 1.2);
    let wl = Workload {
        seed: 7,
        horizon_ns: 40_000_000,
    };
    let cfg = ShardConfig {
        shards: 3,
        epochs: 10,
        queue_depth: 32,
        steal: Some(StealSpec {
            min_victim_backlog: 4,
            max_thief_backlog: 1,
        }),
        ..ShardConfig::default()
    };
    let r = run_sharded(&tenants, &wl, &cfg);
    assert_eq!(r, run_sharded_reference(&tenants, &wl, &cfg));
    assert_eq!(r, run_sharded_threaded(&tenants, &wl, &cfg, 3));
    assert_eq!(r.lost_requests(), 0);
    assert_eq!(
        (
            r.total_submitted,
            r.total_completed,
            r.total_rejected,
            r.batches
        ),
        golden_totals(),
        "recurrence drift: if this change is intentional, update golden_totals()"
    );
}

/// The pinned totals of [`golden_sharded_run_is_pinned`]: kept in one
/// place so a legitimate recurrence change updates a single line.
fn golden_totals() -> (u64, u64, u64, u64) {
    (87, 87, 0, 63)
}
