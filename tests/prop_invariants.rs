//! Property-based invariants across the whole stack (proptest).

use autohet::prelude::*;
use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::hierarchy::Tile;
use autohet_accel::tile_shared::combine_group;
use autohet_accel::MappedLayer;
use autohet_dnn::ops::{mvm_i32, synthetic_weights};
use autohet_dnn::quant::{quantize_matrix, Quantizer};
use autohet_dnn::{Dataset, Layer, ModelBuilder, Tensor};
use autohet_xbar::utilization::footprint;
use autohet_xbar::{Adc, CostParams};
use proptest::prelude::*;

/// Arbitrary plausible conv-layer geometry.
fn arb_layer() -> impl Strategy<Value = Layer> {
    (
        1usize..=64,
        1usize..=96,
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
    )
        .prop_map(|(cin, cout, k)| Layer::conv(0, cin, cout, k, 1, k / 2, 32))
}

fn arb_shape() -> impl Strategy<Value = XbarShape> {
    prop::sample::select(all_candidates())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn utilization_always_in_unit_interval(layer in arb_layer(), shape in arb_shape()) {
        let u = footprint(&layer, shape).utilization();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    #[test]
    fn footprint_provisioning_covers_the_weight_matrix(layer in arb_layer(), shape in arb_shape()) {
        let fp = footprint(&layer, shape);
        prop_assert!(fp.provisioned_cells() >= fp.used_cells);
        // The grid provides at least Cin·k² rows and Cout columns.
        prop_assert!(fp.xb_rows as u64 * shape.rows as u64 >= layer.weight_rows() as u64);
        prop_assert!(fp.xb_cols as u64 * shape.cols as u64 >= layer.weight_cols() as u64);
    }

    #[test]
    fn bigger_allocation_never_raises_utilization(layer in arb_layer(), shape in arb_shape(), extra in 0u64..16) {
        let fp = footprint(&layer, shape);
        let base = fp.total_xbars();
        prop_assert!(fp.utilization_over(base + extra) <= fp.utilization_over(base) + 1e-15);
    }

    #[test]
    fn quantizer_roundtrip_error_is_half_step(xs in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let q = Quantizer::fit_slice(&xs, 8);
        for &x in &xs {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            prop_assert!(err <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn algorithm1_conserves_and_never_overflows(
        occupancies in prop::collection::vec(1u32..=4, 1..40)
    ) {
        let mut tiles: Vec<Tile> = occupancies
            .iter()
            .enumerate()
            .map(|(i, &o)| {
                let mut t = Tile::new(i, XbarShape::square(64), 4);
                t.place(i, o);
                t
            })
            .collect();
        let before: u32 = tiles.iter().map(Tile::occupied).sum();
        let combos = combine_group(&mut tiles);
        let after: u32 = tiles.iter().map(Tile::occupied).sum();
        prop_assert_eq!(before, after);
        prop_assert!(tiles.iter().all(|t| t.occupied() <= t.capacity));
        // Every freed tile is empty and every absorber still exists.
        for (h, t) in combos {
            prop_assert!(tiles[t].occupants.is_empty());
            prop_assert!(h != t);
        }
    }

    #[test]
    fn tile_sharing_never_increases_tiles(
        sides in prop::collection::vec(prop::sample::select(vec![32u32, 64, 128]), 2..5),
        cap in prop::sample::select(vec![2u32, 4, 8])
    ) {
        let mut b = ModelBuilder::new("p", Dataset::Cifar10);
        for (i, _) in sides.iter().enumerate() {
            b = b.conv(8 * (i + 1), 3);
        }
        let model = b.build();
        let strategy: Vec<XbarShape> =
            sides.iter().map(|&s| XbarShape::square(s)).collect();
        let plain = evaluate(&model, &strategy, &AccelConfig::default().with_pes_per_tile(cap));
        let shared = evaluate(
            &model,
            &strategy,
            &AccelConfig::default().with_pes_per_tile(cap).with_tile_sharing(),
        );
        prop_assert!(shared.tiles <= plain.tiles);
        prop_assert!(shared.utilization >= plain.utilization - 1e-12);
        prop_assert!(shared.energy_nj() <= plain.energy_nj() + 1e-9);
    }

    #[test]
    fn crossbar_grid_mvm_is_exact(
        rows in 1usize..=40,
        cols in 1usize..=24,
        seed in 0u64..1000,
        shape in arb_shape()
    ) {
        // Any FC-shaped weight matrix, any candidate crossbar: the mapped
        // grid MVM equals the integer reference.
        let layer = Layer::fc(0, rows, cols);
        let w = synthetic_weights(&layer, seed);
        let ml = MappedLayer::program(&layer, shape, &w, &CostParams::default());
        let input: Vec<u8> = (0..rows).map(|i| ((seed as usize + i * 37) % 256) as u8).collect();
        let (wq, _) = quantize_matrix(&w, 8);
        let xi: Vec<i32> = input.iter().map(|&x| x as i32).collect();
        let expect: Vec<i64> = mvm_i32(&wq, &xi).into_iter().map(i64::from).collect();
        prop_assert_eq!(ml.mvm(&input, &Adc::new(10)), expect);
    }

    #[test]
    fn allocation_grant_always_covers_demand(
        cin in 1usize..128, cout in 1usize..256, cap in 1u32..16, shape in arb_shape()
    ) {
        let model = ModelBuilder::new("p", Dataset::Cifar10).conv_spec(cout, 3, 1, 1).build();
        let _ = cin; // geometry is driven by the dataset's 3 channels
        let alloc = allocate_tile_based(&model, &[shape], cap);
        prop_assert!(alloc.allocated_xbars() >= alloc.occupied_xbars());
        prop_assert_eq!(alloc.per_layer.len(), 1);
        prop_assert!(alloc.per_layer[0].tiles * cap as u64 >= alloc.per_layer[0].footprint.total_xbars());
    }

    #[test]
    fn eval_engine_is_bit_identical_to_direct_evaluate(
        idx in prop::collection::vec(0usize..10, 1..12),
        shared in any::<bool>(),
        noc in any::<bool>(),
        cap in prop::sample::select(vec![2u32, 4, 8])
    ) {
        // The memoized engine must reproduce `evaluate` *exactly* — same
        // float accumulation order, so bit-identical reports — whether the
        // answer comes from a cold compose, the layer memo, or the
        // strategy cache, and across tile sharing / NoC / tile width.
        let pool = all_candidates();
        let strategy: Vec<XbarShape> = idx.iter().map(|&i| pool[i]).collect();
        let mut b = ModelBuilder::new("p", Dataset::Cifar10);
        for i in 0..strategy.len() {
            b = b.conv(8 * (i % 4 + 1), 3);
        }
        let model = b.build();
        let mut cfg = AccelConfig::default().with_pes_per_tile(cap);
        if shared {
            cfg = cfg.with_tile_sharing();
        }
        if noc {
            cfg = cfg.with_noc();
        }
        let direct = evaluate(&model, &strategy, &cfg);
        let engine = EvalEngine::new(model, cfg);
        // Cold layer memo, no strategy cache involved.
        prop_assert_eq!(engine.evaluate_fresh(&strategy), direct.clone());
        // Warm layer memo, strategy-cache miss then hit.
        prop_assert_eq!(engine.evaluate(&strategy), direct.clone());
        prop_assert_eq!(engine.evaluate(&strategy), direct);
        prop_assert!(engine.stats().strategy_hits >= 1);
    }

    #[test]
    fn eval_report_metrics_are_finite_and_positive(
        sides in prop::collection::vec(prop::sample::select(vec![32u32, 64, 256]), 1..4)
    ) {
        let mut b = ModelBuilder::new("p", Dataset::Mnist);
        for _ in &sides {
            b = b.conv(16, 3);
        }
        let model = b.build();
        let strategy: Vec<XbarShape> = sides.iter().map(|&s| XbarShape::square(s)).collect();
        let r = evaluate(&model, &strategy, &AccelConfig::default());
        for v in [r.utilization, r.energy_nj(), r.latency_ns, r.area_um2, r.rue()] {
            prop_assert!(v.is_finite() && v > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn depthwise_footprint_invariants(
        channels in 1usize..256,
        k in prop_oneof![Just(3usize), Just(5)],
        shape in arb_shape()
    ) {
        let l = Layer::depthwise(0, channels, k, 1, k / 2, 32);
        let fp = footprint(&l, shape);
        let u = fp.utilization();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
        prop_assert_eq!(fp.used_cells, (channels * k * k) as u64);
        // Diagonal packing can never beat the dense bound.
        let dense = Layer::conv(0, channels, channels, k, 1, k / 2, 32);
        prop_assert!(fp.total_xbars() >= 1);
        let _ = footprint(&dense, shape);
    }

    #[test]
    fn noc_placement_covers_all_tiles(n in 1usize..500) {
        use autohet_accel::noc::{hops, place_row_major};
        let p = place_row_major(n);
        prop_assert_eq!(p.coords.len(), n);
        prop_assert!(p.side * p.side >= n);
        // All coordinates in-bounds and pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for &c in &p.coords {
            prop_assert!(c.0 < p.side && c.1 < p.side);
            prop_assert!(seen.insert(c));
        }
        // Hop metric: symmetric, zero on the diagonal, triangle inequality
        // on a sample.
        if n >= 3 {
            let (a, b, c) = (p.coords[0], p.coords[n / 2], p.coords[n - 1]);
            prop_assert_eq!(hops(a, b), hops(b, a));
            prop_assert_eq!(hops(a, a), 0);
            prop_assert!(hops(a, c) <= hops(a, b) + hops(b, c));
        }
    }

    #[test]
    fn pipeline_speedup_is_monotone_and_bounded(
        sides in prop::collection::vec(prop::sample::select(vec![32u32, 64, 256]), 2..6)
    ) {
        use autohet_accel::pipeline::pipeline_report;
        let mut b = ModelBuilder::new("p", Dataset::Cifar10);
        for _ in &sides {
            b = b.conv(8, 3);
        }
        let model = b.build();
        let strategy: Vec<XbarShape> = sides.iter().map(|&s| XbarShape::square(s)).collect();
        let r = pipeline_report(&model, &strategy, &AccelConfig::default());
        let asymptote = r.fill_ns / r.bottleneck_ns;
        let mut prev = 0.0;
        for n in [1usize, 2, 8, 64, 4096] {
            let s = r.speedup(n);
            prop_assert!(s >= prev - 1e-12);
            prop_assert!(s <= asymptote + 1e-9);
            prev = s;
        }
    }

    #[test]
    fn strategy_persistence_round_trips(
        idx in prop::collection::vec(0usize..10, 1..40)
    ) {
        use autohet::persist::{strategy_from_str, strategy_to_string};
        let pool = all_candidates();
        let strategy: Vec<XbarShape> = idx.iter().map(|&i| pool[i]).collect();
        let text = strategy_to_string(&strategy, "prop");
        prop_assert_eq!(strategy_from_str(&text).unwrap(), strategy);
    }

    #[test]
    fn programming_cost_scales_linearly_with_kernels(
        cin in 1usize..64, cout in 1usize..64
    ) {
        use autohet_xbar::program_cost::{layer_program_cost, WriteParams};
        use autohet_xbar::CostParams;
        let p = CostParams::default();
        let w = WriteParams::default();
        let l1 = Layer::conv(0, cin, cout, 3, 1, 1, 16);
        let l2 = Layer::conv(0, cin, cout * 2, 3, 1, 1, 16);
        let shape = XbarShape::new(72, 64);
        let c1 = layer_program_cost(&footprint(&l1, shape), &p, &w);
        let c2 = layer_program_cost(&footprint(&l2, shape), &p, &w);
        prop_assert_eq!(c2.cell_writes, 2 * c1.cell_writes);
        // Latency depends only on crossbar height.
        prop_assert_eq!(c1.latency_ns, c2.latency_ns);
    }
}

/// Tensor argmax agrees with a brute scan (plain test, not proptest, to
/// cover the empty case too).
#[test]
fn tensor_argmax_brute_force() {
    let t = Tensor::from_vec(vec![5], vec![0.1, -0.2, 0.9, 0.9, 0.3]);
    assert_eq!(t.argmax(), Some(2));
}
