//! Property-based contracts of the vectorized search driver
//! (DESIGN.md §10):
//!
//! - `rl_search_vec` at one lane is **bit-identical** to the sequential
//!   `rl_search` for any seed, episode count, and warm-up horizon — the
//!   batched act path, the master noise schedule, and the per-group
//!   training schedule all reduce exactly to the sequential loop;
//! - multi-lane runs are exactly reproducible for a fixed
//!   `(seed, lanes)` pair (fixed ascending-lane RNG interleave, ordered
//!   evaluation fan-out);
//! - throughput counters are internally consistent.

use autohet::prelude::*;
use autohet_rl::DdpgConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// Full-precision fingerprint of a search trajectory: every history field
/// as raw bits (episode, rue, reward, utilization, energy, hit rate), plus
/// the winning strategy and report.
type HistoryBits = Vec<(usize, u64, u64, u64, u64, u64)>;

fn fingerprint(o: &SearchOutcome) -> (HistoryBits, Vec<XbarShape>, EvalReport) {
    (
        o.history
            .iter()
            .map(|h| {
                (
                    h.episode,
                    h.rue.to_bits(),
                    h.reward.to_bits(),
                    h.utilization.to_bits(),
                    h.energy_nj.to_bits(),
                    h.cache_hit_rate.to_bits(),
                )
            })
            .collect(),
        o.best_strategy.clone(),
        o.best_report.clone(),
    )
}

fn scfg(seed: u64, episodes: usize, warmup: usize) -> RlSearchConfig {
    RlSearchConfig {
        episodes,
        ddpg: DdpgConfig {
            seed,
            hidden: 16,
            batch: 8,
            ..DdpgConfig::default()
        },
        train_steps: 2,
        warmup_episodes: warmup,
        ..RlSearchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The tentpole's N=1 identity: for any seed / length / warm-up split
    // (spanning all-warm-up, mixed, and no-warm-up searches), the
    // vectorized driver at one lane replays the sequential driver bit
    // for bit.
    #[test]
    fn vec_single_lane_is_bit_identical_to_sequential(
        seed in any::<u64>(),
        episodes in 1usize..=18,
        warmup in 0usize..=20,
    ) {
        let m = autohet_dnn::zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let s = scfg(seed, episodes, warmup);
        let seq = rl_search(&m, &cands, &cfg, &s);
        let vec1 = rl_search_vec(&m, &cands, &cfg, &s, 1);
        prop_assert_eq!(fingerprint(&seq), fingerprint(&vec1));
    }

    // Seeded multi-lane runs are exactly reproducible, and their
    // throughput counters are consistent with the episode/lane split.
    #[test]
    fn vec_multi_lane_is_seed_reproducible(
        seed in any::<u64>(),
        episodes in 1usize..=16,
        lanes in 2usize..=5,
    ) {
        let m = autohet_dnn::zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let s = scfg(seed, episodes, 4);
        let run = || {
            let engine = Arc::new(EvalEngine::new(m.clone(), cfg));
            rl_search_vec_with_stats(&m, &cands, &cfg, &s, lanes, engine)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(sa.lanes, lanes);
        prop_assert_eq!(sa.episodes, episodes);
        prop_assert_eq!(sa.groups, episodes.div_ceil(lanes));
        prop_assert_eq!(sa.group_occupancy.len(), sa.groups);
        prop_assert_eq!(&sa.group_occupancy, &sb.group_occupancy);
        // Every group but possibly the last runs at full occupancy, and
        // occupancies recompose into the episode count exactly.
        let total: f64 = sa.group_occupancy.iter().sum::<f64>() * lanes as f64;
        prop_assert!((total - episodes as f64).abs() < 1e-9);
        for (g, &occ) in sa.group_occupancy.iter().enumerate() {
            if g + 1 < sa.groups {
                prop_assert_eq!(occ, 1.0);
            } else {
                prop_assert!(occ > 0.0 && occ <= 1.0);
            }
        }
    }

    // A shared warm engine never changes a vectorized outcome (cached
    // feedback is bit-identical), mirroring the sequential contract.
    #[test]
    fn vec_outcome_is_independent_of_cache_state(
        seed in any::<u64>(),
        lanes in 1usize..=4,
    ) {
        let m = autohet_dnn::zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let s = scfg(seed, 10, 3);
        let cold = rl_search_vec(&m, &cands, &cfg, &s, lanes);
        let engine = Arc::new(EvalEngine::new(m.clone(), cfg));
        for (i, &c) in cands.iter().enumerate() {
            let mut strat = vec![cands[0]; m.layers.len()];
            strat[i % m.layers.len()] = c;
            engine.evaluate(&strat);
        }
        let warm = rl_search_vec_with_engine(&m, &cands, &cfg, &s, lanes, engine);
        prop_assert_eq!(cold.best_strategy, warm.best_strategy);
        prop_assert_eq!(cold.best_report, warm.best_report);
        let ra: Vec<u64> = cold.history.iter().map(|h| h.rue.to_bits()).collect();
        let rb: Vec<u64> = warm.history.iter().map(|h| h.rue.to_bits()).collect();
        prop_assert_eq!(ra, rb);
    }
}
