//! Cross-crate integration: the full search stack (rl + env + accel) on
//! real workloads, against the comparator searches.

use autohet::prelude::*;
use autohet_rl::DdpgConfig;

fn quick(seed: u64, episodes: usize) -> RlSearchConfig {
    RlSearchConfig {
        episodes,
        ddpg: DdpgConfig {
            seed,
            hidden: 32,
            batch: 32,
            ..DdpgConfig::default()
        },
        train_steps: 4,
        ..RlSearchConfig::default()
    }
}

#[test]
fn rl_matches_the_exhaustive_oracle_on_micro_cnn() {
    // 5⁴ = 625 strategies: the oracle is exact; a modest RL budget must
    // land within 5% of the optimum (it usually finds it exactly).
    let m = autohet_dnn::zoo::micro_cnn();
    let cfg = AccelConfig::default().with_tile_sharing();
    let cands = paper_hybrid_candidates();
    let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
    let outcome = rl_search(&m, &cands, &cfg, &quick(3, 120));
    assert!(
        outcome.best_rue() >= oracle.rue() * 0.95,
        "rl {} vs oracle {}",
        outcome.best_rue(),
        oracle.rue()
    );
}

#[test]
fn rl_beats_random_search_at_equal_budget() {
    let m = autohet_dnn::zoo::alexnet();
    let cfg = AccelConfig::default().with_tile_sharing();
    let cands = paper_hybrid_candidates();
    let budget = 80;
    let outcome = rl_search(&m, &cands, &cfg, &quick(7, budget));
    let (_, rand) = random_search(&m, &cands, &cfg, budget, 7);
    assert!(
        outcome.best_rue() >= rand.rue() * 0.98,
        "rl {} vs random {}",
        outcome.best_rue(),
        rand.rue()
    );
}

#[test]
fn autohet_beats_best_homogeneous_on_alexnet() {
    // The §4.2 headline on a real paper workload.
    let m = autohet_dnn::zoo::alexnet();
    let outcome = rl_search(
        &m,
        &paper_hybrid_candidates(),
        &AccelConfig::default().with_tile_sharing(),
        &quick(1, 80),
    );
    let (_, homo) = best_homogeneous(&m, &AccelConfig::default());
    assert!(
        outcome.best_rue() > homo.rue(),
        "AutoHet {} vs best homo {}",
        outcome.best_rue(),
        homo.rue()
    );
}

#[test]
fn greedy_searches_are_dominated_by_the_oracle() {
    let m = autohet_dnn::zoo::micro_cnn();
    let cfg = AccelConfig::default();
    let cands = paper_hybrid_candidates();
    let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
    let gu = greedy_utilization(&m, &cands, &cfg);
    let gr = greedy_layerwise_rue(&m, &cands, &cfg);
    assert!(oracle.rue() >= gu.rue());
    assert!(oracle.rue() >= gr.rue());
}

#[test]
fn heterogeneity_shines_on_depthwise_workloads() {
    // MobileNet's depthwise stages pack diagonally (terrible on wide
    // crossbars) while its pointwise stages want wide crossbars — no
    // homogeneous design can serve both, so AutoHet's win here should be
    // larger than on VGG-style all-dense models.
    let m = autohet_dnn::zoo::mobilenet_v1();
    let results = autohet::ablation::run_ablation(&m, &quick(2, 120));
    let base = &results[0];
    let all = &results[3];
    assert!(
        all.report.rue() > base.report.rue(),
        "AutoHet {} vs best homo {}",
        all.report.rue(),
        base.report.rue()
    );
    // A homogeneous design is forced to waste: on the RUE-best shape the
    // depthwise stages utilize crossbars terribly.
    let (shape, homo) = best_homogeneous(&m, &AccelConfig::default());
    let dw_util: Vec<f64> = m
        .layers
        .iter()
        .filter(|l| l.kind == autohet_dnn::LayerKind::DepthwiseConv)
        .map(|l| autohet_xbar::utilization::utilization(l, shape))
        .collect();
    let worst = dw_util.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        worst < 0.05,
        "expected a depthwise stage below 5% utilization on {shape}, min {worst}"
    );
    assert!(homo.rue() > 0.0);
}

#[test]
fn search_improves_over_episodes() {
    // The running best is non-decreasing, and late episodes should not be
    // uniformly worse than the first (the agent learns something).
    let m = autohet_dnn::zoo::alexnet();
    let outcome = rl_search(
        &m,
        &paper_hybrid_candidates(),
        &AccelConfig::default(),
        &quick(11, 60),
    );
    let mut best_so_far = f64::MIN;
    for h in &outcome.history {
        best_so_far = best_so_far.max(h.rue);
    }
    assert_eq!(best_so_far, outcome.best_rue());
    let first10: f64 = outcome.history[..10].iter().map(|h| h.rue).sum::<f64>() / 10.0;
    let last10: f64 = outcome.history[50..].iter().map(|h| h.rue).sum::<f64>() / 10.0;
    assert!(
        last10 > first10 * 0.8,
        "late episodes collapsed: {first10} -> {last10}"
    );
}
