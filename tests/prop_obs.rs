//! Property-based bit-identity of the observability layer (proptest):
//! enabling the global tracer must not change a single bit of any
//! evaluation, search, or serving result. Spans only *observe* — the
//! recorder sits outside every simulated quantity, so results with the
//! recorder on and off are compared with exact equality, not tolerance.

use autohet::prelude::*;
use autohet_dnn::{Dataset, ModelBuilder};
use autohet_rl::DdpgConfig;
use proptest::prelude::*;
use std::sync::Mutex;

/// The tracer is process-wide, so the three properties below must not
/// interleave their enable/disable windows.
static TRACER_LOCK: Mutex<()> = Mutex::new(());

/// A small but non-degenerate model for the search/serving properties.
fn small_model() -> autohet_dnn::Model {
    ModelBuilder::new("prop-obs-net", Dataset::Mnist)
        .conv(8, 3)
        .conv(16, 3)
        .fc(64)
        .fc(10)
        .build()
}

/// Run `f` twice — recorder off, then recorder on — and return both
/// results for exact comparison. Always leaves the tracer disabled and
/// drained.
fn with_and_without_tracer<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let tracer = autohet_obs::trace::global();
    tracer.disable();
    tracer.drain();
    let off = f();
    tracer.enable(4096);
    let on = f();
    tracer.disable();
    // The instrumented paths must actually have recorded something,
    // otherwise this file tests nothing.
    let events = tracer.drain();
    assert!(!events.is_empty(), "tracer enabled but no spans recorded");
    (off, on)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // engine.evaluate / engine.compose spans leave the report untouched.
    #[test]
    fn evaluation_is_bit_identical_with_the_recorder_on(
        pick in prop::collection::vec(0usize..5, 4),
        shared in any::<bool>(),
    ) {
        let _g = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let model = small_model();
        let cfg = if shared {
            AccelConfig::default().with_tile_sharing()
        } else {
            AccelConfig::default()
        };
        let cands = paper_hybrid_candidates();
        let strategy: Vec<XbarShape> =
            pick.iter().map(|&i| cands[i % cands.len()]).collect();
        let (off, on) = with_and_without_tracer(|| {
            EvalEngine::new(model.clone(), cfg).evaluate(&strategy)
        });
        prop_assert_eq!(&off, &on);
        // The instrumented engine path and the direct evaluation agree.
        prop_assert_eq!(off, evaluate(&model, &strategy, &cfg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // A full DDPG search under span recording: same strategy, same
    // report, same per-episode history (including cache-hit rates —
    // each run gets a fresh engine, so the deltas line up too).
    #[test]
    fn rl_search_is_bit_identical_with_the_recorder_on(seed in 0u64..1_000) {
        let _g = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let model = small_model();
        let cfg = AccelConfig::default().with_tile_sharing();
        let cands = paper_hybrid_candidates();
        let scfg = RlSearchConfig {
            episodes: 8,
            ddpg: DdpgConfig {
                seed,
                hidden: 16,
                batch: 16,
                ..DdpgConfig::default()
            },
            train_steps: 2,
            ..RlSearchConfig::default()
        };
        let (off, on) = with_and_without_tracer(|| rl_search(&model, &cands, &cfg, &scfg));
        prop_assert_eq!(off.best_strategy, on.best_strategy);
        prop_assert_eq!(off.best_report, on.best_report);
        prop_assert_eq!(off.history, on.history);
        prop_assert_eq!(off.timing.cache, on.timing.cache);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A serving run — including the per-window telemetry, which lives in
    // the simulated accounting, not the recorder — is unchanged by the
    // tracer, in both the sequential and the parallel driver.
    #[test]
    fn serving_is_bit_identical_with_the_recorder_on(
        seed in 0u64..1_000_000,
        windows in 0usize..6,
        parallel in any::<bool>(),
    ) {
        let _g = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let model = small_model();
        let strategy = vec![XbarShape::square(64); model.layers.len()];
        let d = Deployment::compile("prop-obs", &model, &strategy, &AccelConfig::default());
        let rate = 0.8 * d.max_rate_rps();
        let slo = (6.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("prop-obs", d, rate, slo)];
        let wl = Workload {
            seed,
            horizon_ns: (200.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            telemetry_windows: windows,
            ..ServeConfig::default()
        };
        let (off, on) = with_and_without_tracer(|| {
            if parallel {
                run_serving_parallel(&tenants, &wl, &cfg)
            } else {
                run_serving(&tenants, &wl, &cfg)
            }
        });
        prop_assert_eq!(off, on);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The alert engine is a post-hoc pass over the report: evaluating it
    // must not perturb the serving results, and the timeline itself must
    // be deterministic — across repeated runs and across the sequential
    // vs. parallel drivers — even with drift + recovery emitting health
    // annotations onto it.
    #[test]
    fn alert_timeline_is_deterministic_and_driver_agnostic(
        seed in 0u64..1_000_000,
        drift in any::<bool>(),
    ) {
        let model = small_model();
        let strategy = vec![XbarShape::square(64); model.layers.len()];
        let d = Deployment::compile("prop-obs", &model, &strategy, &AccelConfig::default());
        let rate = 0.8 * d.max_rate_rps();
        let slo = (6.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("prop-obs", d, rate, slo)];
        let wl = Workload {
            seed,
            horizon_ns: (200.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            replicas: 2,
            telemetry_windows: 6,
            health: drift.then(|| HealthSpec {
                err_ppm_per_ms: 30_000,
                ..HealthSpec::default()
            }),
            ..ServeConfig::default()
        };
        let acfg = ServeAlertConfig::default();
        let plain = run_serving(&tenants, &wl, &cfg);
        // Evaluating the timeline reads the report; the report must be
        // exactly the one an alert-free consumer would see.
        let t1 = alert_timeline(&plain, &acfg);
        prop_assert_eq!(&plain, &run_serving(&tenants, &wl, &cfg));
        // Identical runs yield identical timelines, and the parallel
        // driver lands every alert and health annotation on the same
        // simulated-time instants as the sequential recurrence.
        prop_assert_eq!(&t1, &alert_timeline(&run_serving(&tenants, &wl, &cfg), &acfg));
        prop_assert_eq!(
            &t1,
            &alert_timeline(&run_serving_parallel(&tenants, &wl, &cfg), &acfg)
        );
        // Timeline events are emitted in simulated-time order.
        prop_assert!(t1.events.windows(2).all(|p| p[0].t_ns <= p[1].t_ns));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Tapping the vectorized search — streaming every episode row through
    // a sink and feeding a reward-stall detector — must not change a bit
    // of the outcome, and must stream exactly one row per episode.
    #[test]
    fn tapped_vec_search_is_bit_identical(seed in 0u64..1_000) {
        let model = small_model();
        let cfg = AccelConfig::default().with_tile_sharing();
        let cands = paper_hybrid_candidates();
        let scfg = RlSearchConfig {
            episodes: 8,
            ddpg: DdpgConfig {
                seed,
                hidden: 16,
                batch: 16,
                ..DdpgConfig::default()
            },
            train_steps: 2,
            ..RlSearchConfig::default()
        };
        let lanes = 2;
        let engine = || std::sync::Arc::new(EvalEngine::new(model.clone(), cfg));
        let (plain, _) = rl_search_vec_with_stats(&model, &cands, &cfg, &scfg, lanes, engine());
        let sink = autohet_obs::MemorySink::new();
        let mut stream = EpisodeStream::new("prop", Box::new(sink.clone()));
        let mut stall = StallDetector::new(3, 1e-9);
        let mut tap = SearchTap {
            episodes: Some(&mut stream),
            stall: Some(&mut stall),
        };
        let (tapped, _) =
            rl_search_vec_tapped(&model, &cands, &cfg, &scfg, lanes, engine(), &mut tap);
        prop_assert_eq!(plain.best_strategy, tapped.best_strategy);
        prop_assert_eq!(plain.best_report, tapped.best_report);
        prop_assert_eq!(&plain.history, &tapped.history);
        stream.flush();
        prop_assert_eq!(sink.lines().len(), plain.history.len());
    }
}
