//! Cross-crate integration: whole-model metric evaluation reproduces the
//! paper's qualitative claims on the real workloads.

use autohet::prelude::*;
use autohet_accel::metrics::evaluate_homogeneous;
use autohet_dnn::zoo;

#[test]
fn energy_decreases_with_crossbar_size_on_all_models() {
    // Fig. 9(c): across the square baselines, bigger crossbars mean fewer
    // peripherals and lower energy. Strictly monotone up to 256²; at 512²
    // ResNet152's many narrow (Cout ≤ 256) layers waste whole bitline
    // columns, so its minimum sits at 256² — a genuine crossover our
    // counting model exposes (EXPERIMENTS.md notes the divergence). The
    // robust claim: small crossbars are the energy disaster.
    for model in zoo::paper_models() {
        let cfg = AccelConfig::default();
        let energies: Vec<f64> = SQUARE_CANDIDATES
            .iter()
            .map(|&s| evaluate_homogeneous(&model, s, &cfg).energy_nj())
            .collect();
        for w in energies[..4].windows(2) {
            assert!(w[1] < w[0], "{}: {energies:?}", model.name);
        }
        // 512² stays far below the small-crossbar designs even where it
        // is not the exact minimum.
        assert!(
            energies[4] < 0.5 * energies[1],
            "{}: {energies:?}",
            model.name
        );
        assert!(energies[0] == energies.iter().cloned().fold(f64::MIN, f64::max));
    }
}

#[test]
fn area_decreases_monotonically_with_crossbar_size_on_vgg16() {
    // Table 5's trend.
    let m = zoo::vgg16();
    let cfg = AccelConfig::default();
    let mut prev = f64::MAX;
    for shape in SQUARE_CANDIDATES {
        let a = evaluate_homogeneous(&m, shape, &cfg).area_um2;
        assert!(a < prev, "{shape}: area {a} !< {prev}");
        prev = a;
    }
}

#[test]
fn latency_spread_is_modest_as_in_table5() {
    // Table 5: all VGG16 accelerators land within ~1.3× in latency.
    let m = zoo::vgg16();
    let cfg = AccelConfig::default();
    let lats: Vec<f64> = SQUARE_CANDIDATES
        .iter()
        .map(|&s| evaluate_homogeneous(&m, s, &cfg).latency_ns)
        .collect();
    let (min, max) = lats
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(max / min < 1.5, "latency spread {}x", max / min);
    // And the magnitude is in the paper's ballpark (~2-3e6 ns).
    assert!(min > 5e5 && max < 2e7, "latencies {lats:?}");
}

#[test]
fn rue_magnitudes_track_model_scale() {
    // The paper's RUE axes: AlexNet ~1e-4, VGG16 ~1e-5, ResNet152 ~1e-7 —
    // RUE shrinks as workloads grow. Check the ordering and rough decades.
    let cfg = AccelConfig::default();
    let rue = |m: &autohet_dnn::Model| best_homogeneous(m, &cfg).1.rue();
    let alex = rue(&zoo::alexnet());
    let vgg = rue(&zoo::vgg16());
    let resnet = rue(&zoo::resnet152());
    assert!(alex > vgg && vgg > resnet, "{alex} {vgg} {resnet}");
    assert!(alex / resnet > 100.0, "three-order spread expected");
}

#[test]
fn tile_sharing_helps_every_paper_model() {
    for model in zoo::paper_models() {
        let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
        let plain = evaluate(&model, &strategy, &AccelConfig::default());
        let shared = evaluate(
            &model,
            &strategy,
            &AccelConfig::default().with_tile_sharing(),
        );
        assert!(
            shared.tiles < plain.tiles,
            "{}: sharing freed no tiles",
            model.name
        );
        assert!(shared.utilization > plain.utilization);
        assert!(shared.rue() >= plain.rue());
    }
}

#[test]
fn noc_model_adds_energy_and_latency_and_punishes_scattering() {
    let m = zoo::alexnet();
    let strategy = vec![XbarShape::square(64); m.layers.len()];
    let plain = evaluate(&m, &strategy, &AccelConfig::default());
    let with_noc = evaluate(&m, &strategy, &AccelConfig::default().with_noc());
    assert!(plain.noc.is_none());
    let n = with_noc.noc.expect("noc report");
    assert!(n.energy_nj > 0.0 && n.latency_ns > 0.0);
    assert!(with_noc.energy_nj() > plain.energy_nj());
    assert!(with_noc.latency_ns > plain.latency_ns);

    // Scattering over tiny crossbars costs more interconnect.
    let tiny = evaluate(
        &m,
        &vec![XbarShape::square(32); m.layers.len()],
        &AccelConfig::default().with_noc(),
    );
    assert!(tiny.noc.unwrap().byte_hops > n.byte_hops);
}

#[test]
fn pipelined_execution_beats_sequential_for_batches_on_vgg16() {
    use autohet_accel::pipeline::pipeline_report;
    let m = zoo::vgg16();
    let cfg = AccelConfig::default();
    let strategy = vec![XbarShape::new(288, 256); m.layers.len()];
    let seq = evaluate(&m, &strategy, &cfg);
    let pipe = pipeline_report(&m, &strategy, &cfg);
    // The pipeline's fill equals the sequential latency.
    assert!((pipe.fill_ns - seq.latency_ns).abs() / seq.latency_ns < 1e-9);
    assert!(pipe.speedup(64) > 2.0, "speedup {}", pipe.speedup(64));
}

#[test]
fn energy_breakdown_components_are_consistent() {
    let m = zoo::alexnet();
    let r = evaluate_homogeneous(&m, XbarShape::square(128), &AccelConfig::default());
    let e = &r.energy;
    let total = e.adc + e.dac + e.cell + e.shift_add + e.buffer + e.leakage;
    assert!((r.energy_nj() - total).abs() < 1e-6);
    assert!(e.adc > 0.0 && e.leakage > 0.0);
    // Per-layer dynamic energies sum to the dynamic part of the total.
    let dyn_sum: f64 = r.layers.iter().map(|l| l.dynamic_nj).sum();
    assert!((dyn_sum - (total - e.leakage)).abs() / total < 1e-9);
}
