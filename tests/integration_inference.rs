//! Cross-crate integration: functional inference through programmed
//! crossbars vs the floating-point golden model, including searched
//! strategies and device-fault injection.

use autohet::prelude::*;
use autohet_accel::MappedModel;
use autohet_dnn::ops::{self, synthetic_weights};
use autohet_dnn::{zoo, LayerKind, Model, Stage, Tensor};
use autohet_rl::DdpgConfig;
use autohet_xbar::noise::NoiseModel;
use autohet_xbar::CostParams;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn float_reference(model: &Model, img: &Tensor, seed: u64) -> Tensor {
    let weights: Vec<Tensor> = model
        .layers
        .iter()
        .map(|l| synthetic_weights(l, seed))
        .collect();
    let last = model.layers.len() - 1;
    let mut act = img.clone();
    for stage in &model.stages {
        match *stage {
            Stage::Pool(w) => act = ops::max_pool(&act, w),
            Stage::Layer(i) => {
                let l = &model.layers[i];
                act = match l.kind {
                    LayerKind::DepthwiseConv => ops::depthwise_conv2d(l, &act, &weights[i]),
                    LayerKind::Conv => ops::conv2d(l, &act, &weights[i]),
                    LayerKind::Fc => Tensor::from_vec(
                        vec![l.out_channels],
                        ops::fully_connected(act.data(), &weights[i]),
                    ),
                };
                if i != last {
                    ops::relu(&mut act);
                }
            }
        }
    }
    act
}

#[test]
fn searched_strategy_preserves_numerics_on_micro_cnn() {
    // Search a heterogeneous configuration, then actually run inference
    // through it: accuracy must match the float model's decisions.
    let m = zoo::micro_cnn();
    let outcome = rl_search(
        &m,
        &paper_hybrid_candidates(),
        &AccelConfig::default().with_tile_sharing(),
        &RlSearchConfig {
            episodes: 30,
            ddpg: DdpgConfig {
                seed: 5,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 2,
            ..RlSearchConfig::default()
        },
    );
    let mm = MappedModel::program_synthetic(&m, &outcome.best_strategy, 9, CostParams::default());
    let mut agree = 0;
    for i in 0..6 {
        let img = m.dataset.synthetic_image(i);
        let analog = mm.infer(&img);
        let float = float_reference(&m, &img, 9);
        if analog.argmax() == float.argmax() {
            agree += 1;
        }
    }
    assert!(agree >= 5, "only {agree}/6 classifications agree");
}

#[test]
fn logits_track_float_reference_within_tolerance() {
    let m = zoo::test_cnn();
    let strategy = vec![XbarShape::new(288, 256); m.layers.len()];
    let mm = MappedModel::program_synthetic(&m, &strategy, 3, CostParams::default());
    let img = m.dataset.synthetic_image(0);
    let analog = mm.infer(&img);
    let float = float_reference(&m, &img, 3);
    let scale = float.max_abs();
    for (a, f) in analog.data().iter().zip(float.data()) {
        assert!(
            (a - f).abs() / scale < 0.1,
            "logit drift: crossbar {a} vs float {f}"
        );
    }
}

#[test]
fn mild_device_variation_keeps_decisions_heavy_faults_break_numerics() {
    let m = zoo::micro_cnn();
    let strategy = vec![XbarShape::square(64); m.layers.len()];
    let img = m.dataset.synthetic_image(2);
    let clean = MappedModel::program_synthetic(&m, &strategy, 4, CostParams::default());
    let clean_out = clean.infer(&img);

    // Mild variation: sub-half-LSB bitline perturbations vanish at the ADC.
    let mut mild = clean.clone();
    let mut rng = SmallRng::seed_from_u64(100);
    for ml in mild.layers.iter_mut() {
        for xb in ml.crossbars_mut() {
            xb.apply_noise(&NoiseModel::variation(0.002), &mut rng);
        }
    }
    let mild_out = mild.infer(&img);
    assert_eq!(mild_out.argmax(), clean_out.argmax());

    // Heavy stuck-at faults corrupt the outputs measurably.
    let mut broken = clean.clone();
    for ml in broken.layers.iter_mut() {
        for xb in ml.crossbars_mut() {
            xb.apply_noise(
                &NoiseModel {
                    conductance_sigma: 0.3,
                    stuck_at_zero: 0.1,
                    stuck_at_one: 0.1,
                },
                &mut rng,
            );
        }
    }
    let broken_out = broken.infer(&img);
    assert_ne!(broken_out.data(), clean_out.data());
}

#[test]
fn alexnet_first_conv_runs_through_crossbars() {
    // One real paper-workload layer end to end (full AlexNet inference is
    // exercised at example scale; a single 28×28 conv keeps CI fast).
    let m = zoo::alexnet();
    let layer = m.layers[0];
    let w = synthetic_weights(&layer, 0);
    let ml = autohet_accel::MappedLayer::program(
        &layer,
        XbarShape::square(32),
        &w,
        &CostParams::default(),
    );
    let img = m.dataset.synthetic_image(1);
    let cols = ops::im2col(&layer, &img);
    // Quantize one presentation and compare against the integer product.
    let xq: Vec<u8> = (0..layer.weight_rows())
        .map(|r| (cols.at2(r, 0) * 255.0).round() as u8)
        .collect();
    let y = ml.mvm(&xq, &autohet_xbar::Adc::new(10));
    let (wq, _) = autohet_dnn::quant::quantize_matrix(&w, 8);
    let xi: Vec<i32> = xq.iter().map(|&v| v as i32).collect();
    let expect: Vec<i64> = ops::mvm_i32(&wq, &xi).into_iter().map(i64::from).collect();
    assert_eq!(y, expect);
}
