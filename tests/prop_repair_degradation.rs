//! Property-based invariants of the lifetime-degradation cascade
//! (proptest): displaced-slice conservation through the extended
//! recalibrate → spare → remap → degrade repair, monotone damage along
//! the drift trajectory, and the ideal-corner identity — zero drift (or
//! epoch zero) reproduces the healthy evaluation bit for bit
//! (DESIGN.md §12).

use autohet::prelude::*;
use autohet_dnn::{Dataset, ModelBuilder};
use autohet_xbar::DriftModel;
use proptest::prelude::*;

/// A small but non-degenerate model for degradation properties.
fn small_model() -> autohet_dnn::Model {
    ModelBuilder::new("prop-drift-net", Dataset::Mnist)
        .conv(8, 3)
        .conv(16, 3)
        .fc(64)
        .fc(10)
        .build()
}

fn engine(scale: f64, seed: u64, spares: u32, shared: bool) -> EvalEngine {
    let cfg = if shared {
        AccelConfig::default().with_tile_sharing()
    } else {
        AccelConfig::default()
    };
    let drift = DriftModel {
        seed,
        ..DriftModel::nominal().with_rate_scale(scale)
    };
    EvalEngine::new(small_model(), cfg).with_drift(DriftEvalConfig {
        drift,
        draws: 2,
        probes: 2,
        spares_per_tile: spares,
        ..DriftEvalConfig::default()
    })
}

fn any_policy() -> impl Strategy<Value = RecoveryPolicy> {
    prop_oneof![
        Just(RecoveryPolicy::NoRecovery),
        Just(RecoveryPolicy::RecalibrateOnly),
        Just(RecoveryPolicy::FullCascade),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Conservation through the cascade: every occupied slot displaced by
    // a drift-killed crossbar is spared, remapped, or degraded away —
    // nothing vanishes, nothing double-counts — for arbitrary fault
    // seeds, drift intensities, epochs, and recovery arms.
    #[test]
    fn cascade_conserves_displaced_slices(
        seed in 0u64..1_000_000,
        scale in 0.0f64..64.0,
        t in 0.0f64..50_000.0,
        spares in 0u32..3,
        policy in any_policy(),
        shared in any::<bool>(),
    ) {
        let eng = engine(scale, seed, spares, shared);
        let strategy = vec![XbarShape::square(64); eng.model().layers.len()];
        let d = eng.evaluate_degraded(&strategy, t, policy);
        prop_assert_eq!(
            d.repair.spared + d.repair.remapped + d.repair.degraded,
            d.repair.dead_occupied
        );
        // A non-repairing arm never activates spares or remaps.
        if !policy.repairs() {
            prop_assert_eq!(d.repair.spared, 0);
            prop_assert_eq!(d.repair.remapped, 0);
            prop_assert_eq!(d.repair.degraded, d.repair.dead_occupied);
        }
        prop_assert!((0.0..=1.0).contains(&d.fidelity));
        prop_assert!((0.0..=1.0).contains(&d.accuracy_proxy));
    }

    // The trajectory is monotone in damage: because stuck sets are
    // nested in time, a later epoch never has fewer displaced slices and
    // never a better hard fidelity. Performance is *not* monotone along
    // the trajectory — the re-serialization fallback can shed slices, so
    // a heavily-degraded epoch can be cheaper than a mildly-degraded one
    // — but no degraded epoch ever beats the healthy hardware.
    #[test]
    fn damage_is_monotone_along_the_trajectory(
        seed in 0u64..1_000_000,
        scale in 0.5f64..16.0,
        policy in any_policy(),
        shared in any::<bool>(),
    ) {
        let eng = engine(scale, seed, 1, shared);
        let strategy = vec![XbarShape::square(64); eng.model().layers.len()];
        let healthy = eng.evaluate(&strategy);
        let epochs = [0.0, 1_000.0, 5_000.0, 20_000.0];
        let reports: Vec<_> = epochs
            .iter()
            .map(|&t| eng.evaluate_degraded(&strategy, t, policy))
            .collect();
        for w in reports.windows(2) {
            prop_assert!(w[1].repair.dead_occupied >= w[0].repair.dead_occupied);
            prop_assert!(w[1].fidelity <= w[0].fidelity);
        }
        for r in &reports {
            prop_assert!(r.eval.energy_nj() >= healthy.energy_nj());
            prop_assert!(r.eval.latency_ns >= healthy.latency_ns);
        }
    }

    // The ideal identity: at epoch zero — and at *any* epoch of the
    // frozen corner — the degraded evaluation reproduces the healthy
    // evaluation bit for bit, the hardware is fully intact, and the
    // recovery arm is irrelevant.
    #[test]
    fn zero_drift_reproduces_the_healthy_evaluation(
        seed in 0u64..1_000_000,
        t in 0.0f64..100_000.0,
        policy in any_policy(),
        shared in any::<bool>(),
    ) {
        let eng = engine(0.0, seed, 1, shared);
        let strategy = vec![XbarShape::new(72, 64); eng.model().layers.len()];
        let healthy = eng.evaluate(&strategy);
        let d = eng.evaluate_degraded(&strategy, t, policy);
        prop_assert_eq!(d.repair.dead_occupied, 0);
        prop_assert_eq!(d.fidelity, 1.0);
        if policy.repairs() {
            // Spare provisioning prices in area but nothing is active,
            // so the performance metrics stay identical.
            prop_assert_eq!(d.eval.latency_ns, healthy.latency_ns);
            prop_assert_eq!(d.eval.energy_nj(), healthy.energy_nj());
        } else {
            prop_assert_eq!(&d.eval, &healthy);
        }
    }

    // `evaluate_degraded` is a pure function of its inputs: two engines
    // built independently agree bit for bit.
    #[test]
    fn degraded_evaluation_is_deterministic(
        seed in 0u64..1_000_000,
        scale in 0.0f64..8.0,
        t in 0.0f64..20_000.0,
        policy in any_policy(),
    ) {
        let strategy = vec![XbarShape::square(64); small_model().layers.len()];
        let a = engine(scale, seed, 1, true).evaluate_degraded(&strategy, t, policy);
        let b = engine(scale, seed, 1, true).evaluate_degraded(&strategy, t, policy);
        prop_assert_eq!(a, b);
    }
}
