//! Cross-crate integration: searched strategies (autohet) compiled into
//! deployments and driven through the serving simulator (autohet-serve).

use autohet::prelude::*;
use autohet::studies::{serving_study, ServingStudyRow};

fn label(rows: &[ServingStudyRow], l: &str) -> ServingStudyRow {
    rows.iter()
        .find(|r| r.label == l)
        .unwrap_or_else(|| panic!("missing row {l}"))
        .clone()
}

#[test]
fn serving_study_separates_deployment_configs_under_identical_load() {
    let rows = serving_study(&autohet_dnn::zoo::lenet5(), 0.95, 11);
    assert_eq!(rows.len(), 4);
    // Identical load: every configuration saw the same request stream.
    assert!(rows.iter().all(|r| r.submitted == rows[0].submitted));
    assert!(rows[0].submitted > 500);

    // Measurable differences between configurations:
    // (1) tile sharing frees allocated crossbars, cutting leakage energy
    //     at unchanged pipeline latency;
    let homo_based = label(&rows, "homogeneous/tile-based");
    let homo_shared = label(&rows, "homogeneous/tile-shared");
    assert!(
        homo_shared.energy_nj < homo_based.energy_nj,
        "tile sharing should cut energy: {} vs {}",
        homo_shared.energy_nj,
        homo_based.energy_nj
    );
    assert_eq!(homo_based.p99_ns, homo_shared.p99_ns);

    // (2) the strategy changes service times, so tail latency separates
    //     homogeneous from AutoHet under the same arrivals.
    let het_based = label(&rows, "autohet/tile-based");
    assert_ne!(
        homo_based.p99_ns, het_based.p99_ns,
        "strategies should produce different tails"
    );
    assert_ne!(homo_based.energy_nj, het_based.energy_nj);
}

#[test]
fn serving_report_is_reproducible_through_the_public_prelude() {
    let model = autohet_dnn::zoo::lenet5();
    let cfg = AccelConfig::default();
    let (shape, _) = best_homogeneous(&model, &cfg);
    let d = Deployment::compile("lenet", &model, &vec![shape; model.layers.len()], &cfg);
    let rate = 0.8 * d.max_rate_rps();
    let slo = (5.0 * d.pipeline.fill_ns) as u64;
    let tenants = vec![TenantSpec::new("lenet", d, rate, slo)];
    let wl = Workload {
        seed: 77,
        horizon_ns: (1_000.0 / rate * 1e9) as u64,
    };
    let serve = ServeConfig {
        replicas: 2,
        ..ServeConfig::default()
    };
    let a = run_serving(&tenants, &wl, &serve);
    let b = run_serving(&tenants, &wl, &serve);
    let c = run_serving_parallel(&tenants, &wl, &serve);
    assert_eq!(a, b, "single-threaded runs must be bit-identical");
    assert_eq!(a, c, "multi-worker mode must reproduce the event loop");
    assert!(a.total_completed > 0);
    assert_eq!(a.total_completed + a.total_rejected, a.tenants[0].submitted);
}

#[test]
fn sharded_runtime_serves_searched_strategies_end_to_end() {
    use autohet::search::greedy::greedy_layerwise_rue;
    let model = autohet_dnn::zoo::lenet5();
    let cfg = AccelConfig::default();
    let het = greedy_layerwise_rue(&model, &paper_hybrid_candidates(), &cfg).strategy;
    let d = Deployment::compile("lenet/autohet", &model, &het, &cfg);
    let rate = 0.4 * d.max_rate_rps();
    let slo = (8.0 * d.pipeline.fill_ns) as u64;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec::new(&format!("t{i}"), d.clone(), rate, slo).with_weight(1 + i as u64))
        .collect();
    let wl = Workload {
        seed: 13,
        horizon_ns: 40_000_000,
    };
    let shard_cfg = ShardConfig {
        shards: 2,
        epochs: 8,
        ..ShardConfig::default()
    };
    let r = run_sharded(&tenants, &wl, &shard_cfg);
    assert_eq!(r, run_sharded_reference(&tenants, &wl, &shard_cfg));
    assert_eq!(r.lost_requests(), 0);
    assert!(r.total_completed > 0);
    assert_eq!(r.windows.len(), shard_cfg.epochs);
    assert!(r.fairness_index > 0.0 && r.fairness_index <= 1.0);
    // The searched strategy's report conserves per-tenant counts.
    for t in &r.tenants {
        assert_eq!(t.submitted, t.completed + t.rejected, "{}", t.name);
    }
}

#[test]
fn serving_study_rows_carry_the_fairness_schema() {
    // Single-tenant study rows sit at the Jain-index fixed point 1.0 —
    // the schema matches ServingReport::fairness_index by construction.
    let rows = serving_study(&autohet_dnn::zoo::micro_cnn(), 0.8, 3);
    assert!(rows.iter().all(|r| r.fairness_index == 1.0), "{rows:?}");
}

#[test]
fn bursty_tenant_degrades_its_own_slo_not_its_neighbor_throughput() {
    let model = autohet_dnn::zoo::lenet5();
    let cfg = AccelConfig::default();
    let (shape, _) = best_homogeneous(&model, &cfg);
    let strategy = vec![shape; model.layers.len()];
    let mk = |name: &str| Deployment::compile(name, &model, &strategy, &cfg);
    let probe = mk("probe");
    let rate = 0.45 * probe.max_rate_rps();
    let slo = (6.0 * probe.pipeline.fill_ns) as u64;
    let steady = TenantSpec::new("steady", mk("steady"), rate, slo);
    let bursty = TenantSpec::new("bursty", mk("bursty"), rate, slo).with_burst(BurstSpec {
        period_ns: 10_000_000,
        burst_ns: 2_000_000,
        factor: 6.0,
    });
    let wl = Workload {
        seed: 5,
        horizon_ns: (2_000.0 / rate * 1e9) as u64,
    };
    let r = run_serving(&[steady, bursty], &wl, &ServeConfig::default());
    let steady_stats = &r.tenants[0];
    let bursty_stats = &r.tenants[1];
    assert!(bursty_stats.submitted > steady_stats.submitted);
    assert!(bursty_stats.p99_ns >= steady_stats.p99_ns);
    // Both tenants keep making progress under the shared replica.
    assert!(steady_stats.completed > 0 && bursty_stats.completed > 0);
}
