//! Property-based contracts of the device-variation subsystem
//! (DESIGN.md §11): the packed variation MVM must be **bit-identical**
//! to the retained scalar-variation reference for every shape / seed /
//! operation-unit size / ADC resolution, the Monte-Carlo robustness
//! oracle must be a pure function of its seeds, and NSGA-II fronts must
//! honour their dominance invariants.

use autohet::pareto::dominates_min;
use autohet::prelude::*;
use autohet::robust::NsgaConfig;
use autohet_accel::robustness::layer_noise;
use autohet_dnn::Layer;
use autohet_xbar::{Adc, CostParams, Crossbar, VariedCrossbar, XbarShape};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A programmed 1-bit-cell crossbar of arbitrary geometry with one
/// sampled variation draw, an input vector, and an ADC resolution.
/// Shapes run up to the paper's 108×64 bit-serial configuration and unit
/// sizes over every supported S_ou.
fn arb_varied() -> impl Strategy<Value = (Crossbar, VariedCrossbar, Vec<u8>, u32)> {
    (
        1usize..=108,
        1usize..=64,
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        2u32..=12,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(rows, cols, s_ou, adc_bits, weight_seed, draw_seed)| {
            let mut rng = SmallRng::seed_from_u64(weight_seed);
            let weights: Vec<Vec<i32>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
                .collect();
            let shape = XbarShape::new(rows.next_power_of_two().max(4) as u32, cols as u32);
            let xb = Crossbar::program(shape, &weights, 8);
            let model = VariationModel {
                s_ou,
                ..VariationModel::hypermetric()
            };
            let varied = VariedCrossbar::sample(&xb, &model, draw_seed);
            let input: Vec<u8> = (0..rows).map(|_| rng.gen()).collect();
            (xb, varied, input, adc_bits)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Packed LUT fast path == scalar per-threshold reference, bit for
    // bit, across shapes, seeds, unit sizes and saturating ADCs.
    #[test]
    fn packed_variation_mvm_matches_scalar_reference(
        (_xb, varied, input, adc_bits) in arb_varied(),
    ) {
        let adc = Adc::new(adc_bits);
        prop_assert_eq!(varied.mvm(&input, &adc), varied.mvm_scalar(&input, &adc));
    }

    // Sampling is a pure function of (crossbar, model, seed).
    #[test]
    fn variation_sampling_is_seed_deterministic(
        (xb, varied, input, adc_bits) in arb_varied(),
        other_seed in any::<u64>(),
    ) {
        let again = VariedCrossbar::sample(&xb, varied.model(), 0xD5AA_11CE);
        let twice = VariedCrossbar::sample(&xb, varied.model(), 0xD5AA_11CE);
        let adc = Adc::new(adc_bits);
        prop_assert_eq!(again.mvm(&input, &adc), twice.mvm(&input, &adc));
        // And an ideal draw reproduces the noise-free crossbar exactly,
        // whatever the seed.
        let exact = VariedCrossbar::sample(&xb, &VariationModel {
            s_ou: varied.model().s_ou,
            ..VariationModel::ideal()
        }, other_seed);
        prop_assert_eq!(exact.mvm(&input, &adc), xb.mvm(&input, &adc));
    }

    // The Monte-Carlo noise oracle is deterministic in its config and
    // independent of evaluation order or engine sharing.
    #[test]
    fn layer_noise_is_seed_deterministic(
        cin in 1usize..=6,
        cout in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let layer = Layer::conv(0, cin, cout, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig {
            draws: 2,
            probes: 2,
            seed,
            ..NoiseEvalConfig::default()
        };
        let cost = CostParams::default();
        let shape = XbarShape::new(72, 64);
        let a = layer_noise(&layer, shape, &cost, &cfg);
        let b = layer_noise(&layer, shape, &cost, &cfg);
        prop_assert_eq!(a.mean_dev.to_bits(), b.mean_dev.to_bits());
        prop_assert_eq!(a.worst_dev.to_bits(), b.worst_dev.to_bits());
        prop_assert_eq!(a.exact_rate.to_bits(), b.exact_rate.to_bits());
        prop_assert_eq!(a.argmax_rate.to_bits(), b.argmax_rate.to_bits());
    }
}

fn quick_nsga() -> NsgaConfig {
    NsgaConfig {
        population: 8,
        generations: 2,
        seed: 5,
        ..NsgaConfig::default()
    }
}

fn quick_noise(scale: f64) -> NoiseEvalConfig {
    NoiseEvalConfig {
        variation: VariationModel::hypermetric().with_deviation_scale(scale),
        draws: 2,
        probes: 2,
        ..NoiseEvalConfig::default()
    }
}

/// No member of a final NSGA front may dominate another, whatever the
/// noise level; duplicated strategies never survive deduplication.
#[test]
fn nsga_front_members_are_mutually_non_dominated() {
    let m = autohet_dnn::zoo::micro_cnn();
    for scale in [1.0, 0.5] {
        let out = nsga_search(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick_nsga(),
            &quick_noise(scale),
        );
        assert!(!out.front.is_empty());
        for a in &out.front {
            for b in &out.front {
                assert!(
                    !dominates_min(&a.objectives(), &b.objectives())
                        || a.objectives() == b.objectives(),
                    "front member dominated at scale {scale}"
                );
            }
        }
        for (i, a) in out.front.iter().enumerate() {
            for b in &out.front[i + 1..] {
                assert_ne!(a.strategy, b.strategy, "duplicate strategy on front");
            }
        }
    }
}

/// Tightening the device deviations can only shrink the front's noise
/// axis: the best (and worst) front noise deviation is non-increasing as
/// the lognormal sigmas scale down, and a zero-deviation model collapses
/// the axis to exactly 0 (where the 3-objective front degenerates to the
/// 2-objective energy × latency trade-off).
#[test]
fn fronts_shrink_monotonically_under_tighter_noise() {
    let m = autohet_dnn::zoo::micro_cnn();
    let run = |scale: f64| {
        nsga_search(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick_nsga(),
            &quick_noise(scale),
        )
    };
    let fronts: Vec<_> = [1.0, 0.5, 0.0].iter().map(|&s| run(s)).collect();
    let worst = |o: &RobustSearchOutcome| o.front.iter().map(|p| p.noise_dev).fold(0.0, f64::max);
    let best = |o: &RobustSearchOutcome| {
        o.front
            .iter()
            .map(|p| p.noise_dev)
            .fold(f64::INFINITY, f64::min)
    };
    for w in fronts.windows(2) {
        assert!(
            worst(&w[1]) <= worst(&w[0]) + 1e-12,
            "worst front noise rose under tighter deviations"
        );
        assert!(
            best(&w[1]) <= best(&w[0]) + 1e-12,
            "best front noise rose under tighter deviations"
        );
    }
    for p in &fronts[2].front {
        assert_eq!(p.noise_dev, 0.0);
        assert_eq!(p.accuracy_proxy, 1.0);
    }
}
