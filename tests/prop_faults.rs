//! Property-based invariants of the fault-injection/repair stack
//! (proptest): the repair never leaves work on a faulted crossbar, the
//! serving failover stays bit-deterministic, and the end-to-end fault
//! campaign is a pure function of its seed.

use autohet::prelude::*;
use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::repair::repair_allocation;
use autohet_accel::tile_shared::apply_tile_sharing;
use autohet_dnn::{Dataset, ModelBuilder};
use autohet_serve::{run_serving, run_serving_parallel};
use autohet_xbar::fault::FaultMap;
use proptest::prelude::*;

/// A small but non-degenerate model for repair/serving properties.
fn small_model() -> autohet_dnn::Model {
    ModelBuilder::new("prop-net", Dataset::Mnist)
        .conv(8, 3)
        .conv(16, 3)
        .fc(64)
        .fc(10)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The repair invariant: after `repair_allocation`, no tile holds
    // more occupied slices than it has usable (non-dead) primary slots
    // plus activated spares — i.e. the repaired allocation never
    // references a faulted crossbar — and every displaced slice is
    // accounted for exactly once.
    #[test]
    fn repaired_allocation_never_references_a_faulted_crossbar(
        seed in 0u64..1_000_000,
        dead in 0.0f64..0.9,
        spares in 0u32..3,
        shared in any::<bool>(),
    ) {
        let model = small_model();
        let strategy = vec![XbarShape::square(64); model.layers.len()];
        let mut alloc = allocate_tile_based(&model, &strategy, 4);
        if shared {
            apply_tile_sharing(&mut alloc);
        }
        let caps: Vec<u32> = alloc.tiles.iter().map(|t| t.capacity).collect();
        let rates = FaultRates {
            dead_xbar: dead,
            degraded_adc: dead / 2.0,
            adc_bits_lost: 2,
        };
        let faults = FaultMap::sample(seed, rates, &caps, spares);
        let before: u64 = alloc
            .tiles
            .iter()
            .map(|t| t.occupants.iter().map(|o| o.xbars as u64).sum::<u64>())
            .sum();
        let policy = RepairPolicy::no_spares(DegradationMode::Reserialize).with_spares(spares);
        let report = repair_allocation(&mut alloc, &faults, &policy);

        // Conservation: every dead occupied slice was spared, remapped,
        // or degraded away — nothing vanishes, nothing double-counts.
        prop_assert_eq!(
            report.spared + report.remapped + report.degraded,
            report.dead_occupied
        );
        let after: u64 = alloc
            .tiles
            .iter()
            .map(|t| t.occupants.iter().map(|o| o.xbars as u64).sum::<u64>())
            .sum();
        prop_assert_eq!(after, before - report.degraded);

        // Per tile: the occupied slices fit inside usable primary slots
        // plus the spares the repair activated there.
        for (t, tile) in alloc.tiles.iter().enumerate() {
            let occupied: u64 = tile.occupants.iter().map(|o| o.xbars as u64).sum();
            let usable = tile.capacity as u64 - faults.tiles[t].dead_slots() as u64;
            let activated = report.activated_per_tile[t];
            prop_assert!(
                occupied <= usable + activated,
                "tile {t}: {occupied} occupied > {usable} usable + {activated} spares"
            );
            prop_assert!(activated <= faults.tiles[t].usable_spares() as u64);
        }
    }

    // `evaluate_faulted` is a pure function of (strategy, seed, rates):
    // two engines built independently agree bit-for-bit.
    #[test]
    fn faulted_evaluation_is_deterministic(
        seed in 0u64..1_000_000,
        dead in 0.0f64..0.6,
        shared in any::<bool>(),
    ) {
        let model = small_model();
        let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
        let cfg = if shared {
            AccelConfig::default().with_tile_sharing()
        } else {
            AccelConfig::default()
        };
        let rates = FaultRates {
            dead_xbar: dead,
            degraded_adc: dead / 3.0,
            adc_bits_lost: 1,
        };
        let policy = RepairPolicy::default();
        let a = EvalEngine::new(model.clone(), cfg)
            .evaluate_faulted(&strategy, seed, rates, &policy);
        let b = EvalEngine::new(model, cfg)
            .evaluate_faulted(&strategy, seed, rates, &policy);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    // Serving runs are costlier: fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Under instance failures, the multi-worker serving driver stays
    // bit-identical to the single-threaded event loop for arbitrary
    // seeds and failure intensities.
    #[test]
    fn parallel_serving_matches_single_threaded_under_failures(
        wl_seed in 0u64..10_000,
        fail_seed in 0u64..10_000,
        mtbf_ms in 1u64..10,
        replicas in 1usize..4,
    ) {
        let model = small_model();
        let strategy = vec![XbarShape::square(64); model.layers.len()];
        let d = Deployment::compile("prop", &model, &strategy, &AccelConfig::default());
        let rate = 0.7 * d.max_rate_rps();
        let slo = (6.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("prop", d, rate, slo)];
        let wl = Workload {
            seed: wl_seed,
            horizon_ns: (300.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            replicas,
            failures: Some(FailureSpec {
                mtbf_ns: mtbf_ms * 1_000_000,
                mttr_ns: 500_000,
                seed: fail_seed,
            }),
            ..ServeConfig::default()
        };
        let single = run_serving(&tenants, &wl, &cfg);
        let multi = run_serving_parallel(&tenants, &wl, &cfg);
        prop_assert_eq!(&single, &multi);
        // Request conservation holds even when failures drop requests.
        let t = &single.tenants[0];
        prop_assert_eq!(t.completed + t.rejected + t.failed, t.submitted);
    }

    // The end-to-end campaign is a pure function of its config: same
    // seed ⇒ bit-identical report (this is what makes campaign tables
    // in EXPERIMENTS.md reproducible).
    #[test]
    fn fault_campaign_reports_are_seed_reproducible(seed in 0u64..10_000) {
        let model = small_model();
        let cfg = FaultCampaignConfig {
            fault_rates: vec![0.0, 0.15],
            seed,
            load: 0.5,
            requests: 150.0,
            spares_per_tile: 1,
            replicas: 2,
        };
        let a = fault_campaign(&model, &cfg);
        let b = fault_campaign(&model, &cfg);
        prop_assert_eq!(a, b);
    }
}
