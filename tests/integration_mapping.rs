//! Cross-crate integration: layer geometry (dnn) → Eq. 4 footprints
//! (xbar) → allocation (accel), on the paper's real workloads.

use autohet::prelude::*;
use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::tile_shared::apply_tile_sharing;
use autohet_dnn::zoo;
use autohet_xbar::utilization::footprint;

#[test]
fn every_paper_model_maps_on_every_candidate() {
    for model in zoo::paper_models() {
        for shape in all_candidates() {
            for layer in &model.layers {
                let fp = footprint(layer, shape);
                assert!(fp.total_xbars() >= 1);
                let u = fp.utilization();
                assert!(
                    u > 0.0 && u <= 1.0 + 1e-12,
                    "{} layer {} on {shape}: util {u}",
                    model.name,
                    layer.index
                );
            }
        }
    }
}

#[test]
fn vgg16_crossbar_demand_shrinks_with_crossbar_size() {
    let m = zoo::vgg16();
    let mut prev = u64::MAX;
    for shape in SQUARE_CANDIDATES {
        let total: u64 = m
            .layers
            .iter()
            .map(|l| footprint(l, shape).total_xbars())
            .sum();
        assert!(total < prev, "{shape}: {total} !< {prev}");
        prev = total;
    }
}

#[test]
fn allocation_conserves_crossbars_across_sharing() {
    for model in [zoo::alexnet(), zoo::vgg16()] {
        let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
        let mut alloc = allocate_tile_based(&model, &strategy, 4);
        let occupied_before = alloc.occupied_xbars();
        let report = apply_tile_sharing(&mut alloc);
        assert_eq!(alloc.occupied_xbars(), occupied_before);
        assert_eq!(report.tiles_after, alloc.tiles.len());
        assert!(alloc.tiles.iter().all(|t| t.occupied() <= t.capacity));
    }
}

#[test]
fn resnet152_stem_split_kernel_allocates() {
    // The 7×7 stem on 32-row crossbars exercises the kernel-splitting
    // path end to end.
    let m = zoo::resnet152();
    let strategy = vec![XbarShape::square(32); m.layers.len()];
    let alloc = allocate_tile_based(&m, &strategy, 4);
    let stem = &alloc.per_layer[0];
    assert_eq!(stem.footprint.kernels_per_column, 0);
    assert!(stem.footprint.total_xbars() >= 6);
}

#[test]
fn rectangle_crossbars_reduce_vgg16_crossbar_count() {
    // §3.3's pitch quantified: 72×64 needs fewer crossbars than 64×64 for
    // the all-3×3 VGG16 body.
    let m = zoo::vgg16();
    let count = |shape: XbarShape| -> u64 {
        m.layers
            .iter()
            .filter(|l| l.kernel == 3)
            .map(|l| footprint(l, shape).total_xbars())
            .sum()
    };
    assert!(count(XbarShape::new(72, 64)) < count(XbarShape::square(64)));
}
