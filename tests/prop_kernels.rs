//! Property-based contracts of the fast kernel layer (DESIGN.md §9):
//! the bit-packed crossbar MVM must be **bit-identical** to the retained
//! scalar reference for every shape / cell precision / ADC resolution /
//! noise state, and the batched GEMM training path must leave seeded
//! DDPG searches exactly reproducible.

use autohet::prelude::*;
use autohet_accel::controller::MappedLayer;
use autohet_dnn::ops::synthetic_weights;
use autohet_dnn::Layer;
use autohet_rl::DdpgConfig;
use autohet_xbar::noise::NoiseModel;
use autohet_xbar::{Adc, CostParams, Crossbar, XbarShape};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A programmed crossbar of arbitrary geometry and cell precision, with
/// an input vector matching its used rows. `cell_bits` ranges over every
/// divisor of the 8-bit weights, including the multi-level cells the
/// heterogeneous configurations use.
fn arb_programmed() -> impl Strategy<Value = (Crossbar, Vec<u8>, u32)> {
    (
        1usize..=96,
        1usize..=96,
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        // ADC resolutions from heavily saturating (2-bit) to exact.
        2u32..=12,
        any::<u64>(),
    )
        .prop_map(|(rows, cols, cell_bits, adc_bits, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let weights: Vec<Vec<i32>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
                .collect();
            let shape = XbarShape::new(rows.next_power_of_two().max(4) as u32, cols as u32);
            let xb = Crossbar::program_with_cells(shape, &weights, 8, cell_bits);
            let input: Vec<u8> = (0..rows).map(|_| rng.gen()).collect();
            (xb, input, adc_bits)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Fast packed path == scalar reference, bit for bit, on clean
    // crossbars (saturating ADCs included).
    #[test]
    fn fast_mvm_matches_scalar_reference((xb, input, adc_bits) in arb_programmed()) {
        prop_assert!(xb.is_bit_packed());
        let adc = Adc::new(adc_bits);
        prop_assert_eq!(xb.mvm(&input, &adc), xb.mvm_scalar(&input, &adc));
    }

    // Stuck-at faults keep integer conductance levels — the packed path
    // must survive them and still agree with the scalar reference.
    #[test]
    fn fast_mvm_matches_scalar_under_stuck_at_faults(
        (mut xb, input, adc_bits) in arb_programmed(),
        fault_seed in any::<u64>(),
    ) {
        let model = NoiseModel { stuck_at_zero: 0.05, stuck_at_one: 0.05, ..NoiseModel::ideal() };
        xb.apply_noise(&model, &mut SmallRng::seed_from_u64(fault_seed));
        prop_assert!(xb.is_bit_packed(), "pure faults must keep the packed path");
        let adc = Adc::new(adc_bits);
        prop_assert_eq!(xb.mvm(&input, &adc), xb.mvm_scalar(&input, &adc));
    }

    // Analog conductance variation drops to the `f64` fallback — which
    // must still agree with the scalar reference exactly.
    #[test]
    fn dense_fallback_matches_scalar_under_variation(
        (mut xb, input, adc_bits) in arb_programmed(),
        noise_seed in any::<u64>(),
    ) {
        xb.apply_noise(&NoiseModel::variation(0.1), &mut SmallRng::seed_from_u64(noise_seed));
        prop_assert!(!xb.is_bit_packed(), "variation must drop the packed path");
        let adc = Adc::new(adc_bits);
        prop_assert_eq!(xb.mvm(&input, &adc), xb.mvm_scalar(&input, &adc));
    }

    // The batched entry point is exactly N independent MVMs.
    #[test]
    fn mvm_batch_is_n_scalar_mvms(
        (xb, input, adc_bits) in arb_programmed(),
        n in 1usize..=8,
    ) {
        let adc = Adc::new(adc_bits);
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|k| input.iter().map(|&v| v.rotate_left(k as u32)).collect())
            .collect();
        let batched = xb.mvm_batch(&inputs, &adc);
        prop_assert_eq!(batched.len(), n);
        for (out, x) in batched.iter().zip(&inputs) {
            prop_assert_eq!(out, &xb.mvm_scalar(x, &adc));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // A mapped layer's batched (and parallel) MVM equals its per-input
    // MVM — the controller splits/combines across the crossbar grid
    // identically either way.
    #[test]
    fn mapped_layer_batch_matches_per_input(
        cin in 1usize..=8,
        cout in 1usize..=24,
        seed in any::<u64>(),
    ) {
        let layer = Layer::conv(0, cin, cout, 3, 1, 1, 8);
        let ml = MappedLayer::program(
            &layer,
            XbarShape::square(64),
            &synthetic_weights(&layer, 0),
            &CostParams::default(),
        );
        let adc = Adc::new(10);
        let mut rng = SmallRng::seed_from_u64(seed);
        let inputs: Vec<Vec<u8>> = (0..5)
            .map(|_| (0..layer.weight_rows()).map(|_| rng.gen()).collect())
            .collect();
        let per_input: Vec<Vec<i64>> = inputs.iter().map(|x| ml.mvm(x, &adc)).collect();
        prop_assert_eq!(ml.mvm_batch(&inputs, &adc), per_input.clone());
        prop_assert_eq!(ml.mvm_batch_par(&inputs, &adc), per_input);
    }
}

/// Two identical seeded RL searches must produce identical episode
/// histories — the batched GEMM training path keeps every accumulation
/// in fixed order, so DDPG updates are exactly reproducible.
#[test]
fn seeded_ddpg_search_is_bit_reproducible() {
    let run = || {
        let m = autohet_dnn::zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        let cands = paper_hybrid_candidates();
        let scfg = RlSearchConfig {
            episodes: 40,
            ddpg: DdpgConfig {
                seed: 11,
                hidden: 32,
                batch: 16,
                ..DdpgConfig::default()
            },
            train_steps: 2,
            ..RlSearchConfig::default()
        };
        rl_search(&m, &cands, &cfg, &scfg)
            .history
            .iter()
            .map(|e| (e.episode, e.rue.to_bits(), e.reward.to_bits()))
            .collect::<Vec<_>>()
    };
    let a = run();
    assert_eq!(a, run());
    assert_eq!(a.len(), 40);
}
