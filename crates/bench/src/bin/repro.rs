//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <id> [--episodes N] [--seed S] [--quick]
//! ids: motiv fig3 fig4 fig5 fig9 fig10 fig11a fig11b fig11c
//!      table3 table4 table5 search-time study-adc study-rxb study-multi
//!      comparators all
//! ```
//!
//! `--quick` caps RL searches at 40 episodes and restricts multi-model
//! experiments to AlexNet + VGG16 (ResNet152's 300-round searches are the
//! slow part); the default regenerates everything at paper scale.

use autohet_bench::*;
use autohet_dnn::zoo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <id> [--episodes N] [--seed S] [--quick] [--csv]");
        eprintln!("ids: motiv fig3 fig4 fig5 fig9 fig10 fig11a fig11b fig11c");
        eprintln!("     table3 table4 table5 search-time study-adc study-rxb study-multi comparators convergence pareto mobilenet all");
        std::process::exit(2);
    }
    let id = args[0].as_str();
    let mut rc = ReproConfig::default();
    let mut quick = false;
    let mut csv = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--episodes" => {
                i += 1;
                rc.episodes = args[i].parse().expect("--episodes N");
            }
            "--seed" => {
                i += 1;
                rc.seed = args[i].parse().expect("--seed S");
            }
            "--quick" => quick = true,
            "--csv" => csv = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if quick {
        rc.episodes = rc.episodes.min(40);
    }

    let models = if quick {
        vec![zoo::alexnet(), zoo::vgg16()]
    } else {
        zoo::paper_models()
    };
    let vgg = zoo::vgg16();

    let print = move |t: Table| {
        if csv {
            println!("# {}", t.title);
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    };
    let print_all = |ts: Vec<Table>| ts.into_iter().for_each(print);

    match id {
        "motiv" => print(motiv()),
        "fig3" => print(fig3()),
        "fig4" => print(fig4()),
        "fig5" => print(fig5()),
        "fig9" => print_all(fig9(&rc, &models)),
        "fig10" => print_all(fig10(&rc, &models)),
        "fig11a" => print(fig11a(&rc, &vgg)),
        "fig11b" => print(fig11b(&rc, &vgg)),
        "fig11c" => print(fig11c(&rc, &vgg)),
        "table3" => print(table3(&rc)),
        "table4" => print(table4(&rc, &models)),
        "table5" => print(table5(&rc)),
        "search-time" => print(search_time(&rc, &vgg)),
        "study-adc" => print(study_adc()),
        "study-rxb" => print(study_rxb()),
        "study-multi" => print(study_multi_model()),
        "comparators" => print(comparators(&rc, &vgg)),
        "convergence" => print(convergence(&rc, &vgg)),
        "pareto" => print(pareto(&rc, &vgg)),
        "mobilenet" => print(mobilenet(&rc)),
        "all" => {
            print(motiv());
            print(fig3());
            print(fig4());
            print(fig5());
            print_all(fig9(&rc, &models));
            print_all(fig10(&rc, &models));
            print(fig11a(&rc, &vgg));
            print(fig11b(&rc, &vgg));
            print(fig11c(&rc, &vgg));
            print(table3(&rc));
            print(table4(&rc, &models));
            print(table5(&rc));
            print(search_time(&rc, &vgg));
            print(study_adc());
            print(study_rxb());
            print(study_multi_model());
            print(comparators(&rc, &vgg));
            print(convergence(&rc, &vgg));
            print(pareto(&rc, &vgg));
            print(mobilenet(&rc));
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}
