//! `regress` — the perf-regression sentinel over `BENCH_*.json` snapshots.
//!
//! ```text
//! regress --baseline BENCH_kernels.json --current BENCH_new.json \
//!         [--threshold PCT] [--abs-slack NS] [--hard] [--out verdict.jsonl]
//! ```
//!
//! Compares two min-of-N benchmark snapshots (as written by
//! `scripts/bench_snapshot.sh`) with the noise-aware threshold from
//! [`autohet_obs::regress`]: a benchmark has regressed iff
//! `current > baseline * (1 + threshold) + abs_slack`. Prints a
//! human-readable table to stdout and, with `--out`, writes the full
//! verdict as JSONL (per-row records plus a trailing summary line).
//!
//! Exit status: 0 in warn mode (the default) regardless of verdicts;
//! with `--hard`, 1 if any benchmark regressed. Parse/IO failures exit 2.

use autohet_obs::regress::{compare, parse_snapshot, RegressConfig};

fn usage() -> ! {
    eprintln!(
        "usage: regress --baseline FILE --current FILE \
         [--threshold PCT] [--abs-slack NS] [--hard] [--out FILE]"
    );
    std::process::exit(2);
}

fn read_snapshot(path: &str) -> autohet_obs::regress::BenchSnapshot {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("regress: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match parse_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("regress: cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut current = None;
    let mut out = None;
    let mut hard = false;
    let mut cfg = RegressConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--current" => {
                i += 1;
                current = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threshold" => {
                i += 1;
                let pct: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.rel_threshold = pct / 100.0;
            }
            "--abs-slack" => {
                i += 1;
                cfg.abs_slack_ns = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hard" => hard = true,
            _ => usage(),
        }
        i += 1;
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage()
    };

    let base = read_snapshot(&baseline);
    let curr = read_snapshot(&current);
    let report = compare(&base, &curr, cfg);

    print!("{}", report.to_text());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_jsonl()) {
            eprintln!("regress: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    let regressed = report.regressions().len();
    if regressed > 0 {
        if hard {
            eprintln!("regress: {regressed} benchmark(s) regressed (hard mode)");
            std::process::exit(1);
        }
        eprintln!("regress: {regressed} benchmark(s) regressed (warn mode, not failing)");
    }
}
