//! Reproduction harness: one function per table/figure of the paper.
//!
//! Every function returns a [`Table`] (or several) whose rows mirror what
//! the paper plots, so `repro <id>` regenerates the artifact and
//! EXPERIMENTS.md can record paper-vs-measured. RL-backed experiments take
//! a [`ReproConfig`] so the full 300-episode runs and quick smoke runs
//! share one code path.

use autohet::ablation::{run_ablation, AblationResult};
use autohet::prelude::*;
use autohet::sensitivity::{
    sweep_candidate_count, sweep_pes_per_tile, sweep_sxb_rxb_ratio, SweepPoint,
};
use autohet_accel::alloc::allocate_tile_based;
use autohet_dnn::{zoo, Layer, Model};
use autohet_rl::DdpgConfig;
use autohet_xbar::utilization::footprint;

/// Global knobs for RL-backed experiments.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// RL episodes per search (paper: 300).
    pub episodes: usize,
    /// Seed for every search.
    pub seed: u64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            episodes: 300,
            seed: 42,
        }
    }
}

impl ReproConfig {
    /// Build the RL search config for this run.
    pub fn search(&self) -> RlSearchConfig {
        RlSearchConfig {
            episodes: self.episodes,
            ddpg: DdpgConfig {
                seed: self.seed,
                ..DdpgConfig::default()
            },
            ..RlSearchConfig::default()
        }
    }
}

/// A printable result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render as CSV (header row first; title omitted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = self
            .header
            .iter()
            .map(|c| esc(c))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

// ---------------------------------------------------------------------------
// §2.2 motivation numbers
// ---------------------------------------------------------------------------

/// In-text motivation numbers: Fig. 2's 10.5%/62.5% utilizations and
/// §3.3's 83.7% → 100% rectangle win.
pub fn motiv() -> Table {
    let mut t = Table::new(
        "Motivation (Fig. 2 & §3.3 in-text numbers)",
        &["case", "crossbar", "utilization %", "paper %"],
    );
    let l1 = Layer::conv(0, 3, 4, 3, 1, 1, 32);
    let l2 = Layer::conv(1, 32, 20, 1, 1, 0, 32);
    let l4 = Layer::conv(3, 128, 128, 3, 1, 1, 16);
    let cases: [(&str, &Layer, XbarShape, &str); 4] = [
        (
            "Fig2 layer1 (3ch 3x3 -> 4)",
            &l1,
            XbarShape::square(32),
            "10.5",
        ),
        (
            "Fig2 layer2 (32ch 1x1 -> 20)",
            &l2,
            XbarShape::square(32),
            "62.5",
        ),
        ("VGG16 L4 on square", &l4, XbarShape::square(32), "83.7"),
        (
            "VGG16 L4 on rectangle",
            &l4,
            XbarShape::new(36, 32),
            "100.0",
        ),
    ];
    for (name, layer, shape, paper) in cases {
        let u = footprint(layer, shape).utilization();
        t.push(vec![
            name.to_string(),
            shape.to_string(),
            pct(u),
            paper.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 3 — homogeneous vs manual heterogeneous on VGG16
// ---------------------------------------------------------------------------

/// Fig. 3: utilization / energy / RUE of the five homogeneous baselines
/// and the hand-tuned heterogeneous VGG16 split.
pub fn fig3() -> Table {
    let m = zoo::vgg16();
    let cfg = AccelConfig::default();
    let mut t = Table::new(
        "Fig. 3 — VGG16: homogeneous baselines vs Manual-Hetero",
        &["accelerator", "utilization %", "energy nJ", "RUE"],
    );
    for (shape, r) in homogeneous_reports(&m, &cfg) {
        t.push(vec![
            shape.to_string(),
            pct(r.utilization),
            sci(r.energy_nj()),
            sci(r.rue()),
        ]);
    }
    let manual = manual_hetero_vgg16(&m, &cfg);
    t.push(vec![
        "Manual-Hetero".into(),
        pct(manual.utilization),
        sci(manual.energy_nj()),
        sci(manual.rue()),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Fig. 4 — empty crossbars vs tile size
// ---------------------------------------------------------------------------

/// Fig. 4: percentage of empty (allocated-but-unused) crossbars for four
/// VGG16 layers, 64×64 crossbars, tiles of 4–32.
pub fn fig4() -> Table {
    let m = zoo::vgg16();
    let shape = XbarShape::square(64);
    let strategy = vec![shape; m.layers.len()];
    let mut t = Table::new(
        "Fig. 4 — empty crossbars % (VGG16, 64x64)",
        &["layer", "tile=4", "tile=8", "tile=16", "tile=32"],
    );
    // The paper plots four representative layers; take L1–L4.
    for li in 0..4 {
        let mut row = vec![format!("L{}", li + 1)];
        for cap in [4u32, 8, 16, 32] {
            let alloc = allocate_tile_based(&m, &strategy, cap);
            row.push(pct(alloc.per_layer[li].empty_fraction(cap)));
        }
        t.push(row);
    }
    // And the whole-model average the text quotes ("only 58% utilized").
    let mut row = vec!["all-layers".to_string()];
    for cap in [4u32, 8, 16, 32] {
        let alloc = allocate_tile_based(&m, &strategy, cap);
        row.push(pct(
            alloc.empty_xbars() as f64 / alloc.allocated_xbars() as f64
        ));
    }
    t.push(row);
    t
}

// ---------------------------------------------------------------------------
// Fig. 5 — one layer on 64² vs 128²
// ---------------------------------------------------------------------------

/// Fig. 5: 128 kernels of 3×3×12 on 64×64 vs 128×128 crossbars —
/// utilization (tile-level, 4 crossbars/tile) and activated ADCs.
pub fn fig5() -> Table {
    let l = Layer::conv(0, 12, 128, 3, 1, 1, 16);
    let mut t = Table::new(
        "Fig. 5 — 128x(3x3x12) kernels: XB64 vs XB128",
        &["crossbar", "tile util", "paper util", "ADCs", "paper ADCs"],
    );
    for (shape, paper_u, paper_adc) in [
        (XbarShape::square(64), "27/32", 256u64),
        (XbarShape::square(128), "27/128", 128),
    ] {
        let fp = footprint(&l, shape);
        let tiles = fp.total_xbars().div_ceil(4);
        let u = fp.utilization_over(tiles * 4);
        let adcs = fp.total_xbars() * shape.cols as u64;
        t.push(vec![
            shape.to_string(),
            format!("{u:.4}"),
            paper_u.to_string(),
            adcs.to_string(),
            paper_adc.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 9 — overall performance
// ---------------------------------------------------------------------------

/// The "AutoHet" point used throughout §4.2: RL search over the hybrid
/// candidates with tile sharing (the ablation's "All").
pub fn autohet_full(model: &Model, rc: &ReproConfig) -> AblationResult {
    run_ablation(model, &rc.search()).pop().expect("All stage")
}

/// Fig. 9(a,b,c): RUE, utilization and normalized energy for the five
/// homogeneous baselines and AutoHet, per model.
pub fn fig9(rc: &ReproConfig, models: &[Model]) -> Vec<Table> {
    let cfg = AccelConfig::default();
    models
        .iter()
        .map(|m| {
            let mut t = Table::new(
                format!("Fig. 9 — {} on {}", m.name, m.dataset.name()),
                &[
                    "accelerator",
                    "RUE",
                    "utilization %",
                    "energy nJ",
                    "norm energy",
                ],
            );
            let homos = homogeneous_reports(m, &cfg);
            let e_min = homos
                .iter()
                .map(|(_, r)| r.energy_nj())
                .fold(f64::MAX, f64::min);
            for (shape, r) in &homos {
                t.push(vec![
                    shape.to_string(),
                    sci(r.rue()),
                    pct(r.utilization),
                    sci(r.energy_nj()),
                    format!("{:.2}", r.energy_nj() / e_min),
                ]);
            }
            let auto = autohet_full(m, rc);
            t.push(vec![
                "AutoHet".into(),
                sci(auto.report.rue()),
                pct(auto.report.utilization),
                sci(auto.report.energy_nj()),
                format!("{:.2}", auto.report.energy_nj() / e_min),
            ]);
            t
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 10 / Tables 3 & 4 — ablation
// ---------------------------------------------------------------------------

/// Fig. 10: RUE / utilization / energy per ablation stage, per model.
pub fn fig10(rc: &ReproConfig, models: &[Model]) -> Vec<Table> {
    models
        .iter()
        .map(|m| {
            let mut t = Table::new(
                format!("Fig. 10 — ablation on {}", m.name),
                &["stage", "RUE", "utilization %", "energy nJ", "tiles"],
            );
            for r in run_ablation(m, &rc.search()) {
                t.push(vec![
                    r.stage.label().into(),
                    sci(r.report.rue()),
                    pct(r.report.utilization),
                    sci(r.report.energy_nj()),
                    r.report.tiles.to_string(),
                ]);
            }
            t
        })
        .collect()
}

/// Table 3: the crossbar size each ablation stage assigns to every VGG16
/// layer.
pub fn table3(rc: &ReproConfig) -> Table {
    let m = zoo::vgg16();
    let results = run_ablation(&m, &rc.search());
    let mut t = Table::new(
        "Table 3 — per-layer crossbar sizes, VGG16",
        &["layer", "Base", "+He", "+Hy"],
    );
    for i in 0..m.layers.len() {
        t.push(vec![
            format!("L{}", i + 1),
            results[0].strategy[i].to_string(),
            results[1].strategy[i].to_string(),
            results[2].strategy[i].to_string(),
        ]);
    }
    t
}

/// Table 4: occupied tiles, +Hy vs All, per model.
pub fn table4(rc: &ReproConfig, models: &[Model]) -> Table {
    let mut t = Table::new(
        "Table 4 — occupied tiles (+Hy vs All)",
        &["model", "+Hy tiles", "All tiles", "reduction %"],
    );
    for m in models {
        let results = run_ablation(m, &rc.search());
        let hy = results[2].report.tiles;
        let all = results[3].report.tiles;
        t.push(vec![
            m.name.clone(),
            hy.to_string(),
            all.to_string(),
            format!("{:.1}", (hy - all) as f64 / hy as f64 * 100.0),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 11 — sensitivity
// ---------------------------------------------------------------------------

fn sweep_table(title: &str, points: Vec<SweepPoint>) -> Table {
    let mut t = Table::new(
        title,
        &["point", "AutoHet RUE", "Best-Homo RUE", "speedup x"],
    );
    for p in points {
        t.push(vec![
            p.label.clone(),
            sci(p.autohet_rue),
            sci(p.best_homo_rue),
            format!("{:.2}", p.speedup()),
        ]);
    }
    t
}

/// Fig. 11(a): SXB:RXB candidate ratios on `model`.
pub fn fig11a(rc: &ReproConfig, model: &Model) -> Table {
    sweep_table(
        &format!("Fig. 11(a) — SXB:RXB ratio, {}", model.name),
        sweep_sxb_rxb_ratio(model, &rc.search()),
    )
}

/// Fig. 11(b): number of crossbar candidates.
pub fn fig11b(rc: &ReproConfig, model: &Model) -> Table {
    sweep_table(
        &format!("Fig. 11(b) — candidate count, {}", model.name),
        sweep_candidate_count(model, &rc.search()),
    )
}

/// Fig. 11(c): PEs per tile.
pub fn fig11c(rc: &ReproConfig, model: &Model) -> Table {
    sweep_table(
        &format!("Fig. 11(c) — PEs per tile, {}", model.name),
        sweep_pes_per_tile(model, &rc.search()),
    )
}

// ---------------------------------------------------------------------------
// Table 5 — area and latency
// ---------------------------------------------------------------------------

/// Table 5: area and inference latency of the homogeneous accelerators and
/// AutoHet, on VGG16.
pub fn table5(rc: &ReproConfig) -> Table {
    let m = zoo::vgg16();
    let cfg = AccelConfig::default();
    let mut t = Table::new(
        "Table 5 — area & latency, VGG16",
        &["accelerator", "area um^2", "latency ns"],
    );
    for (shape, r) in homogeneous_reports(&m, &cfg) {
        t.push(vec![
            format!("SXB{}", shape.rows),
            sci(r.area_um2),
            sci(r.latency_ns),
        ]);
    }
    let auto = autohet_full(&m, rc);
    t.push(vec![
        "AutoHet".into(),
        sci(auto.report.area_um2),
        sci(auto.report.latency_ns),
    ]);
    t
}

// ---------------------------------------------------------------------------
// §4.5 — RL search time
// ---------------------------------------------------------------------------

/// §4.5: wall-clock of a search, split into simulator-feedback vs agent
/// time (the paper reports 49.2 min / 300 rounds, 97% in the simulator).
pub fn search_time(rc: &ReproConfig, model: &Model) -> Table {
    let outcome = rl_search(
        model,
        &paper_hybrid_candidates(),
        &AccelConfig::default().with_tile_sharing(),
        &rc.search(),
    );
    let mut t = Table::new(
        format!(
            "§4.5 — RL search time, {} ({} rounds)",
            model.name, rc.episodes
        ),
        &["quantity", "value"],
    );
    t.push(vec![
        "total wall-clock s".into(),
        format!("{:.2}", outcome.timing.total.as_secs_f64()),
    ]);
    t.push(vec![
        "simulator s".into(),
        format!("{:.2}", outcome.timing.simulator.as_secs_f64()),
    ]);
    t.push(vec![
        "agent s".into(),
        format!("{:.2}", outcome.timing.agent.as_secs_f64()),
    ]);
    t.push(vec![
        "simulator fraction %".into(),
        format!("{:.1}", outcome.timing.simulator_fraction() * 100.0),
    ]);
    t.push(vec!["best RUE".into(), sci(outcome.best_rue())]);
    t.push(vec![
        "evaluation cache".into(),
        outcome.timing.cache.to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Beyond-paper studies (DESIGN.md §6)
// ---------------------------------------------------------------------------

/// ADC-resolution study: energy/area/RUE and numerical safety of the
/// hybrid accelerator at 6–12 ADC bits (the paper fixes 10).
pub fn study_adc() -> Table {
    let m = zoo::vgg16();
    let strategy = autohet::search::greedy::greedy_layerwise_rue(
        &m,
        &paper_hybrid_candidates(),
        &AccelConfig::default(),
    )
    .strategy;
    let mut t = Table::new(
        "Study — ADC resolution (VGG16, hybrid strategy)",
        &["bits", "energy nJ", "area um^2", "RUE", "lossless"],
    );
    for p in autohet::studies::adc_resolution_sweep(&m, &strategy, &[6, 8, 10, 12]) {
        t.push(vec![
            p.bits.to_string(),
            sci(p.energy_nj),
            sci(p.area_um2),
            sci(p.rue),
            if p.lossless {
                "yes".into()
            } else {
                "CLIPS".into()
            },
        ]);
    }
    t
}

/// Rectangle-height design-choice study: which height family best fits
/// 3×3 kernels (the paper picks multiples of 9).
pub fn study_rxb() -> Table {
    let mut t = Table::new(
        "Study — rectangle-height families (VGG16 3x3 layers, width 64)",
        &["family", "heights", "mean best utilization %"],
    );
    for f in autohet::studies::rxb_height_study(&zoo::vgg16(), 64) {
        t.push(vec![
            f.label.clone(),
            format!("{:?}", f.heights),
            pct(f.mean_utilization),
        ]);
    }
    t
}

/// Multi-model tile sharing study: §3.4's "other models" remark measured.
pub fn study_multi_model() -> Table {
    let models = vec![zoo::alexnet(), zoo::vgg16(), zoo::lenet5()];
    let r = autohet::studies::multi_model_sharing_study(&models, XbarShape::new(72, 64), 4);
    let mut t = Table::new(
        "Study — multi-model tile sharing (AlexNet + VGG16 + LeNet5, 72x64)",
        &["scheme", "tiles"],
    );
    t.push(vec!["no sharing".into(), r.tiles_unshared.to_string()]);
    t.push(vec![
        "per-model sharing".into(),
        r.tiles_per_model.to_string(),
    ]);
    t.push(vec!["joint sharing".into(), r.tiles_joint.to_string()]);
    t
}

/// Search-algorithm comparison at equal evaluation budget: the paper's
/// DDPG vs a DQN, simulated annealing, greedy heuristics and random
/// search, plus the Best-Homo floor.
pub fn comparators(rc: &ReproConfig, model: &Model) -> Table {
    use autohet::search::annealing::{annealing_search, AnnealingConfig};
    use autohet::search::dqn::{dqn_search, DqnSearchConfig};
    use autohet::search::greedy::{greedy_layerwise_rue, greedy_utilization};
    use autohet::search::random::random_search;
    use autohet_rl::DqnConfig;

    let cfg = AccelConfig::default().with_tile_sharing();
    let plain = AccelConfig::default();
    let cands = paper_hybrid_candidates();
    let mut t = Table::new(
        format!(
            "Search comparators on {} ({} evaluations each)",
            model.name, rc.episodes
        ),
        &["search", "RUE", "utilization %", "energy nJ"],
    );
    let mut push = |name: &str, r: &EvalReport| {
        t.push(vec![
            name.into(),
            sci(r.rue()),
            pct(r.utilization),
            sci(r.energy_nj()),
        ]);
    };

    let (_, homo) = best_homogeneous(model, &plain);
    push("Best-Homo", &homo);
    let ddpg = rl_search(model, &cands, &cfg, &rc.search());
    push("DDPG (paper)", &ddpg.best_report);
    let dqn = dqn_search(
        model,
        &cands,
        &cfg,
        &DqnSearchConfig {
            episodes: rc.episodes,
            dqn: DqnConfig {
                seed: rc.seed,
                ..DqnConfig::default()
            },
            ..DqnSearchConfig::default()
        },
    );
    push("DQN", &dqn.best_report);
    let sa = annealing_search(
        model,
        &cands,
        &cfg,
        &AnnealingConfig {
            iterations: rc.episodes,
            seed: rc.seed,
            ..AnnealingConfig::default()
        },
    );
    push("Annealing", &sa.best_report);
    let gu = greedy_utilization(model, &cands, &cfg);
    push("Greedy-util [29]", &gu.report);
    let gr = greedy_layerwise_rue(model, &cands, &cfg);
    push("Greedy-RUE", &gr.report);
    let (_, rnd) = random_search(model, &cands, &cfg, rc.episodes, rc.seed);
    push("Random", &rnd);
    t
}

/// Depthwise showcase: homogeneous baselines vs AutoHet on MobileNetV1,
/// whose diagonal-packing depthwise stages are pathological for wide
/// crossbars (beyond-paper workload, DESIGN.md §6).
pub fn mobilenet(rc: &ReproConfig) -> Table {
    let m = zoo::mobilenet_v1();
    let cfg = AccelConfig::default();
    let mut t = Table::new(
        "MobileNetV1 on ImageNet — homogeneous vs AutoHet",
        &[
            "accelerator",
            "RUE",
            "utilization %",
            "energy nJ",
            "worst dw util %",
        ],
    );
    let worst_dw = |shape: XbarShape| -> f64 {
        m.layers
            .iter()
            .filter(|l| l.kind == autohet_dnn::LayerKind::DepthwiseConv)
            .map(|l| autohet_xbar::utilization::utilization(l, shape))
            .fold(f64::MAX, f64::min)
    };
    for (shape, r) in homogeneous_reports(&m, &cfg) {
        t.push(vec![
            shape.to_string(),
            sci(r.rue()),
            pct(r.utilization),
            sci(r.energy_nj()),
            pct(worst_dw(shape)),
        ]);
    }
    let auto = autohet_full(&m, rc);
    let auto_worst = m
        .layers
        .iter()
        .zip(&auto.strategy)
        .filter(|(l, _)| l.kind == autohet_dnn::LayerKind::DepthwiseConv)
        .map(|(l, &s)| autohet_xbar::utilization::utilization(l, s))
        .fold(f64::MAX, f64::min);
    t.push(vec![
        "AutoHet".into(),
        sci(auto.report.rue()),
        pct(auto.report.utilization),
        sci(auto.report.energy_nj()),
        pct(auto_worst),
    ]);
    t
}

/// Search convergence: running-best RUE at checkpoints for the learned
/// searches vs random, at equal budgets.
pub fn convergence(rc: &ReproConfig, model: &Model) -> Table {
    use autohet::search::dqn::{dqn_search, DqnSearchConfig};
    use autohet::search::random::random_search;
    use autohet_rl::DqnConfig;

    let cfg = AccelConfig::default().with_tile_sharing();
    let cands = paper_hybrid_candidates();
    let checkpoints: Vec<usize> = [0.1, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| ((rc.episodes as f64 * f) as usize).max(1))
        .collect();

    let ddpg = rl_search(model, &cands, &cfg, &rc.search());
    let ddpg_best = ddpg.rue_running_best();
    let dqn = dqn_search(
        model,
        &cands,
        &cfg,
        &DqnSearchConfig {
            episodes: rc.episodes,
            dqn: DqnConfig {
                seed: rc.seed,
                ..DqnConfig::default()
            },
            ..DqnSearchConfig::default()
        },
    );
    let mut dqn_best = Vec::with_capacity(dqn.history.len());
    let mut b = f64::MIN;
    for h in &dqn.history {
        b = b.max(h.rue);
        dqn_best.push(b);
    }

    let mut t = Table::new(
        format!("Convergence on {} (running best RUE)", model.name),
        &["episodes", "DDPG", "DQN", "Random"],
    );
    for &cp in &checkpoints {
        let (_, rnd) = random_search(model, &cands, &cfg, cp, rc.seed);
        t.push(vec![
            cp.to_string(),
            sci(ddpg_best[cp - 1]),
            sci(dqn_best[cp - 1]),
            sci(rnd.rue()),
        ]);
    }
    t.push(vec![
        "episodes-to-best".into(),
        ddpg.episodes_to_best().to_string(),
        "-".into(),
        "-".into(),
    ]);
    t
}

/// Utilization/energy Pareto sweep: RL searches with reward `u^α / e`.
pub fn pareto(rc: &ReproConfig, model: &Model) -> Table {
    use autohet::pareto::{pareto_front, pareto_sweep};
    let cfg = AccelConfig::default().with_tile_sharing();
    let pts = pareto_sweep(
        model,
        &paper_hybrid_candidates(),
        &cfg,
        &rc.search(),
        &[0.25, 0.5, 1.0, 2.0, 4.0],
    );
    let front = pareto_front(&pts);
    let mut t = Table::new(
        format!("Pareto sweep on {} (reward u^a / e)", model.name),
        &["alpha", "utilization %", "energy nJ", "RUE", "on front"],
    );
    for (i, p) in pts.iter().enumerate() {
        let (u, e) = p.objectives();
        t.push(vec![
            format!("{}", p.alpha),
            format!("{u:.1}"),
            sci(e),
            sci(p.report.rue()),
            if front.contains(&i) {
                "yes".into()
            } else {
                "".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ReproConfig {
        ReproConfig {
            episodes: 10,
            seed: 1,
        }
    }

    #[test]
    fn motiv_matches_paper_numbers() {
        let t = motiv();
        assert_eq!(t.rows.len(), 4);
        // Our computed column vs the paper's column agree to 0.1%.
        for row in &t.rows {
            let ours: f64 = row[2].parse().unwrap();
            let paper: f64 = row[3].parse().unwrap();
            assert!((ours - paper).abs() < 0.1, "{row:?}");
        }
    }

    #[test]
    fn fig3_has_six_rows() {
        let t = fig3();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[5][0], "Manual-Hetero");
    }

    #[test]
    fn fig4_waste_grows_with_tile_size() {
        let t = fig4();
        let avg = t.rows.last().unwrap();
        let vals: Vec<f64> = avg[1..].iter().map(|v| v.parse().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{vals:?}");
    }

    #[test]
    fn fig5_adc_counts_match_paper() {
        let t = fig5();
        assert_eq!(t.rows[0][3], "256");
        assert_eq!(t.rows[1][3], "128");
        assert_eq!(t.rows[0][3], t.rows[0][4]);
        assert_eq!(t.rows[1][3], t.rows[1][4]);
    }

    #[test]
    fn fig9_autohet_wins_rue_on_micro_model() {
        let models = vec![zoo::micro_cnn()];
        let tables = fig9(&quick(), &models);
        let rows = &tables[0].rows;
        let auto: f64 = rows.last().unwrap()[1].parse().unwrap();
        for r in &rows[..5] {
            let homo: f64 = r[1].parse().unwrap();
            assert!(auto >= homo * 0.99, "AutoHet {auto} vs {}", r[0]);
        }
    }

    #[test]
    fn table_render_is_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn studies_produce_tables() {
        assert_eq!(study_adc().rows.len(), 4);
        assert_eq!(study_rxb().rows.len(), 4);
        assert_eq!(study_multi_model().rows.len(), 3);
    }

    #[test]
    fn convergence_and_pareto_tables_have_expected_shape() {
        let rc = ReproConfig {
            episodes: 12,
            seed: 2,
        };
        let m = zoo::micro_cnn();
        let c = convergence(&rc, &m);
        assert_eq!(c.rows.len(), 6); // 5 checkpoints + episodes-to-best
        let p = pareto(&rc, &m);
        assert_eq!(p.rows.len(), 5);
        assert!(p.rows.iter().any(|r| r[4] == "yes"));
    }

    #[test]
    fn csv_escapes_and_round_trips_columns() {
        let mut t = Table::new("t", &["a,b", "c"]);
        t.push(vec!["x\"y".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",1"));
    }

    #[test]
    fn comparator_table_has_all_searches() {
        let t = comparators(
            &ReproConfig {
                episodes: 40,
                seed: 1,
            },
            &zoo::micro_cnn(),
        );
        assert_eq!(t.rows.len(), 7);
        // With a 40-evaluation budget the DDPG search must at least be in
        // Best-Homo's neighborhood (integration tests assert strict wins
        // at realistic budgets).
        let homo: f64 = t.rows[0][1].parse().unwrap();
        let ddpg: f64 = t.rows[1][1].parse().unwrap();
        assert!(ddpg >= homo * 0.9, "ddpg {ddpg} vs homo {homo}");
    }
}
