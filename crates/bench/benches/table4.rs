//! Criterion bench for the Table 4 pipeline: Algorithm 1 tile sharing on
//! real allocations.

use autohet::prelude::*;
use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::tile_shared::apply_tile_sharing;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4/tile_sharing");
    for model in [zoo::alexnet(), zoo::vgg16(), zoo::resnet152()] {
        let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
        let alloc = allocate_tile_based(&model, &strategy, 4);
        g.bench_with_input(
            BenchmarkId::from_parameter(&model.name),
            &alloc,
            |b, alloc| {
                b.iter(|| {
                    let mut a = alloc.clone();
                    black_box(apply_tile_sharing(&mut a))
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table4
}
criterion_main!(benches);
