//! Micro-benchmarks of the substrate kernels every experiment leans on:
//! Eq. 4 footprints, Algorithm 1, the functional bit-sliced crossbar MVM,
//! and one DDPG training step.

use autohet_accel::controller::MappedLayer;
use autohet_accel::hierarchy::Tile;
use autohet_accel::tile_shared::combine_group;
use autohet_dnn::ops::synthetic_weights;
use autohet_dnn::Layer;
use autohet_rl::{Ddpg, DdpgConfig, Experience};
use autohet_xbar::utilization::footprint;
use autohet_xbar::{Adc, CostParams, XbarShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_footprint(c: &mut Criterion) {
    let layer = Layer::conv(0, 512, 512, 3, 1, 1, 4);
    c.bench_function("kernels/footprint_eq4", |b| {
        b.iter(|| black_box(footprint(black_box(&layer), XbarShape::new(576, 512))))
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let tiles: Vec<Tile> = (0..1000)
        .map(|i| {
            let mut t = Tile::new(i, XbarShape::square(64), 4);
            t.place(i, (i * 7 % 4 + 1) as u32);
            t
        })
        .collect();
    let mut g = c.benchmark_group("kernels/algorithm1");
    g.throughput(Throughput::Elements(tiles.len() as u64));
    g.bench_function("combine_1000_tiles", |b| {
        b.iter(|| {
            let mut ts = tiles.clone();
            black_box(combine_group(&mut ts))
        })
    });
    g.finish();
}

fn bench_crossbar_mvm(c: &mut Criterion) {
    let layer = Layer::conv(0, 12, 64, 3, 1, 1, 8);
    let ml = MappedLayer::program(
        &layer,
        XbarShape::square(64),
        &synthetic_weights(&layer, 0),
        &CostParams::default(),
    );
    let adc = Adc::new(10);
    let input: Vec<u8> = (0..layer.weight_rows())
        .map(|i| (i * 37 % 256) as u8)
        .collect();
    let mut g = c.benchmark_group("kernels/crossbar_mvm");
    g.throughput(Throughput::Elements(
        (layer.weight_rows() * layer.weight_cols()) as u64,
    ));
    g.bench_function("bit_serial_108x64", |b| {
        b.iter(|| black_box(ml.mvm(black_box(&input), &adc)))
    });
    g.finish();
}

fn bench_ddpg(c: &mut Criterion) {
    let mut agent = Ddpg::new(DdpgConfig {
        state_dim: 10,
        ..DdpgConfig::default()
    });
    for i in 0..256 {
        let s: Vec<f64> = (0..10).map(|j| ((i * 10 + j) as f64).sin().abs()).collect();
        agent.remember(Experience {
            next_state: s.clone(),
            action: (i % 5) as f64 / 4.0,
            reward: s[0],
            done: i % 16 == 15,
            state: s,
        });
    }
    c.bench_function("kernels/ddpg_train_step", |b| {
        b.iter(|| black_box(agent.train_step()))
    });
    let state: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("kernels/ddpg_act", |b| {
        b.iter(|| black_box(agent.act(black_box(&state))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_footprint, bench_algorithm1, bench_crossbar_mvm, bench_ddpg
}
criterion_main!(benches);
