//! Micro-benchmarks of the substrate kernels every experiment leans on:
//! Eq. 4 footprints, Algorithm 1, the functional bit-sliced crossbar MVM,
//! and one DDPG training step.

use autohet_accel::controller::MappedLayer;
use autohet_accel::hierarchy::Tile;
use autohet_accel::tile_shared::combine_group;
use autohet_dnn::ops::synthetic_weights;
use autohet_dnn::Layer;
use autohet_rl::{Ddpg, DdpgConfig, Experience, Matrix};
use autohet_xbar::utilization::footprint;
use autohet_xbar::{Adc, CostParams, Crossbar, XbarShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_footprint(c: &mut Criterion) {
    let layer = Layer::conv(0, 512, 512, 3, 1, 1, 4);
    c.bench_function("kernels/footprint_eq4", |b| {
        b.iter(|| black_box(footprint(black_box(&layer), XbarShape::new(576, 512))))
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let tiles: Vec<Tile> = (0..1000)
        .map(|i| {
            let mut t = Tile::new(i, XbarShape::square(64), 4);
            t.place(i, (i * 7 % 4 + 1) as u32);
            t
        })
        .collect();
    let mut g = c.benchmark_group("kernels/algorithm1");
    g.throughput(Throughput::Elements(tiles.len() as u64));
    g.bench_function("combine_1000_tiles", |b| {
        b.iter(|| {
            let mut ts = tiles.clone();
            black_box(combine_group(&mut ts))
        })
    });
    g.finish();
}

fn bench_crossbar_mvm(c: &mut Criterion) {
    let layer = Layer::conv(0, 12, 64, 3, 1, 1, 8);
    let ml = MappedLayer::program(
        &layer,
        XbarShape::square(64),
        &synthetic_weights(&layer, 0),
        &CostParams::default(),
    );
    let adc = Adc::new(10);
    let input: Vec<u8> = (0..layer.weight_rows())
        .map(|i| (i * 37 % 256) as u8)
        .collect();
    let mut g = c.benchmark_group("kernels/crossbar_mvm");
    g.throughput(Throughput::Elements(
        (layer.weight_rows() * layer.weight_cols()) as u64,
    ));
    g.bench_function("bit_serial_108x64", |b| {
        b.iter(|| black_box(ml.mvm(black_box(&input), &adc)))
    });
    // Batched entry point: 16 output-pixel columns through the same grid.
    let inputs: Vec<Vec<u8>> = (0..16)
        .map(|k| {
            (0..layer.weight_rows())
                .map(|i| ((i * 37 + k * 11) % 256) as u8)
                .collect()
        })
        .collect();
    g.throughput(Throughput::Elements(
        (inputs.len() * layer.weight_rows() * layer.weight_cols()) as u64,
    ));
    g.bench_function("batch16_108x64", |b| {
        b.iter(|| black_box(ml.mvm_batch(black_box(&inputs), &adc)))
    });
    // The apples-to-apples comparator for the batched walk: the same 16
    // inputs through 16 sequential single-input calls, materializing the
    // same `Vec<Vec<i64>>` a batch consumer holds.
    g.bench_function("seq16_108x64", |b| {
        b.iter(|| {
            let out: Vec<Vec<i64>> = black_box(&inputs).iter().map(|x| ml.mvm(x, &adc)).collect();
            black_box(out)
        })
    });
    g.finish();
}

/// Raw crossbar fast path vs the retained scalar reference on the larger
/// square candidates, fully populated.
fn bench_crossbar_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/crossbar_mvm");
    for side in [256usize, 512] {
        let weights: Vec<Vec<i32>> = (0..side)
            .map(|r| {
                (0..side)
                    .map(|j| ((r * 31 + j * 7) % 255) as i32 - 127)
                    .collect()
            })
            .collect();
        let xb = Crossbar::program(XbarShape::square(side as u32), &weights, 8);
        let adc = Adc::new(10);
        let input: Vec<u8> = (0..side).map(|i| (i * 53 % 256) as u8).collect();
        g.throughput(Throughput::Elements((side * side) as u64));
        g.bench_function(format!("fast_{side}x{side}"), |b| {
            b.iter(|| black_box(xb.mvm(black_box(&input), &adc)))
        });
        g.bench_function(format!("scalar_{side}x{side}"), |b| {
            b.iter(|| black_box(xb.mvm_scalar(black_box(&input), &adc)))
        });
    }
    g.finish();
}

/// The GEMM kernel the batched MLP training runs on: one 64×64 weight
/// matrix against a 64-sample stacked batch, versus per-sample matvecs.
fn bench_matmul(c: &mut Criterion) {
    let mut rng_vals = (0..64usize * 64).map(|i| ((i * 37) as f64 * 0.01).sin());
    let mut m = Matrix::zeros(64, 64);
    for v in m.data_mut() {
        *v = rng_vals.next().unwrap();
    }
    let xs: Vec<f64> = (0..64 * 64)
        .map(|i| ((i * 13) as f64 * 0.02).cos())
        .collect();
    let mut g = c.benchmark_group("kernels/matmul");
    g.throughput(Throughput::Elements((64 * 64 * 64) as u64));
    g.bench_function("gemm_64x64_b64", |b| {
        let mut out = Vec::new();
        let mut stage = Vec::new();
        b.iter(|| {
            m.matmul_xt(black_box(&xs), 64, &mut out, &mut stage);
            black_box(out.last().copied())
        })
    });
    g.bench_function("matvec_64x64_b64", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for s in 0..64 {
                let y = m.matvec(black_box(&xs[s * 64..(s + 1) * 64]));
                last = y[63];
            }
            black_box(last)
        })
    });
    g.finish();
}

fn bench_ddpg(c: &mut Criterion) {
    let mut agent = Ddpg::new(DdpgConfig {
        state_dim: 10,
        ..DdpgConfig::default()
    });
    for i in 0..256 {
        let s: Vec<f64> = (0..10).map(|j| ((i * 10 + j) as f64).sin().abs()).collect();
        agent.remember(Experience {
            next_state: s.clone(),
            action: (i % 5) as f64 / 4.0,
            reward: s[0],
            done: i % 16 == 15,
            state: s,
        });
    }
    c.bench_function("kernels/ddpg_train_step", |b| {
        b.iter(|| black_box(agent.train_step()))
    });
    let state: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("kernels/ddpg_act", |b| {
        b.iter(|| black_box(agent.act(black_box(&state))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_footprint, bench_algorithm1, bench_crossbar_mvm,
        bench_crossbar_shapes, bench_matmul, bench_ddpg
}
criterion_main!(benches);
