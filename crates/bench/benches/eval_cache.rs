//! Criterion bench for the memoized evaluation engine (the search hot
//! path): cold vs warm engine against direct `evaluate`, the parallel
//! vs serial exhaustive driver on the 4-layer test model, and the
//! observability overhead contract — the disabled tracer must add <1%
//! to the warm-compose path (`tracer_off` vs the uninstrumented
//! baseline above it; `tracer_on` shows the cost of actually recording).

use autohet::prelude::*;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_eval_cache(c: &mut Criterion) {
    let vgg = zoo::vgg16();
    let cfg = AccelConfig::default().with_tile_sharing();
    let cands = paper_hybrid_candidates();
    // A heterogeneous strategy exercising every candidate shape.
    let strategy: Vec<XbarShape> = (0..vgg.layers.len())
        .map(|i| cands[i % cands.len()])
        .collect();

    c.bench_function("eval_cache/direct_evaluate_vgg16", |b| {
        b.iter(|| black_box(evaluate(black_box(&vgg), black_box(&strategy), &cfg)))
    });
    c.bench_function("eval_cache/engine_cold_vgg16", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(vgg.clone(), cfg);
            black_box(engine.evaluate_fresh(black_box(&strategy)))
        })
    });
    let warm = EvalEngine::new(vgg.clone(), cfg);
    warm.evaluate_fresh(&strategy);
    c.bench_function("eval_cache/engine_warm_compose_vgg16", |b| {
        // Layer memo warm, strategy cache bypassed: the steady-state cost
        // of evaluating a *new* strategy mid-search.
        b.iter(|| black_box(warm.evaluate_fresh(black_box(&strategy))))
    });
    c.bench_function("eval_cache/engine_warm_strategy_hit_vgg16", |b| {
        b.iter(|| black_box(warm.evaluate(black_box(&strategy))))
    });

    // Observability overhead: identical workload to engine_warm_compose,
    // with the tracer explicitly disabled (the no-op default everywhere
    // outside obs_dump) and then enabled. The off/compose delta is the
    // contract checked in EXPERIMENTS.md (<1%).
    let tracer = autohet_obs::trace::global();
    tracer.disable();
    c.bench_function("eval_cache/engine_warm_compose_tracer_off", |b| {
        b.iter(|| black_box(warm.evaluate_fresh(black_box(&strategy))))
    });
    tracer.enable(1 << 16);
    c.bench_function("eval_cache/engine_warm_compose_tracer_on", |b| {
        b.iter(|| black_box(warm.evaluate_fresh(black_box(&strategy))))
    });
    tracer.disable();
    tracer.drain();

    let micro = zoo::micro_cnn();
    let plain = AccelConfig::default();
    c.bench_function("eval_cache/exhaustive_serial_micro", |b| {
        b.iter(|| {
            black_box(exhaustive_search_serial(
                black_box(&micro),
                &cands,
                &plain,
                1_000,
            ))
        })
    });
    c.bench_function("eval_cache/exhaustive_parallel_micro", |b| {
        b.iter(|| black_box(exhaustive_search(black_box(&micro), &cands, &plain, 1_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_eval_cache
}
criterion_main!(benches);
