//! Device-variation benchmarks (DESIGN.md §11): the packed
//! variation-aware MVM against the dense f64 fallback and the retained
//! scalar reference, variation sampling itself, and the Monte-Carlo
//! robustness evaluator end to end.

use autohet_accel::{AccelConfig, EvalEngine, NoiseEvalConfig};
use autohet_xbar::noise::NoiseModel;
use autohet_xbar::{Adc, Crossbar, VariationModel, VariedCrossbar, XbarShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const ROWS: usize = 108;
const COLS: usize = 64;

fn programmed_108x64() -> Crossbar {
    let weights: Vec<Vec<i32>> = (0..ROWS)
        .map(|r| {
            (0..COLS)
                .map(|j| ((r * 31 + j * 7) % 255) as i32 - 127)
                .collect()
        })
        .collect();
    Crossbar::program(XbarShape::new(ROWS as u32, COLS as u32), &weights, 8)
}

fn probe_input() -> Vec<u8> {
    (0..ROWS).map(|i| (i * 53 % 256) as u8).collect()
}

/// The headline comparison: one 108×64 bit-serial MVM under HyperMetric
/// lognormal variation through (a) the packed LUT fast path, (b) the
/// dense f64 fallback the old `apply_noise` route forces, (c) the scalar
/// per-threshold reference, and (d) the ideal noise-free packed kernel
/// as the floor.
fn bench_variation_mvm(c: &mut Criterion) {
    let xb = programmed_108x64();
    let adc = Adc::new(10);
    let input = probe_input();
    let model = VariationModel::hypermetric();
    let varied = VariedCrossbar::sample(&xb, &model, 7);

    // Dense comparator: conductance noise knocks cells off their exact
    // levels, so the crossbar abandons its packed planes for f64 math.
    let mut dense = xb.clone();
    let fell_back = dense.apply_noise(
        &NoiseModel::variation(model.dev_on),
        &mut SmallRng::seed_from_u64(7),
    );
    assert!(fell_back, "variation must force the dense fallback");

    let mut g = c.benchmark_group("noise/variation_mvm");
    g.throughput(Throughput::Elements((ROWS * COLS) as u64));
    g.bench_function("fast_108x64", |b| {
        b.iter(|| black_box(varied.mvm(black_box(&input), &adc)))
    });
    g.bench_function("dense_108x64", |b| {
        b.iter(|| black_box(dense.mvm(black_box(&input), &adc)))
    });
    g.bench_function("scalar_108x64", |b| {
        b.iter(|| black_box(varied.mvm_scalar(black_box(&input), &adc)))
    });
    g.bench_function("ideal_108x64", |b| {
        b.iter(|| black_box(xb.mvm(black_box(&input), &adc)))
    });
    g.finish();
}

/// Sampling cost: one lognormal draw over every cell plus the per-unit
/// readout LUT build — the once-per-draw setup the MC evaluator pays.
fn bench_sampling(c: &mut Criterion) {
    let xb = programmed_108x64();
    let model = VariationModel::hypermetric();
    let mut g = c.benchmark_group("noise/sample");
    g.throughput(Throughput::Elements((ROWS * COLS) as u64));
    let mut seed = 0u64;
    g.bench_function("sample_108x64", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(VariedCrossbar::sample(&xb, &model, seed))
        })
    });
    g.finish();
}

/// The robustness evaluator end to end on micro_cnn: cold pays the
/// per-(layer, shape) Monte-Carlo once, warm replays it from the memo —
/// the regime an NSGA-II generation actually runs in.
fn bench_robust_eval(c: &mut Criterion) {
    let model = autohet_dnn::zoo::micro_cnn();
    let noise = NoiseEvalConfig {
        draws: 2,
        probes: 2,
        ..NoiseEvalConfig::default()
    };
    let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
    let mut g = c.benchmark_group("noise/robust_eval");
    g.sample_size(10);
    g.bench_function("micro_cnn_cold", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(model.clone(), AccelConfig::default()).with_noise(noise);
            black_box(engine.evaluate_noisy(black_box(&strategy)))
        })
    });
    let engine = EvalEngine::new(model.clone(), AccelConfig::default()).with_noise(noise);
    engine.evaluate_noisy(&strategy);
    g.bench_function("micro_cnn_warm", |b| {
        b.iter(|| black_box(engine.evaluate_noisy(black_box(&strategy))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_variation_mvm, bench_sampling, bench_robust_eval
}
criterion_main!(benches);
