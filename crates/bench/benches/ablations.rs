//! Criterion benches for the beyond-paper design-choice studies
//! (DESIGN.md §6): ADC-resolution sweep, rectangle-height families,
//! multi-model sharing, and the search comparators' non-RL members.

use autohet::prelude::*;
use autohet::studies::{adc_resolution_sweep, multi_model_sharing_study, rxb_height_study};
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_studies(c: &mut Criterion) {
    let vgg = zoo::vgg16();
    let strategy = vec![XbarShape::new(576, 512); vgg.layers.len()];
    c.bench_function("ablations/adc_resolution_sweep_vgg16", |b| {
        b.iter(|| {
            black_box(adc_resolution_sweep(
                black_box(&vgg),
                &strategy,
                &[6, 8, 10, 12],
            ))
        })
    });
    c.bench_function("ablations/rxb_height_study_vgg16", |b| {
        b.iter(|| black_box(rxb_height_study(black_box(&vgg), 64)))
    });
    let models = vec![zoo::alexnet(), zoo::lenet5(), zoo::micro_cnn()];
    c.bench_function("ablations/multi_model_sharing", |b| {
        b.iter(|| {
            black_box(multi_model_sharing_study(
                black_box(&models),
                XbarShape::new(72, 64),
                4,
            ))
        })
    });
    c.bench_function("ablations/annealing_micro_50it", |b| {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let acfg = AnnealingConfig {
            iterations: 50,
            seed: 1,
            ..AnnealingConfig::default()
        };
        b.iter(|| {
            black_box(annealing_search(
                &m,
                &paper_hybrid_candidates(),
                &cfg,
                &acfg,
            ))
        })
    });
    c.bench_function("ablations/greedy_rue_resnet152", |b| {
        let m = zoo::resnet152();
        let cfg = AccelConfig::default();
        b.iter(|| {
            black_box(greedy_layerwise_rue(
                black_box(&m),
                &paper_hybrid_candidates(),
                &cfg,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_studies
}
criterion_main!(benches);
