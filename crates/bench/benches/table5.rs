//! Criterion bench for the Table 5 pipeline: whole-accelerator area and
//! latency evaluation across crossbar sizes.

use autohet::prelude::*;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table5(c: &mut Criterion) {
    let vgg = zoo::vgg16();
    let cfg = AccelConfig::default();
    let mut g = c.benchmark_group("table5/evaluate_vgg16");
    for shape in SQUARE_CANDIDATES {
        let strategy = vec![shape; vgg.layers.len()];
        g.bench_with_input(
            BenchmarkId::from_parameter(shape),
            &strategy,
            |b, strategy| b.iter(|| black_box(evaluate(black_box(&vgg), strategy, &cfg))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table5
}
criterion_main!(benches);
