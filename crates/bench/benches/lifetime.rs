//! Lifetime-degradation benchmarks (DESIGN.md §12): the drift snapshot
//! itself, one epoch of `evaluate_degraded` cold vs. warm (the regime a
//! lifetime campaign sweeps in), and the recovery-arm spread at a fixed
//! epoch.

use autohet_accel::{AccelConfig, DriftEvalConfig, EvalEngine, RecoveryPolicy};
use autohet_xbar::{DriftModel, XbarShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn drift_engine(model: &autohet_dnn::Model) -> EvalEngine {
    EvalEngine::new(model.clone(), AccelConfig::default().with_tile_sharing()).with_drift(
        DriftEvalConfig {
            drift: DriftModel::fast(),
            draws: 2,
            probes: 2,
            ..DriftEvalConfig::default()
        },
    )
}

/// Sampling the fault snapshot at an epoch: the nested-in-time rolls over
/// every tile's components — the once-per-epoch setup the degraded
/// evaluator pays before repair.
fn bench_snapshot(c: &mut Criterion) {
    let drift = DriftModel::fast();
    let caps = vec![16u32; 64];
    let mut g = c.benchmark_group("lifetime/snapshot");
    g.throughput(Throughput::Elements(64 * 16));
    let mut t = 0.0f64;
    g.bench_function("64x16_epoch", |b| {
        b.iter(|| {
            t += 1.0;
            black_box(drift.snapshot_at(black_box(t), &caps, 1))
        })
    });
    g.finish();
}

/// One lifetime epoch end to end on micro_cnn: cold pays the repair
/// cascade plus the per-(layer, shape, epoch) Monte-Carlo once, warm
/// replays the epoch from the memo — a campaign revisiting an epoch for
/// another recovery arm runs warm on the noise slices.
fn bench_degraded_eval(c: &mut Criterion) {
    let model = autohet_dnn::zoo::micro_cnn();
    let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
    let mut g = c.benchmark_group("lifetime/degraded_eval");
    g.sample_size(10);
    g.bench_function("micro_cnn_cold", |b| {
        b.iter(|| {
            let engine = drift_engine(&model);
            black_box(engine.evaluate_degraded(
                black_box(&strategy),
                5_000.0,
                RecoveryPolicy::FullCascade,
            ))
        })
    });
    let engine = drift_engine(&model);
    engine.evaluate_degraded(&strategy, 5_000.0, RecoveryPolicy::FullCascade);
    g.bench_function("micro_cnn_warm", |b| {
        b.iter(|| {
            black_box(engine.evaluate_degraded(
                black_box(&strategy),
                5_000.0,
                RecoveryPolicy::FullCascade,
            ))
        })
    });
    g.finish();
}

/// The three recovery arms at one epoch on a warm engine: what a
/// campaign cell pays per arm after the epoch's slices are memoized.
fn bench_recovery_arms(c: &mut Criterion) {
    let model = autohet_dnn::zoo::micro_cnn();
    let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
    let engine = drift_engine(&model);
    for policy in RecoveryPolicy::ALL {
        engine.evaluate_degraded(&strategy, 5_000.0, policy);
    }
    let mut g = c.benchmark_group("lifetime/recovery_arm");
    g.sample_size(10);
    for policy in RecoveryPolicy::ALL {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(engine.evaluate_degraded(black_box(&strategy), 5_000.0, policy)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_snapshot, bench_degraded_eval, bench_recovery_arms
}
criterion_main!(benches);
