//! Serving-simulator throughput: simulated requests processed per
//! wallclock second, single-threaded event loop vs. one worker per
//! replica. The two modes produce bit-identical reports (asserted in
//! autohet-serve's tests), so this bench isolates their speed.

use autohet_accel::AccelConfig;
use autohet_dnn::zoo;
use autohet_serve::{
    run_serving, run_serving_parallel, BurstSpec, Deployment, ServeConfig, TenantSpec, Workload,
};
use autohet_xbar::XbarShape;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn fleet() -> Vec<TenantSpec> {
    let cfg = AccelConfig::default();
    let lenet = zoo::lenet5();
    let micro = zoo::micro_cnn();
    let d_lenet = Deployment::compile(
        "lenet",
        &lenet,
        &vec![XbarShape::square(128); lenet.layers.len()],
        &cfg,
    );
    let d_micro = Deployment::compile(
        "micro",
        &micro,
        &vec![XbarShape::square(64); micro.layers.len()],
        &cfg,
    );
    let lenet_rate = 0.9 * d_lenet.max_rate_rps();
    let micro_rate = 0.5 * d_micro.max_rate_rps();
    let lenet_slo = (5.0 * d_lenet.pipeline.fill_ns) as u64;
    let micro_slo = (5.0 * d_micro.pipeline.fill_ns) as u64;
    vec![
        TenantSpec::new("lenet", d_lenet, lenet_rate, lenet_slo).with_burst(BurstSpec {
            period_ns: 5_000_000,
            burst_ns: 1_000_000,
            factor: 4.0,
        }),
        TenantSpec::new("micro", d_micro, micro_rate, micro_slo),
    ]
}

fn bench_serve_throughput(c: &mut Criterion) {
    let tenants = fleet();
    let wl = Workload {
        seed: 42,
        horizon_ns: 20_000_000,
    };
    let cfg = ServeConfig {
        replicas: 4,
        ..ServeConfig::default()
    };
    let requests = {
        let r = run_serving(&tenants, &wl, &cfg);
        r.total_completed + r.total_rejected
    };
    let mut g = c.benchmark_group("serve_throughput");
    g.throughput(Throughput::Elements(requests));
    g.bench_function("event_loop", |b| {
        b.iter(|| run_serving(black_box(&tenants), &wl, &cfg))
    });
    g.bench_function("multi_worker", |b| {
        b.iter(|| run_serving_parallel(black_box(&tenants), &wl, &cfg))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput
}
criterion_main!(benches);
