//! Criterion bench for the Fig. 4 pipeline: tile-based allocation of
//! VGG16 across tile capacities and the empty-crossbar accounting.

use autohet::prelude::*;
use autohet_accel::alloc::allocate_tile_based;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let model = zoo::vgg16();
    let strategy = vec![XbarShape::square(64); model.layers.len()];
    let mut g = c.benchmark_group("fig4/tile_based_alloc_vgg16");
    for cap in [4u32, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| black_box(allocate_tile_based(black_box(&model), &strategy, cap)))
        });
    }
    g.finish();
    c.bench_function("fig4/full_table", |b| {
        b.iter(|| black_box(autohet_bench::fig4()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
