//! Criterion bench for the Fig. 3 pipeline: evaluating the five
//! homogeneous VGG16 baselines plus the manual heterogeneous split.

use autohet::prelude::*;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let model = zoo::vgg16();
    let cfg = AccelConfig::default();
    c.bench_function("fig3/homogeneous_reports_vgg16", |b| {
        b.iter(|| black_box(homogeneous_reports(black_box(&model), &cfg)))
    });
    c.bench_function("fig3/manual_hetero_vgg16", |b| {
        b.iter(|| black_box(manual_hetero_vgg16(black_box(&model), &cfg)))
    });
    c.bench_function("fig3/full_table", |b| {
        b.iter(|| black_box(autohet_bench::fig3()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
