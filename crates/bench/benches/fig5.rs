//! Criterion bench for the Fig. 5 pipeline: footprint / ADC-activation
//! accounting of one layer on 64² vs 128² crossbars.

use autohet_dnn::Layer;
use autohet_xbar::utilization::footprint;
use autohet_xbar::XbarShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let layer = Layer::conv(0, 12, 128, 3, 1, 1, 16);
    let mut g = c.benchmark_group("fig5/footprint");
    for side in [64u32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| black_box(footprint(black_box(&layer), XbarShape::square(side))))
        });
    }
    g.finish();
    c.bench_function("fig5/full_table", |b| {
        b.iter(|| black_box(autohet_bench::fig5()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
