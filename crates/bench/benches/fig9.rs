//! Criterion bench for the Fig. 9 pipeline at reduced scale: the full
//! AutoHet search (hybrid candidates + tile sharing) on a small model,
//! plus homogeneous evaluation of the real workloads.

use autohet::prelude::*;
use autohet_bench::ReproConfig;
use autohet_dnn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let rc = ReproConfig {
        episodes: 10,
        seed: 1,
    };
    let micro = zoo::micro_cnn();
    c.bench_function("fig9/autohet_search_micro_10ep", |b| {
        b.iter(|| black_box(autohet_bench::autohet_full(black_box(&micro), &rc)))
    });
    let cfg = AccelConfig::default();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        c.bench_function(&format!("fig9/homogeneous_sweep_{}", model.name), |b| {
            b.iter(|| black_box(homogeneous_reports(black_box(&model), &cfg)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
