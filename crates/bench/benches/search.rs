//! End-to-end search benchmarks: the paper's 300-round DDPG search (§4.5
//! quotes 49.2 min for VGG16) through the sequential driver and the
//! vectorized lockstep driver at several lane counts. Snapshot results
//! land in `BENCH_search.json` (episodes/sec and speed-up derived by
//! `scripts/bench_snapshot.sh`).
//!
//! Every iteration runs a full cold search — fresh agent, fresh memoized
//! engine — so the numbers compare drivers, not cache warm-up.

use autohet::prelude::*;
use autohet_rl::DdpgConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const EPISODES: usize = 300;

fn search_cfg() -> RlSearchConfig {
    RlSearchConfig {
        episodes: EPISODES,
        ddpg: DdpgConfig {
            seed: 42,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    }
}

fn bench_model(c: &mut Criterion, group: &str, model: &autohet_dnn::Model, lanes: &[usize]) {
    let cands = paper_hybrid_candidates();
    let cfg = AccelConfig::default().with_tile_sharing();
    let scfg = search_cfg();
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(EPISODES as u64));
    g.bench_function("seq", |b| {
        b.iter(|| black_box(rl_search(model, &cands, &cfg, &scfg)))
    });
    for &n in lanes {
        g.bench_function(format!("vec{n}"), |b| {
            b.iter(|| black_box(rl_search_vec(model, &cands, &cfg, &scfg, n)))
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    bench_model(
        c,
        "search/micro_cnn_300",
        &autohet_dnn::zoo::micro_cnn(),
        &[2, 8],
    );
    // The paper's headline workload: 300 rounds on VGG16.
    bench_model(c, "search/vgg16_300", &autohet_dnn::zoo::vgg16(), &[8]);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
