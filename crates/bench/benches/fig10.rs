//! Criterion bench for the Fig. 10 ablation pipeline at reduced scale.

use autohet::ablation::run_ablation;
use autohet::prelude::*;
use autohet_dnn::zoo;
use autohet_rl::DdpgConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let scfg = RlSearchConfig {
        episodes: 8,
        ddpg: DdpgConfig {
            seed: 2,
            hidden: 32,
            batch: 32,
            ..DdpgConfig::default()
        },
        train_steps: 2,
        ..RlSearchConfig::default()
    };
    let micro = zoo::micro_cnn();
    c.bench_function("fig10/ablation_micro_8ep", |b| {
        b.iter(|| black_box(run_ablation(black_box(&micro), &scfg)))
    });
    // The non-RL part of every ablation stage: strategy evaluation.
    let vgg = zoo::vgg16();
    let strategy = vec![XbarShape::new(576, 512); vgg.layers.len()];
    let shared = AccelConfig::default().with_tile_sharing();
    c.bench_function("fig10/evaluate_vgg16_tile_shared", |b| {
        b.iter(|| black_box(evaluate(black_box(&vgg), &strategy, &shared)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig10
}
criterion_main!(benches);
