//! Criterion bench for the Fig. 11 sensitivity pipelines at reduced scale.

use autohet::prelude::*;
use autohet::sensitivity::{sweep_candidate_count, sweep_pes_per_tile, sweep_sxb_rxb_ratio};
use autohet_dnn::zoo;
use autohet_rl::DdpgConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn scfg() -> RlSearchConfig {
    RlSearchConfig {
        episodes: 6,
        ddpg: DdpgConfig {
            seed: 3,
            hidden: 32,
            batch: 32,
            ..DdpgConfig::default()
        },
        train_steps: 2,
        ..RlSearchConfig::default()
    }
}

fn bench_fig11(c: &mut Criterion) {
    let micro = zoo::micro_cnn();
    let s = scfg();
    c.bench_function("fig11/ratio_sweep_micro", |b| {
        b.iter(|| black_box(sweep_sxb_rxb_ratio(black_box(&micro), &s)))
    });
    c.bench_function("fig11/candidate_count_sweep_micro", |b| {
        b.iter(|| black_box(sweep_candidate_count(black_box(&micro), &s)))
    });
    c.bench_function("fig11/pes_per_tile_sweep_micro", |b| {
        b.iter(|| black_box(sweep_pes_per_tile(black_box(&micro), &s)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11
}
criterion_main!(benches);
