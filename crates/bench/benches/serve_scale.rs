//! Sharded-runtime scale benchmark: one simulated day of traffic from a
//! 120-tenant fleet (~1.3M requests) through `run_sharded`, comparing
//! the linear-scan reference at 1 shard against the heap scheduler at 1
//! and 8 shards. All modes make identical scheduling decisions at equal
//! shard counts (property-tested), so the wall-clock ratio isolates the
//! ready-structure cost: O(tenants + replicas) scans per event vs
//! O(log) lazy-deletion heaps over shard-local state.
//!
//! Alongside the `bench` lines this prints one `serve_meta` line with
//! the workload's scale facts; `scripts/bench_snapshot.sh` folds both
//! into `BENCH_serve.json`.

use autohet_accel::AccelConfig;
use autohet_dnn::zoo;
use autohet_serve::{
    run_sharded, BurstSpec, Deployment, SelectMode, ShardConfig, TenantSpec, Workload,
};
use autohet_xbar::XbarShape;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const TENANTS: usize = 120;
const HORIZON_NS: u64 = 86_400_000_000_000; // 24h of virtual time
const TARGET_REQUESTS: f64 = 1_200_000.0;
const TOTAL_REPLICAS: usize = 8;

/// The serve_scale example's day fleet: three compiled deployments
/// cloned across the tenants, weights cycling 1/2/4/8, every third
/// tenant with a rush-hour burst.
fn fleet() -> Vec<TenantSpec> {
    let cfg = AccelConfig::default();
    let lenet = zoo::lenet5();
    let micro = zoo::micro_cnn();
    let deployments = [
        Deployment::compile(
            "lenet/sq128",
            &lenet,
            &vec![XbarShape::square(128); lenet.layers.len()],
            &cfg,
        ),
        Deployment::compile(
            "micro/sq64",
            &micro,
            &vec![XbarShape::square(64); micro.layers.len()],
            &cfg,
        ),
        Deployment::compile(
            "micro/sq128",
            &micro,
            &vec![XbarShape::square(128); micro.layers.len()],
            &cfg,
        ),
    ];
    let rate = TARGET_REQUESTS / (HORIZON_NS as f64 / 1e9) / TENANTS as f64;
    (0..TENANTS)
        .map(|i| {
            let d = deployments[i % deployments.len()].clone();
            let slo = (8.0 * d.pipeline.fill_ns) as u64;
            let mut t =
                TenantSpec::new(&format!("tenant-{i:03}"), d, rate, slo).with_weight(1 << (i % 4));
            if i % 3 == 0 {
                t = t.with_burst(BurstSpec {
                    period_ns: HORIZON_NS,
                    burst_ns: HORIZON_NS / 6,
                    factor: 3.0,
                });
            }
            t
        })
        .collect()
}

fn config(shards: usize, mode: SelectMode) -> ShardConfig {
    ShardConfig {
        shards,
        replicas_per_shard: TOTAL_REPLICAS / shards,
        mode,
        ..ShardConfig::default()
    }
}

fn bench_serve_scale(c: &mut Criterion) {
    let tenants = fleet();
    let wl = Workload {
        seed: 2024,
        horizon_ns: HORIZON_NS,
    };
    // One probe run pins down the workload's actual scale (the arrival
    // streams are seeded, so every timed run serves the same requests).
    let probe = run_sharded(&tenants, &wl, &config(8, SelectMode::Heap));
    assert_eq!(probe.lost_requests(), 0);
    println!(
        "serve_meta requests={} tenants={} horizon_ns={} replicas={}",
        probe.total_submitted, TENANTS, HORIZON_NS, TOTAL_REPLICAS
    );

    let mut g = c.benchmark_group("serve");
    g.throughput(Throughput::Elements(probe.total_submitted));
    g.sample_size(2);
    for (name, shards, mode) in [
        ("day/scan_shard1", 1, SelectMode::LinearScan),
        ("day/heap_shard1", 1, SelectMode::Heap),
        ("day/heap_shard8", 8, SelectMode::Heap),
    ] {
        let cfg = config(shards, mode);
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_sharded(black_box(&tenants), &wl, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serve_scale);
criterion_main!(benches);
