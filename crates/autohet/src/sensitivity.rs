//! The §4.4 sensitivity sweeps (Fig. 11): AutoHet vs the best homogeneous
//! accelerator while varying
//!
//! (a) the ratio of square to rectangle candidates (`2S3R`, `3S2R`,
//!     `4S1R`),
//! (b) the number of crossbar candidates (2, 4, 8), and
//! (c) the number of PEs per tile (8, 16, 32).

use crate::homogeneous::best_homogeneous;
use crate::search::rl::{rl_search, RlSearchConfig};
use autohet_accel::AccelConfig;
use autohet_dnn::Model;
use autohet_xbar::geometry::mixed_candidates;
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};

/// One sweep point: AutoHet (full optimizations) vs Best-Homo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Point label, e.g. `"2S3R"` or `"PEs=16"`.
    pub label: String,
    /// AutoHet RUE at this point.
    pub autohet_rue: f64,
    /// Best homogeneous RUE at this point.
    pub best_homo_rue: f64,
    /// The candidate set AutoHet searched.
    pub candidates: Vec<XbarShape>,
}

impl SweepPoint {
    /// AutoHet's RUE improvement factor over Best-Homo.
    pub fn speedup(&self) -> f64 {
        self.autohet_rue / self.best_homo_rue
    }
}

fn autohet_point(
    label: String,
    model: &Model,
    candidates: Vec<XbarShape>,
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
) -> SweepPoint {
    let shared = cfg.with_tile_sharing();
    let outcome = rl_search(model, &candidates, &shared, scfg);
    let (_, homo) = best_homogeneous(model, cfg);
    SweepPoint {
        label,
        autohet_rue: outcome.best_report.rue(),
        best_homo_rue: homo.rue(),
        candidates,
    }
}

/// Run independent sweep points on parallel workers (each point is an RL
/// search plus a Best-Homo baseline), preserving spec order.
fn sweep_points(
    model: &Model,
    scfg: &RlSearchConfig,
    specs: Vec<(String, Vec<XbarShape>, AccelConfig)>,
) -> Vec<SweepPoint> {
    crate::par::par_map(&specs, |(label, candidates, cfg)| {
        autohet_point(label.clone(), model, candidates.clone(), cfg, scfg)
    })
}

/// Fig. 11(a): vary the SXB:RXB candidate mix at five total candidates.
pub fn sweep_sxb_rxb_ratio(model: &Model, scfg: &RlSearchConfig) -> Vec<SweepPoint> {
    let cfg = AccelConfig::default();
    let specs = [(2usize, 3usize), (3, 2), (4, 1)]
        .into_iter()
        .map(|(s, r)| (format!("{s}S{r}R"), mixed_candidates(s, r), cfg))
        .collect();
    sweep_points(model, scfg, specs)
}

/// Fig. 11(b): vary the total number of candidates (even SXB/RXB split).
pub fn sweep_candidate_count(model: &Model, scfg: &RlSearchConfig) -> Vec<SweepPoint> {
    let cfg = AccelConfig::default();
    let specs = [2usize, 4, 8]
        .into_iter()
        .map(|n| (format!("{n}"), mixed_candidates(n / 2, n - n / 2), cfg))
        .collect();
    sweep_points(model, scfg, specs)
}

/// Fig. 11(c): vary PEs per tile; both AutoHet and Best-Homo are
/// re-evaluated at each tile width.
pub fn sweep_pes_per_tile(model: &Model, scfg: &RlSearchConfig) -> Vec<SweepPoint> {
    let specs = [8u32, 16, 32]
        .into_iter()
        .map(|pes| {
            (
                format!("PEs={pes}"),
                autohet_xbar::geometry::paper_hybrid_candidates(),
                AccelConfig::default().with_pes_per_tile(pes),
            )
        })
        .collect();
    sweep_points(model, scfg, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_rl::DdpgConfig;

    // 40 episodes: at 25 the tiny budget leaves the PEs=16 point hostage
    // to one lucky exploration draw (seed 23 lands at 0.83× best-homo);
    // at 40 every probed seed clears 3× at all three tile widths, so the
    // assertion tests the search, not the RNG stream.
    fn quick() -> RlSearchConfig {
        RlSearchConfig {
            episodes: 40,
            ddpg: DdpgConfig {
                seed: 23,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn ratio_sweep_produces_three_labeled_points() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = sweep_sxb_rxb_ratio(&m, &quick());
        let labels: Vec<&str> = pts.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["2S3R", "3S2R", "4S1R"]);
        for p in &pts {
            assert_eq!(p.candidates.len(), 5);
            assert!(p.autohet_rue > 0.0 && p.best_homo_rue > 0.0);
        }
    }

    #[test]
    fn candidate_count_sweep_sizes() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = sweep_candidate_count(&m, &quick());
        let sizes: Vec<usize> = pts.iter().map(|p| p.candidates.len()).collect();
        assert_eq!(sizes, vec![2, 4, 8]);
    }

    #[test]
    fn pe_sweep_keeps_autohet_competitive() {
        // Fig. 11(c): AutoHet ≥ Best-Homo at every tile width (allow a
        // small slack for the tiny search budget used in tests).
        let m = autohet_dnn::zoo::micro_cnn();
        for p in sweep_pes_per_tile(&m, &quick()) {
            assert!(
                p.speedup() > 0.9,
                "{}: AutoHet {} vs homo {}",
                p.label,
                p.autohet_rue,
                p.best_homo_rue
            );
        }
    }
}
