//! Exhaustive oracle: enumerate every `Cᴺ` strategy for small models.
//!
//! Used to measure the RL agent's optimality gap — the paper argues the
//! `Cᴺ` space makes manual/exhaustive search impractical (§2.2.3), which
//! is true at VGG16 scale (5¹⁶ ≈ 1.5×10¹¹); on 4-layer test models the
//! oracle is cheap and pins down the true optimum.

use autohet_accel::{evaluate, AccelConfig, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;

/// Enumerate all strategies (panics if the space exceeds `limit`
/// evaluations; default callers pass ~1e5). Returns the RUE-optimal one.
pub fn exhaustive_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    limit: u64,
) -> (Vec<XbarShape>, EvalReport) {
    let n = model.layers.len();
    let c = candidates.len();
    let space = (c as u64).checked_pow(n as u32).unwrap_or(u64::MAX);
    assert!(
        space <= limit,
        "search space {space} exceeds limit {limit} (use rl_search instead)"
    );

    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    let mut idx = vec![0usize; n];
    loop {
        let strategy: Vec<XbarShape> = idx.iter().map(|&i| candidates[i]).collect();
        let report = evaluate(model, &strategy, cfg);
        if best.as_ref().map_or(true, |(_, b)| report.rue() > b.rue()) {
            best = Some((strategy, report));
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n {
                return best.unwrap();
            }
            idx[pos] += 1;
            if idx[pos] < c {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::random::random_search;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn oracle_dominates_random_search() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        let (_, rand) = random_search(&m, &cands, &cfg, 50, 1);
        assert!(oracle.rue() >= rand.rue());
    }

    #[test]
    fn oracle_beats_every_single_shape() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        for &s in &cands {
            let homo = evaluate(&m, &vec![s; m.layers.len()], &cfg);
            assert!(oracle.rue() >= homo.rue());
        }
    }

    #[test]
    #[should_panic]
    fn refuses_oversized_spaces() {
        let m = zoo::vgg16();
        let cands = paper_hybrid_candidates();
        let _ = exhaustive_search(&m, &cands, &AccelConfig::default(), 10_000);
    }

    #[test]
    fn two_candidate_space_enumerates_fully() {
        // 2⁴ = 16 strategies; the best must at least match both
        // homogeneous corners.
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = vec![XbarShape::square(32), XbarShape::square(256)];
        let (_, best) = exhaustive_search(&m, &cands, &cfg, 100);
        for &s in &cands {
            let homo = evaluate(&m, &vec![s; m.layers.len()], &cfg);
            assert!(best.rue() >= homo.rue());
        }
    }
}
