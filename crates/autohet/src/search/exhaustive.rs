//! Exhaustive oracle: enumerate every `Cᴺ` strategy for small models.
//!
//! Used to measure the RL agent's optimality gap — the paper argues the
//! `Cᴺ` space makes manual/exhaustive search impractical (§2.2.3), which
//! is true at VGG16 scale (5¹⁶ ≈ 1.5×10¹¹); on 4-layer test models the
//! oracle is cheap and pins down the true optimum.
//!
//! The enumeration walks a little-endian odometer over candidate indices
//! (`idx[0]` increments first). [`exhaustive_search`] chunks the odometer
//! range across `crossbeam::thread::scope` workers sharing one memoized
//! [`EvalEngine`]; ties merge earliest-index-first, so the parallel result
//! is exactly the serial one.

use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;

/// Enumerate all strategies in parallel (panics if the space exceeds
/// `limit` evaluations; default callers pass ~1e5). Returns the
/// RUE-optimal one — identical to [`exhaustive_search_serial`].
pub fn exhaustive_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    limit: u64,
) -> (Vec<XbarShape>, EvalReport) {
    let engine = EvalEngine::new(model.clone(), *cfg);
    exhaustive_search_with_engine(&engine, candidates, limit, true)
}

/// Single-threaded enumeration, kept as the reference implementation (and
/// the serial arm of the `eval_cache` bench).
pub fn exhaustive_search_serial(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    limit: u64,
) -> (Vec<XbarShape>, EvalReport) {
    let engine = EvalEngine::new(model.clone(), *cfg);
    exhaustive_search_with_engine(&engine, candidates, limit, false)
}

/// Enumeration core over an existing engine. `parallel` selects chunked
/// scoped-thread workers versus the single-threaded loop; both return the
/// same strategy and report.
pub fn exhaustive_search_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
    limit: u64,
    parallel: bool,
) -> (Vec<XbarShape>, EvalReport) {
    assert!(!candidates.is_empty());
    let n = engine.model().layers.len();
    let c = candidates.len();
    let space = (c as u64).checked_pow(n as u32).unwrap_or(u64::MAX);
    assert!(
        space <= limit,
        "search space {space} exceeds limit {limit} (use rl_search instead)"
    );

    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(4)
            .min(space.max(1) as usize)
    } else {
        1
    };
    if workers <= 1 {
        return best_in_range(engine, candidates, 0, space).expect("space >= 1");
    }

    let chunk = space.div_ceil(workers as u64);
    let mut results: Vec<Option<(Vec<XbarShape>, EvalReport)>> = Vec::with_capacity(workers);
    results.resize_with(workers, || None);
    crossbeam::thread::scope(|s| {
        for (wi, slot) in results.iter_mut().enumerate() {
            let start = wi as u64 * chunk;
            let end = (start + chunk).min(space);
            if start >= end {
                continue;
            }
            s.spawn(move |_| {
                *slot = best_in_range(engine, candidates, start, end);
            });
        }
    })
    .expect("exhaustive search worker panicked");

    // Merge in chunk order with a strict `>`: on exact RUE ties the
    // earliest odometer index wins, matching the serial loop.
    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    for r in results.into_iter().flatten() {
        if best.as_ref().map_or(true, |(_, b)| r.1.rue() > b.rue()) {
            best = Some(r);
        }
    }
    best.expect("space >= 1")
}

/// Best strategy over odometer indices `[start, end)`. Reuses one scratch
/// strategy buffer across the whole range, cloning only on a new best.
fn best_in_range(
    engine: &EvalEngine,
    candidates: &[XbarShape],
    start: u64,
    end: u64,
) -> Option<(Vec<XbarShape>, EvalReport)> {
    let n = engine.model().layers.len();
    let c = candidates.len() as u64;

    // Decode `start` into little-endian odometer digits.
    let mut idx = vec![0usize; n];
    let mut rem = start;
    for digit in idx.iter_mut() {
        *digit = (rem % c) as usize;
        rem /= c;
    }
    let mut scratch: Vec<XbarShape> = idx.iter().map(|&i| candidates[i]).collect();

    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    for _ in start..end {
        let report = engine.evaluate_fresh(&scratch);
        if best.as_ref().map_or(true, |(_, b)| report.rue() > b.rue()) {
            best = Some((scratch.clone(), report));
        }
        // Odometer increment, updating the scratch buffer in place.
        let mut pos = 0;
        while pos < n {
            idx[pos] += 1;
            if (idx[pos] as u64) < c {
                scratch[pos] = candidates[idx[pos]];
                break;
            }
            idx[pos] = 0;
            scratch[pos] = candidates[0];
            pos += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::random::random_search;
    use autohet_accel::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn oracle_dominates_random_search() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        let (_, rand) = random_search(&m, &cands, &cfg, 50, 1);
        assert!(oracle.rue() >= rand.rue());
    }

    #[test]
    fn oracle_beats_every_single_shape() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        for &s in &cands {
            let homo = evaluate(&m, &vec![s; m.layers.len()], &cfg);
            assert!(oracle.rue() >= homo.rue());
        }
    }

    #[test]
    #[should_panic]
    fn refuses_oversized_spaces() {
        let m = zoo::vgg16();
        let cands = paper_hybrid_candidates();
        let _ = exhaustive_search(&m, &cands, &AccelConfig::default(), 10_000);
    }

    #[test]
    fn two_candidate_space_enumerates_fully() {
        // 2⁴ = 16 strategies; the best must at least match both
        // homogeneous corners.
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = vec![XbarShape::square(32), XbarShape::square(256)];
        let (_, best) = exhaustive_search(&m, &cands, &cfg, 100);
        for &s in &cands {
            let homo = evaluate(&m, &vec![s; m.layers.len()], &cfg);
            assert!(best.rue() >= homo.rue());
        }
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
        ] {
            let (sp, rp) = exhaustive_search(&m, &cands, &cfg, 1_000);
            let (ss, rs) = exhaustive_search_serial(&m, &cands, &cfg, 1_000);
            assert_eq!(sp, ss);
            assert_eq!(rp, rs);
        }
    }

    #[test]
    fn chunked_ranges_cover_the_space_exactly_once() {
        // Splitting [0, space) at arbitrary boundaries and merging must
        // reproduce the full-range best.
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = vec![
            XbarShape::square(32),
            XbarShape::square(64),
            XbarShape::square(256),
        ];
        let engine = EvalEngine::new(m.clone(), cfg);
        let space = (cands.len() as u64).pow(m.layers.len() as u32);
        let full = best_in_range(&engine, &cands, 0, space).unwrap();
        for split in [1, 7, space / 2, space - 1] {
            let lo = best_in_range(&engine, &cands, 0, split).unwrap();
            let hi = best_in_range(&engine, &cands, split, space).unwrap();
            let merged = if hi.1.rue() > lo.1.rue() { hi } else { lo };
            assert_eq!(merged.0, full.0);
            assert_eq!(merged.1, full.1);
        }
    }
}
