//! Simulated-annealing comparator.
//!
//! A classical single-solution metaheuristic over the same `Cᴺ` space the
//! RL agent searches: start from a uniform strategy, propose single-layer
//! mutations, accept improvements always and regressions with probability
//! `exp(Δ/T)` under a geometric cooling schedule. Beyond-paper baseline
//! (DESIGN.md §6): it needs no learned model, so it isolates how much of
//! AutoHet's win comes from *learning* layer features versus merely
//! *searching* the space.

use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Annealer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Evaluation budget (comparable to RL episodes).
    pub iterations: usize,
    /// Initial temperature, in units of *relative* RUE change.
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            iterations: 300,
            t0: 0.3,
            cooling: 0.99,
            seed: 0,
        }
    }
}

/// Run simulated annealing; returns the best strategy visited.
pub fn annealing_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    acfg: &AnnealingConfig,
) -> (Vec<XbarShape>, EvalReport) {
    let engine = EvalEngine::new(model.clone(), *cfg);
    annealing_search_with_engine(&engine, candidates, acfg)
}

/// [`annealing_search`] on an existing (possibly shared) memoized engine.
/// The annealer revisits states whenever a rejected mutation is proposed
/// again, so the engine's strategy cache pays off within a single run.
pub fn annealing_search_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
    acfg: &AnnealingConfig,
) -> (Vec<XbarShape>, EvalReport) {
    assert!(!candidates.is_empty() && acfg.iterations >= 1);
    let n = engine.model().layers.len();
    let mut rng = SmallRng::seed_from_u64(acfg.seed ^ 0xA44E);

    // Start from the middle candidate applied homogeneously.
    let mut current: Vec<XbarShape> = vec![candidates[candidates.len() / 2]; n];
    let mut current_report = engine.evaluate(&current);
    let mut best = (current.clone(), current_report.clone());
    let mut temp = acfg.t0;

    for _ in 0..acfg.iterations {
        // Propose: re-roll one layer's shape.
        let li = rng.gen_range(0..n);
        let old = current[li];
        let mut pick = candidates[rng.gen_range(0..candidates.len())];
        if candidates.len() > 1 {
            while pick == old {
                pick = candidates[rng.gen_range(0..candidates.len())];
            }
        }
        current[li] = pick;
        let proposal = engine.evaluate(&current);

        // Relative RUE improvement (positive = better).
        let delta = (proposal.rue() - current_report.rue()) / current_report.rue();
        let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temp.max(1e-12)).exp();
        if accept {
            current_report = proposal;
            if current_report.rue() > best.1.rue() {
                best = (current.clone(), current_report.clone());
            }
        } else {
            current[li] = old;
        }
        temp *= acfg.cooling;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exhaustive::exhaustive_search;
    use autohet_accel::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let acfg = AnnealingConfig {
            iterations: 40,
            seed: 2,
            ..AnnealingConfig::default()
        };
        let (s1, r1) = annealing_search(&m, &paper_hybrid_candidates(), &cfg, &acfg);
        let (s2, r2) = annealing_search(&m, &paper_hybrid_candidates(), &cfg, &acfg);
        assert_eq!(s1, s2);
        assert_eq!(r1.rue(), r2.rue());
    }

    #[test]
    fn annealing_approaches_the_oracle_on_micro_cnn() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        let (_, sa) = annealing_search(
            &m,
            &cands,
            &cfg,
            &AnnealingConfig {
                iterations: 200,
                seed: 5,
                ..AnnealingConfig::default()
            },
        );
        assert!(
            sa.rue() >= oracle.rue() * 0.9,
            "sa {} oracle {}",
            sa.rue(),
            oracle.rue()
        );
    }

    #[test]
    fn annealing_never_returns_worse_than_its_start() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let start = evaluate(&m, &vec![cands[cands.len() / 2]; m.layers.len()], &cfg);
        let (_, sa) = annealing_search(
            &m,
            &cands,
            &cfg,
            &AnnealingConfig {
                iterations: 30,
                seed: 8,
                ..AnnealingConfig::default()
            },
        );
        assert!(sa.rue() >= start.rue());
    }

    #[test]
    fn single_candidate_space_is_a_fixed_point() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = vec![XbarShape::square(64)];
        let (s, _) = annealing_search(&m, &cands, &cfg, &AnnealingConfig::default());
        assert!(s.iter().all(|&x| x == XbarShape::square(64)));
    }
}
