//! Simulated-annealing comparator.
//!
//! A classical single-solution metaheuristic over the same `Cᴺ` space the
//! RL agent searches: start from a uniform strategy, propose single-layer
//! mutations, accept improvements always and regressions with probability
//! `exp(Δ/T)` under a geometric cooling schedule. Beyond-paper baseline
//! (DESIGN.md §6): it needs no learned model, so it isolates how much of
//! AutoHet's win comes from *learning* layer features versus merely
//! *searching* the space.

use crate::search::rl::{EpisodeRecord, SearchTiming};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Annealer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Evaluation budget (comparable to RL episodes).
    pub iterations: usize,
    /// Initial temperature, in units of *relative* RUE change.
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            iterations: 300,
            t0: 0.3,
            cooling: 0.99,
            seed: 0,
        }
    }
}

/// Result of an annealing run: the best strategy visited plus the full
/// per-iteration trajectory in the same [`EpisodeRecord`] shape the RL
/// searches emit (`episode` = iteration, `reward` = relative RUE delta of
/// the proposal against the incumbent).
#[derive(Debug, Clone)]
pub struct AnnealingOutcome {
    pub best_strategy: Vec<XbarShape>,
    pub best_report: EvalReport,
    pub history: Vec<EpisodeRecord>,
    /// Stage timing and the evaluation-cache delta of this search.
    pub timing: SearchTiming,
}

impl AnnealingOutcome {
    /// Best raw RUE found.
    pub fn best_rue(&self) -> f64 {
        self.best_report.rue()
    }
}

/// Run simulated annealing; returns the best strategy visited.
pub fn annealing_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    acfg: &AnnealingConfig,
) -> AnnealingOutcome {
    let engine = EvalEngine::new(model.clone(), *cfg);
    annealing_search_with_engine(&engine, candidates, acfg)
}

/// [`annealing_search`] on an existing (possibly shared) memoized engine.
/// The annealer revisits states whenever a rejected mutation is proposed
/// again, so the engine's strategy cache pays off within a single run.
pub fn annealing_search_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
    acfg: &AnnealingConfig,
) -> AnnealingOutcome {
    assert!(!candidates.is_empty() && acfg.iterations >= 1);
    let _span = autohet_obs::trace::span("search.annealing");
    let t0 = Instant::now();
    let stats0 = engine.stats();
    let n = engine.model().layers.len();
    let mut rng = SmallRng::seed_from_u64(acfg.seed ^ 0xA44E);

    // Start from the middle candidate applied homogeneously.
    let mut current: Vec<XbarShape> = vec![candidates[candidates.len() / 2]; n];
    let mut current_report = engine.evaluate(&current);
    let mut best = (current.clone(), current_report.clone());
    let mut temp = acfg.t0;
    let mut history = Vec::with_capacity(acfg.iterations);
    let mut timing = SearchTiming::default();

    for episode in 0..acfg.iterations {
        let _ep_span = autohet_obs::trace::span("search.episode");
        let ep_stats = engine.stats();
        // Propose: re-roll one layer's shape.
        let ta = Instant::now();
        let li = rng.gen_range(0..n);
        let old = current[li];
        let mut pick = candidates[rng.gen_range(0..candidates.len())];
        if candidates.len() > 1 {
            while pick == old {
                pick = candidates[rng.gen_range(0..candidates.len())];
            }
        }
        current[li] = pick;
        timing.agent += ta.elapsed();

        let ts = Instant::now();
        let proposal = engine.evaluate(&current);
        timing.simulator += ts.elapsed();

        // Relative RUE improvement (positive = better).
        let delta = (proposal.rue() - current_report.rue()) / current_report.rue();
        history.push(EpisodeRecord {
            episode,
            rue: proposal.rue(),
            reward: delta,
            utilization: proposal.utilization,
            energy_nj: proposal.energy_nj(),
            cache_hit_rate: engine.stats().since(&ep_stats).combined_hit_rate(),
        });
        let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temp.max(1e-12)).exp();
        if accept {
            current_report = proposal;
            if current_report.rue() > best.1.rue() {
                best = (current.clone(), current_report.clone());
            }
        } else {
            current[li] = old;
        }
        temp *= acfg.cooling;
    }
    timing.total = t0.elapsed();
    timing.cache = engine.stats().since(&stats0);
    AnnealingOutcome {
        best_strategy: best.0,
        best_report: best.1,
        history,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exhaustive::exhaustive_search;
    use autohet_accel::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let acfg = AnnealingConfig {
            iterations: 40,
            seed: 2,
            ..AnnealingConfig::default()
        };
        let a = annealing_search(&m, &paper_hybrid_candidates(), &cfg, &acfg);
        let b = annealing_search(&m, &paper_hybrid_candidates(), &cfg, &acfg);
        assert_eq!(a.best_strategy, b.best_strategy);
        assert_eq!(a.best_rue(), b.best_rue());
        assert_eq!(a.history.len(), 40);
        assert_eq!(b.history.len(), 40);
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.rue, y.rue);
            assert_eq!(x.reward, y.reward);
        }
    }

    #[test]
    fn annealing_approaches_the_oracle_on_micro_cnn() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, oracle) = exhaustive_search(&m, &cands, &cfg, 1_000);
        let sa = annealing_search(
            &m,
            &cands,
            &cfg,
            &AnnealingConfig {
                iterations: 200,
                seed: 5,
                ..AnnealingConfig::default()
            },
        );
        assert!(
            sa.best_rue() >= oracle.rue() * 0.9,
            "sa {} oracle {}",
            sa.best_rue(),
            oracle.rue()
        );
        // The mutate-one-layer proposal loop revisits cached states, so
        // the per-run cache delta must show real hits.
        assert!(sa.timing.cache.layer_hits > 0);
        assert!(sa
            .history
            .iter()
            .all(|e| (0.0..=1.0).contains(&e.cache_hit_rate)));
    }

    #[test]
    fn annealing_never_returns_worse_than_its_start() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let start = evaluate(&m, &vec![cands[cands.len() / 2]; m.layers.len()], &cfg);
        let sa = annealing_search(
            &m,
            &cands,
            &cfg,
            &AnnealingConfig {
                iterations: 30,
                seed: 8,
                ..AnnealingConfig::default()
            },
        );
        assert!(sa.best_rue() >= start.rue());
    }

    #[test]
    fn single_candidate_space_is_a_fixed_point() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = vec![XbarShape::square(64)];
        let sa = annealing_search(&m, &cands, &cfg, &AnnealingConfig::default());
        assert!(sa.best_strategy.iter().all(|&x| x == XbarShape::square(64)));
    }
}
