//! Strategy search drivers.
//!
//! [`rl`] is the paper's DDPG search; [`greedy`] reproduces the
//! utilization-greedy comparator of Zhu et al. (related work [29]);
//! [`random`] is the sanity baseline and [`exhaustive`] the oracle for
//! models small enough to enumerate.

pub mod annealing;
pub mod dqn;
pub mod exhaustive;
pub mod greedy;
pub mod random;
pub mod rl;
