//! DQN-based search: the discrete-action alternative to the paper's DDPG.
//!
//! Same environment, same episode protocol (terminal reward shared by all
//! steps), but the agent picks candidate *indices* directly instead of
//! emitting a continuous value that gets discretized. Useful as an agent
//! ablation: it shows how much of AutoHet's result depends on the DDPG
//! formulation specifically (spoiler per our experiments: little — the
//! environment and reward do the heavy lifting).

use crate::env::AutoHetEnv;
use crate::search::rl::{EpisodeRecord, SearchTiming};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_rl::{DiscreteExperience, Dqn, DqnConfig};
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// DQN search hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnSearchConfig {
    /// Search rounds.
    pub episodes: usize,
    /// Agent hyperparameters (`state_dim`/`actions` are overridden).
    pub dqn: DqnConfig,
    /// Gradient updates after each episode.
    pub train_steps: usize,
}

impl Default for DqnSearchConfig {
    fn default() -> Self {
        DqnSearchConfig {
            episodes: 300,
            dqn: DqnConfig::default(),
            train_steps: 8,
        }
    }
}

/// Result of a DQN search.
#[derive(Debug, Clone)]
pub struct DqnSearchOutcome {
    pub best_strategy: Vec<XbarShape>,
    pub best_report: EvalReport,
    pub history: Vec<EpisodeRecord>,
    /// Stage timing and the evaluation-cache delta of this search.
    pub timing: SearchTiming,
}

impl DqnSearchOutcome {
    /// Best raw RUE found.
    pub fn best_rue(&self) -> f64 {
        self.best_report.rue()
    }
}

/// Run the DQN search (same protocol as [`crate::search::rl::rl_search`]).
pub fn dqn_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &DqnSearchConfig,
) -> DqnSearchOutcome {
    dqn_search_with_engine(
        model,
        candidates,
        cfg,
        scfg,
        Arc::new(EvalEngine::new(model.clone(), *cfg)),
    )
}

/// [`dqn_search`] on an existing (possibly shared) evaluation engine.
/// Cached feedback is bit-identical to direct evaluation, so the outcome
/// for a fixed seed is independent of the engine's prior contents.
pub fn dqn_search_with_engine(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &DqnSearchConfig,
    engine: Arc<EvalEngine>,
) -> DqnSearchOutcome {
    let _span = autohet_obs::trace::span("search.dqn");
    let t0 = Instant::now();
    let stats0 = engine.stats();
    let env = AutoHetEnv::with_shared_engine(model, candidates, *cfg, (1.0, 1.0), engine);
    let n = env.num_layers();
    let c = candidates.len();
    let mut agent = Dqn::new(DqnConfig {
        state_dim: 10,
        actions: c,
        ..scfg.dqn
    });

    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    let mut history = Vec::with_capacity(scfg.episodes);
    let mut timing = SearchTiming::default();

    for episode in 0..scfg.episodes {
        let _ep_span = autohet_obs::trace::span("search.episode");
        let ep_stats = env.engine().stats();
        let ta = Instant::now();
        let mut actions = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n + 1);
        let (mut prev_a, mut prev_u) = (0.0, 0.0);
        for k in 0..n {
            let s = env.state(k, prev_a, prev_u);
            let idx = agent.act_eps(&s);
            // Normalize the index into the same continuous coordinate the
            // state vector uses.
            prev_a = if c > 1 {
                idx as f64 / (c - 1) as f64
            } else {
                0.0
            };
            prev_u = env.layer_utilization(k, prev_a);
            states.push(s);
            actions.push(idx);
        }
        states.push(env.state(n - 1, prev_a, prev_u));
        timing.agent += ta.elapsed();

        let ts = Instant::now();
        let strategy: Vec<XbarShape> = actions.iter().map(|&i| candidates[i]).collect();
        let report = env.evaluate_strategy(&strategy);
        let reward = env.reward(&report);
        timing.simulator += ts.elapsed();

        history.push(EpisodeRecord {
            episode,
            rue: report.rue(),
            reward,
            utilization: report.utilization,
            energy_nj: report.energy_nj(),
            cache_hit_rate: env.engine().stats().since(&ep_stats).combined_hit_rate(),
        });
        if best.as_ref().map_or(true, |(_, b)| report.rue() > b.rue()) {
            best = Some((strategy, report));
        }

        let ta = Instant::now();
        for k in 0..n {
            agent.remember(DiscreteExperience {
                state: states[k].clone(),
                next_state: states[k + 1].clone(),
                action: actions[k],
                reward,
                done: k + 1 == n,
            });
        }
        agent.end_episode();
        for _ in 0..scfg.train_steps {
            agent.train_step();
        }
        timing.agent += ta.elapsed();
    }

    timing.total = t0.elapsed();
    timing.cache = env.engine().stats().since(&stats0);
    let (best_strategy, best_report) = best.expect("episodes >= 1");
    DqnSearchOutcome {
        best_strategy,
        best_report,
        history,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homogeneous::best_homogeneous;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick(seed: u64, episodes: usize) -> DqnSearchConfig {
        DqnSearchConfig {
            episodes,
            dqn: DqnConfig {
                seed,
                hidden: 32,
                batch: 32,
                ..DqnConfig::default()
            },
            train_steps: 4,
        }
    }

    #[test]
    fn dqn_search_beats_best_homogeneous_on_micro_cnn() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        // Seed 7 converges to ~1.67× best-homo at this budget (as do most
        // probed seeds at 60+ episodes); seed 1 is a known unlucky stream
        // that stalls below homo even at 90 episodes — the point here is
        // that a converged tiny-budget search beats the baseline, not
        // that every stream does.
        let outcome = dqn_search(&m, &paper_hybrid_candidates(), &cfg, &quick(7, 60));
        let (_, homo) = best_homogeneous(&m, &AccelConfig::default());
        assert!(
            outcome.best_rue() >= homo.rue(),
            "dqn {} vs homo {}",
            outcome.best_rue(),
            homo.rue()
        );
    }

    #[test]
    fn dqn_search_is_deterministic() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let a = dqn_search(&m, &paper_hybrid_candidates(), &cfg, &quick(4, 15));
        let b = dqn_search(&m, &paper_hybrid_candidates(), &cfg, &quick(4, 15));
        assert_eq!(a.best_strategy, b.best_strategy);
    }

    #[test]
    fn dqn_and_ddpg_land_in_the_same_ballpark() {
        // The agent ablation: both learned searches should reach within
        // ~10% of each other on the small model.
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let dqn = dqn_search(&m, &cands, &cfg, &quick(2, 80));
        let ddpg = crate::search::rl::rl_search(
            &m,
            &cands,
            &cfg,
            &crate::search::rl::RlSearchConfig {
                episodes: 80,
                ddpg: autohet_rl::DdpgConfig {
                    seed: 2,
                    hidden: 32,
                    batch: 32,
                    ..autohet_rl::DdpgConfig::default()
                },
                train_steps: 4,
                ..crate::search::rl::RlSearchConfig::default()
            },
        );
        let ratio = dqn.best_rue() / ddpg.best_rue();
        assert!((0.85..=1.2).contains(&ratio), "ratio {ratio}");
    }
}
