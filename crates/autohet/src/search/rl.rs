//! The paper's DDPG search (§3.2, Fig. 6 workflow ①–⑫).
//!
//! Each episode: walk the model's layers (decision stage, solid arrows) —
//! observe the layer state, let the actor (plus OU exploration noise) emit
//! the crossbar choice. When all layers are assigned, the heterogeneous
//! accelerator evaluates the configuration and returns the Eq. 2 reward;
//! the experience pool then absorbs every `(S_k, S_{k+1}, a_k, R)` tuple
//! (learning stage, dashed arrows) and the agent performs minibatch
//! updates. The best configuration ever visited is the search result
//! (§3.2: "we choose the optimal strategy as the final solution").
//!
//! Timing of the two stages is instrumented because the paper reports that
//! ~97% of search time is simulator feedback (§4.5).

use crate::env::AutoHetEnv;
use crate::vec_env::VecEnv;
use autohet_accel::{AccelConfig, EngineStats, EvalEngine, EvalReport, NoiseEvalConfig};
use autohet_dnn::Model;
use autohet_rl::{Ddpg, DdpgConfig, Experience, OuNoise};
use autohet_xbar::XbarShape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlSearchConfig {
    /// Search rounds (the paper runs 300 for VGG16, §4.5).
    pub episodes: usize,
    /// DDPG agent hyperparameters (`state_dim` is overridden to 10).
    pub ddpg: DdpgConfig,
    /// Initial OU noise sigma.
    pub noise_sigma: f64,
    /// Per-episode noise decay.
    pub noise_decay: f64,
    /// Noise floor.
    pub noise_min: f64,
    /// Gradient updates after each episode.
    pub train_steps: usize,
    /// Pure-exploration episodes before the actor drives decisions
    /// (standard DDPG warm-up: uniform random actions fill the experience
    /// pool with diverse configurations). Capped at `episodes / 3` so
    /// short searches still learn.
    pub warmup_episodes: usize,
    /// Objective exponents `(α, β)`: reward ∝ `u^α / e^β`. `(1, 1)` is the
    /// paper's Eq. 2; other weights trade utilization against energy (see
    /// `crate::pareto`).
    pub reward_weights: (f64, f64),
    /// Opt-in device-variation pressure on the reward: when positive,
    /// each episode's reward is divided by
    /// `1 + noise_penalty × mean_dev`, where `mean_dev` is the
    /// Monte-Carlo mean output deviation of the episode's strategy under
    /// the engine's noise oracle ([`EvalEngine::evaluate_noisy`], enabled
    /// automatically with [`NoiseEvalConfig::default`] if the engine has
    /// no noise state). `0.0` (the default) never touches the noise
    /// oracle and leaves the search bit-identical to earlier versions.
    #[serde(default)]
    pub noise_penalty: f64,
}

impl Default for RlSearchConfig {
    fn default() -> Self {
        RlSearchConfig {
            episodes: 300,
            ddpg: DdpgConfig::default(),
            noise_sigma: 0.5,
            noise_decay: 0.99,
            noise_min: 0.02,
            train_steps: 8,
            warmup_episodes: 60,
            reward_weights: (1.0, 1.0),
            noise_penalty: 0.0,
        }
    }
}

/// The engine a noise-penalized search runs on: the caller's engine if it
/// already carries a noise state (or no penalty applies), otherwise a
/// clone with the default noise oracle attached. Cloning forfeits cache
/// sharing with the caller, so penalized searches that want a shared memo
/// should pass an engine built with [`EvalEngine::with_noise`].
fn noise_ready_engine(scfg: &RlSearchConfig, engine: Arc<EvalEngine>) -> Arc<EvalEngine> {
    assert!(
        scfg.noise_penalty >= 0.0 && scfg.noise_penalty.is_finite(),
        "bad noise penalty {}",
        scfg.noise_penalty
    );
    if scfg.noise_penalty > 0.0 && engine.noise_config().is_none() {
        Arc::new(EvalEngine::clone(&engine).with_noise(NoiseEvalConfig::default()))
    } else {
        engine
    }
}

/// `reward` deflated by the configured noise penalty (identity at the
/// default `noise_penalty == 0.0`, which never queries the noise oracle).
fn penalized_reward(
    scfg: &RlSearchConfig,
    env: &AutoHetEnv,
    strategy: &[XbarShape],
    reward: f64,
) -> f64 {
    if scfg.noise_penalty > 0.0 {
        let noisy = env.engine().evaluate_noisy(strategy);
        reward / (1.0 + scfg.noise_penalty * noisy.robustness.mean_dev)
    } else {
        reward
    }
}

/// One episode's record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRecord {
    pub episode: usize,
    /// Raw RUE of the episode's configuration.
    pub rue: f64,
    /// Normalized reward fed to the agent.
    pub reward: f64,
    /// Allocation-level utilization (fraction).
    pub utilization: f64,
    /// Total energy [nJ].
    pub energy_nj: f64,
    /// Combined evaluation-cache hit rate over this episode's engine
    /// lookups (strategy + layer; 0.0 when no lookups happened). On an
    /// engine shared across concurrent searches the delta includes every
    /// user active during the episode.
    #[serde(default)]
    pub cache_hit_rate: f64,
}

/// Where the search time went (§4.5's decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchTiming {
    /// Total wall-clock.
    pub total: Duration,
    /// Time inside the hardware simulator (reward feedback).
    pub simulator: Duration,
    /// Time inside the agent (forward passes and training).
    pub agent: Duration,
    /// Evaluation-cache counters accumulated over this search (when the
    /// engine is shared across concurrent searches, counts include every
    /// user active during this search's window).
    pub cache: EngineStats,
}

impl SearchTiming {
    /// Fraction of the search spent waiting on simulator feedback.
    pub fn simulator_fraction(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.simulator.as_secs_f64() / self.total.as_secs_f64()
    }
}

/// Result of an RL search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best per-layer crossbar assignment found.
    pub best_strategy: Vec<XbarShape>,
    /// Hardware report of the best assignment.
    pub best_report: EvalReport,
    /// Episode-by-episode history.
    pub history: Vec<EpisodeRecord>,
    /// Stage timing.
    pub timing: SearchTiming,
}

impl SearchOutcome {
    /// Best raw RUE found.
    pub fn best_rue(&self) -> f64 {
        self.best_report.rue()
    }

    /// The episode index at which the best configuration was first found
    /// — the paper's search converges well before its 300 rounds, and
    /// this is the quantitative version of that observation.
    pub fn episodes_to_best(&self) -> usize {
        let best = self.best_rue();
        self.history
            .iter()
            .find(|h| h.rue >= best)
            .map(|h| h.episode)
            .unwrap_or(0)
    }

    /// Moving average of episode RUE with the given window, for
    /// convergence plots.
    pub fn rue_moving_average(&self, window: usize) -> Vec<f64> {
        assert!(window >= 1);
        let mut out = Vec::with_capacity(self.history.len());
        let mut sum = 0.0;
        for (i, h) in self.history.iter().enumerate() {
            sum += h.rue;
            if i >= window {
                sum -= self.history[i - window].rue;
            }
            out.push(sum / window.min(i + 1) as f64);
        }
        out
    }

    /// Running best-so-far RUE per episode (monotone non-decreasing).
    pub fn rue_running_best(&self) -> Vec<f64> {
        let mut best = f64::MIN;
        self.history
            .iter()
            .map(|h| {
                best = best.max(h.rue);
                best
            })
            .collect()
    }
}

/// Run the RL search for `model` over `candidates` on an accelerator
/// configured by `cfg`. Deterministic for a fixed `scfg.ddpg.seed`.
pub fn rl_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
) -> SearchOutcome {
    rl_search_with_engine(
        model,
        candidates,
        cfg,
        scfg,
        Arc::new(EvalEngine::new(model.clone(), *cfg)),
    )
}

/// [`rl_search`] on an existing (possibly shared) evaluation engine —
/// multi-seed runs, Pareto sweeps, and ablation stages with a common
/// config share one memo table this way. Cached feedback is bit-identical
/// to direct evaluation, so the outcome for a fixed seed is independent of
/// the engine's prior contents.
pub fn rl_search_with_engine(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    engine: Arc<EvalEngine>,
) -> SearchOutcome {
    let _span = autohet_obs::trace::span("search.rl");
    let t0 = Instant::now();
    let engine = noise_ready_engine(scfg, engine);
    let stats0 = engine.stats();
    let env = AutoHetEnv::with_shared_engine(model, candidates, *cfg, scfg.reward_weights, engine);
    let n = env.num_layers();
    let mut agent = Ddpg::new(DdpgConfig {
        state_dim: 10,
        ..scfg.ddpg
    });
    let mut noise = OuNoise::new(scfg.noise_sigma, scfg.noise_decay, scfg.noise_min);
    let warmup = scfg.warmup_episodes.min(scfg.episodes / 3);
    let mut warmup_rng = SmallRng::seed_from_u64(scfg.ddpg.seed ^ 0x3A90);

    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    let mut best_reward = f64::NEG_INFINITY;
    let mut history = Vec::with_capacity(scfg.episodes);
    let mut timing = SearchTiming::default();

    for episode in 0..scfg.episodes {
        let _ep_span = autohet_obs::trace::span("search.episode");
        let ep_stats = env.engine().stats();
        // ---- Decision stage (① – ⑤): assign every layer.
        let ta = Instant::now();
        let mut actions = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n + 1);
        let (mut prev_a, mut prev_u) = (0.0, 0.0);
        for k in 0..n {
            let s = env.state(k, prev_a, prev_u);
            let a = if episode < warmup {
                warmup_rng.gen::<f64>()
            } else {
                agent.act_noisy(&s, &mut noise)
            };
            prev_a = a;
            prev_u = env.layer_utilization(k, a);
            states.push(s);
            actions.push(a);
        }
        // Terminal state (the "next state" of the final layer).
        states.push(env.state(n - 1, prev_a, prev_u));
        timing.agent += ta.elapsed();

        // ---- Hardware feedback (⑥ – ⑦).
        let ts = Instant::now();
        let strategy = env.decode(&actions);
        let report = env.evaluate_strategy(&strategy);
        let reward = penalized_reward(scfg, &env, &strategy, env.reward(&report));
        timing.simulator += ts.elapsed();

        history.push(EpisodeRecord {
            episode,
            rue: report.rue(),
            reward,
            utilization: report.utilization,
            energy_nj: report.energy_nj(),
            cache_hit_rate: env.engine().stats().since(&ep_stats).combined_hit_rate(),
        });
        // Track the best configuration by the (possibly weighted) search
        // objective; at the default weights this is exactly best-RUE. The
        // episode reward is computed once and the incumbent's is kept as a
        // scalar, so no episode re-scores stored reports.
        if reward > best_reward {
            best_reward = reward;
            best = Some((strategy, report));
        }

        // ---- Learning stage (⑧ – ⑫).
        let ta = Instant::now();
        for k in 0..n {
            // `states[k]` is consumed here (its other use — as the next
            // state of tuple k−1 — already happened), so each state vector
            // is cloned once, not twice: the episode buffer is moved into
            // the pool and only the forward-looking `next_state` copies.
            agent.remember(Experience {
                state: std::mem::take(&mut states[k]),
                next_state: states[k + 1].clone(),
                action: actions[k],
                reward,
                done: k + 1 == n,
            });
        }
        noise.end_episode();
        // Each train step runs the minibatch GEMM kernels (feature-major
        // forward/backward in `autohet-rl`), whose fixed accumulation
        // order keeps seeded searches bit-reproducible; see DESIGN.md §9.
        for _ in 0..scfg.train_steps {
            agent.train_step();
        }
        timing.agent += ta.elapsed();
    }

    timing.total = t0.elapsed();
    timing.cache = env.engine().stats().since(&stats0);
    let (best_strategy, best_report) = best.expect("episodes >= 1");
    SearchOutcome {
        best_strategy,
        best_report,
        history,
        timing,
    }
}

/// Run one search per seed on parallel workers sharing a single memoized
/// engine; outcomes come back in seed order. Each worker runs the batched
/// act path ([`rl_search_vec_with_engine`] at one lane), which is proven
/// bit-identical to the sequential driver — so every result matches a
/// standalone `rl_search` with that seed (the shared cache only changes
/// speed, never values).
pub fn rl_search_multi_seed(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    seeds: &[u64],
) -> Vec<SearchOutcome> {
    rl_search_vec_multi_seed(model, candidates, cfg, scfg, seeds, 1)
}

/// [`rl_search_multi_seed`] with `lanes` lockstep exploration environments
/// per seed: each worker drives its own vectorized search, all workers
/// share one memo table. At `lanes == 1` every outcome is bit-identical to
/// a standalone [`rl_search`].
pub fn rl_search_vec_multi_seed(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    seeds: &[u64],
    lanes: usize,
) -> Vec<SearchOutcome> {
    assert!(!seeds.is_empty());
    let engine = Arc::new(EvalEngine::new(model.clone(), *cfg));
    crate::par::par_map(seeds, |&seed| {
        let mut s = *scfg;
        s.ddpg.seed = seed;
        rl_search_vec_with_engine(model, candidates, cfg, &s, lanes, Arc::clone(&engine))
    })
}

/// Throughput counters from a vectorized search (see [`VecSearchStats`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VecSearchStats {
    /// Lockstep lane count the driver was configured with.
    pub lanes: usize,
    /// Number of lockstep groups executed (`ceil(episodes / lanes)`).
    pub groups: usize,
    /// Episodes completed.
    pub episodes: usize,
    /// Completed episodes per wall-clock second.
    pub episodes_per_sec: f64,
    /// Per-group lane occupancy (`active / lanes`), a window series for
    /// telemetry: every group but the last runs full.
    pub group_occupancy: Vec<f64>,
    /// Mean of `group_occupancy`.
    pub mean_occupancy: f64,
}

/// Vectorized RL search: `lanes` lockstep exploration environments over
/// one shared agent and engine. Deterministic for a fixed
/// `(scfg.ddpg.seed, lanes)`; at `lanes == 1` bit-identical to
/// [`rl_search`].
pub fn rl_search_vec(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    lanes: usize,
) -> SearchOutcome {
    rl_search_vec_with_engine(
        model,
        candidates,
        cfg,
        scfg,
        lanes,
        Arc::new(EvalEngine::new(model.clone(), *cfg)),
    )
}

/// [`rl_search_vec`] on an existing (possibly shared) evaluation engine.
pub fn rl_search_vec_with_engine(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    lanes: usize,
    engine: Arc<EvalEngine>,
) -> SearchOutcome {
    rl_search_vec_with_stats(model, candidates, cfg, scfg, lanes, engine).0
}

/// Observation taps the vectorized driver feeds as it runs: a streaming
/// per-episode exporter and/or a reward-stall detector. Both are fed
/// right after each episode's [`EpisodeRecord`] is appended to the
/// history and never read back, so a tapped search is bit-identical to an
/// untapped one (property-tested in `tests/prop_obs.rs`); an empty tap
/// costs two `Option` checks per episode.
#[derive(Default)]
pub struct SearchTap<'a> {
    /// Streams every episode row as it is produced.
    pub episodes: Option<&'a mut crate::telemetry::EpisodeStream>,
    /// Watches the reward trajectory for stalls.
    pub stall: Option<&'a mut crate::telemetry::StallDetector>,
}

impl SearchTap<'_> {
    /// The no-op tap (what the untapped entry points use).
    pub fn none() -> Self {
        SearchTap::default()
    }

    #[inline]
    fn feed(&mut self, record: &EpisodeRecord) {
        if let Some(stream) = self.episodes.as_deref_mut() {
            stream.push(record);
        }
        if let Some(stall) = self.stall.as_deref_mut() {
            stall.observe(record.episode, record.reward);
        }
    }
}

/// The full vectorized driver, also returning throughput counters.
///
/// Batching model (DESIGN.md §10): episodes advance in lockstep groups of
/// up to `lanes`. Within a group, layer step `k` stacks all active lanes'
/// states and issues **one** batched actor pass
/// ([`Ddpg::act_noisy_batch`], a feature-major GEMM), drawing per-lane OU
/// noise from the agent RNG in ascending lane order. End-of-group
/// evaluations fan out over [`par_map`](crate::par::par_map) against the
/// shared memoized engine. The learning stage then ingests every lane's
/// transitions in lane order and performs `scfg.train_steps` minibatch
/// updates **per group** — the standard vectorized-DDPG schedule
/// (gradient steps per rollout round, not per episode), which is where
/// the episodes/sec win comes from and which makes `lanes == 1` reduce
/// exactly to the sequential driver.
///
/// N=1 bit-identity argument, piece by piece:
/// - actions: `act_noisy_batch` over one lane performs the same forward
///   and the same two RNG draws as `act_noisy`; warm-up groups draw from
///   the same dedicated warm-up RNG in the same order;
/// - noise schedule: each lane's OU process is re-seeded at group start
///   from a master sigma schedule that replays the sequential
///   `end_episode` decay exactly;
/// - replay and training: transitions are pushed in (group, lane, step)
///   order and the per-group `train_steps` equals the sequential
///   per-episode count at one lane;
/// - history/best: lanes are folded in ascending order, which is episode
///   order at one lane.
pub fn rl_search_vec_with_stats(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    lanes: usize,
    engine: Arc<EvalEngine>,
) -> (SearchOutcome, VecSearchStats) {
    rl_search_vec_tapped(
        model,
        candidates,
        cfg,
        scfg,
        lanes,
        engine,
        &mut SearchTap::none(),
    )
}

/// [`rl_search_vec_with_stats`] with observation taps attached (streaming
/// episode export, reward-stall detection — see [`SearchTap`]). The taps
/// observe the identical episode stream; the search result does not
/// depend on them.
pub fn rl_search_vec_tapped(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    lanes: usize,
    engine: Arc<EvalEngine>,
    tap: &mut SearchTap<'_>,
) -> (SearchOutcome, VecSearchStats) {
    let _span = autohet_obs::trace::span("search.rl_vec");
    assert!(lanes >= 1, "need at least one lane");
    assert!(scfg.episodes >= 1, "need at least one episode");
    let t0 = Instant::now();
    let engine = noise_ready_engine(scfg, engine);
    let stats0 = engine.stats();
    let env = AutoHetEnv::with_shared_engine(model, candidates, *cfg, scfg.reward_weights, engine);
    let n = env.num_layers();
    let mut venv = VecEnv::new(&env, lanes);
    let mut agent = Ddpg::new(DdpgConfig {
        state_dim: 10,
        ..scfg.ddpg
    });
    let warmup = scfg.warmup_episodes.min(scfg.episodes / 3);
    let mut warmup_rng = SmallRng::seed_from_u64(scfg.ddpg.seed ^ 0x3A90);
    let mut noises: Vec<OuNoise> = (0..lanes)
        .map(|_| OuNoise::new(scfg.noise_sigma, scfg.noise_decay, scfg.noise_min))
        .collect();
    // Master sigma schedule: lane `l` of the group starting at `episode`
    // runs episode index `episode + l`, whose sigma under the sequential
    // driver is `cur_sigma` after that many decays.
    let mut cur_sigma = scfg.noise_sigma;

    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    let mut best_reward = f64::NEG_INFINITY;
    let mut history = Vec::with_capacity(scfg.episodes);
    let mut timing = SearchTiming::default();
    let mut group_occupancy = Vec::with_capacity(scfg.episodes.div_ceil(lanes));
    // Scratch reused across groups.
    let mut flat_states = Vec::with_capacity(lanes * 10);
    let mut mus = Vec::with_capacity(lanes);
    let mut acts = Vec::with_capacity(lanes);

    let mut episode = 0;
    while episode < scfg.episodes {
        let _g_span = autohet_obs::trace::span("search.group");
        let group_stats = env.engine().stats();
        let active = lanes.min(scfg.episodes - episode);
        // Lanes `0..warm_lanes` are still in warm-up (episode index below
        // the warm-up horizon); since groups advance episodes contiguously
        // the warm-up lanes always form a prefix.
        let warm_lanes = warmup.saturating_sub(episode).min(active);

        // ---- Decision stage: one batched actor pass per layer step.
        let ta = Instant::now();
        for noise in noises.iter_mut().take(active) {
            noise.reset_with_sigma(cur_sigma);
            cur_sigma = (cur_sigma * scfg.noise_decay).max(scfg.noise_min);
        }
        venv.begin(active);
        for k in 0..n {
            venv.observe_step(k, &mut flat_states);
            if warm_lanes == 0 {
                agent.act_noisy_batch(&flat_states, &mut noises[..active], &mut acts);
            } else {
                // Mixed group: actor lanes still share one batched pass,
                // warm-up lanes draw uniform actions; RNG order (warm-up
                // stream, then agent stream per actor lane ascending) is
                // the sequential order at one lane.
                acts.clear();
                if warm_lanes < active {
                    mus.clear();
                    mus.extend_from_slice(
                        agent.act_batch(&flat_states[warm_lanes * 10..], active - warm_lanes),
                    );
                }
                for l in 0..active {
                    let a = if l < warm_lanes {
                        warmup_rng.gen::<f64>()
                    } else {
                        (mus[l - warm_lanes] + agent.noise_sample(&mut noises[l])).clamp(0.0, 1.0)
                    };
                    acts.push(a);
                }
            }
            venv.apply_step(k, &acts);
        }
        timing.agent += ta.elapsed();

        // ---- Hardware feedback: fan the group out over the worker pool.
        let ts = Instant::now();
        let episodes_done = venv.finish();
        // The noise oracle's memoized slices are pure functions of
        // (layer, shape), so folding the penalty here — instead of inside
        // the evaluation fan-out — preserves the lanes == 1 bit-identity;
        // it happens before the cache window closes because the oracle's
        // internal `evaluate` call lands in the episode's counters under
        // the sequential driver too.
        let rewards: Vec<f64> = episodes_done
            .iter()
            .map(|ep| penalized_reward(scfg, &env, &ep.strategy, ep.reward))
            .collect();
        timing.simulator += ts.elapsed();

        // One cache window per group: the decision stage never touches the
        // engine, so at one lane this is the sequential per-episode window.
        let hit = env.engine().stats().since(&group_stats).combined_hit_rate();

        // ---- Learning stage: ingest lanes in order, then train per group.
        let ta = Instant::now();
        for (l, ep) in episodes_done.into_iter().enumerate() {
            let reward = rewards[l];
            history.push(EpisodeRecord {
                episode: episode + l,
                rue: ep.report.rue(),
                reward,
                utilization: ep.report.utilization,
                energy_nj: ep.report.energy_nj(),
                cache_hit_rate: hit,
            });
            tap.feed(history.last().expect("just pushed"));
            if reward > best_reward {
                best_reward = reward;
                best = Some((ep.strategy, ep.report));
            }
            let mut states = ep.states;
            for k in 0..n {
                agent.remember(Experience {
                    state: std::mem::take(&mut states[k]),
                    next_state: states[k + 1].clone(),
                    action: ep.actions[k],
                    reward,
                    done: k + 1 == n,
                });
            }
        }
        for _ in 0..scfg.train_steps {
            agent.train_step();
        }
        timing.agent += ta.elapsed();

        group_occupancy.push(active as f64 / lanes as f64);
        episode += active;
    }

    timing.total = t0.elapsed();
    timing.cache = env.engine().stats().since(&stats0);
    let groups = group_occupancy.len();
    let mean_occupancy = group_occupancy.iter().sum::<f64>() / groups.max(1) as f64;
    let secs = timing.total.as_secs_f64();
    let stats = VecSearchStats {
        lanes,
        groups,
        episodes: scfg.episodes,
        episodes_per_sec: if secs > 0.0 {
            scfg.episodes as f64 / secs
        } else {
            0.0
        },
        group_occupancy,
        mean_occupancy,
    };
    let (best_strategy, best_report) = best.expect("episodes >= 1");
    (
        SearchOutcome {
            best_strategy,
            best_report,
            history,
            timing,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homogeneous::best_homogeneous;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick_cfg(seed: u64, episodes: usize) -> RlSearchConfig {
        RlSearchConfig {
            episodes,
            ddpg: DdpgConfig {
                seed,
                batch: 32,
                hidden: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn search_beats_best_homogeneous_on_micro_cnn() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        let outcome = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(1, 60));
        let (_, homo) = best_homogeneous(&m, &AccelConfig::default());
        assert!(
            outcome.best_rue() >= homo.rue(),
            "rl {} vs best homo {}",
            outcome.best_rue(),
            homo.rue()
        );
        assert_eq!(outcome.best_strategy.len(), m.layers.len());
        assert_eq!(outcome.history.len(), 60);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let a = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(5, 12));
        let b = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(5, 12));
        assert_eq!(a.best_strategy, b.best_strategy);
        let ra: Vec<f64> = a.history.iter().map(|h| h.rue).collect();
        let rb: Vec<f64> = b.history.iter().map(|h| h.rue).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn best_rue_is_max_over_history() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let outcome = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(2, 20));
        let hist_max = outcome
            .history
            .iter()
            .map(|h| h.rue)
            .fold(f64::MIN, f64::max);
        assert!((outcome.best_rue() - hist_max).abs() < 1e-12);
    }

    #[test]
    fn convergence_helpers_are_consistent() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let outcome = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(9, 25));
        let running = outcome.rue_running_best();
        assert_eq!(running.len(), 25);
        assert!(running.windows(2).all(|w| w[1] >= w[0]));
        assert!((running.last().unwrap() - outcome.best_rue()).abs() < 1e-15);
        let e2b = outcome.episodes_to_best();
        assert!(e2b < 25);
        assert!((outcome.history[e2b].rue - outcome.best_rue()).abs() < 1e-15);
        let ma = outcome.rue_moving_average(5);
        assert_eq!(ma.len(), 25);
        assert!((ma[0] - outcome.history[0].rue).abs() < 1e-15);
    }

    #[test]
    fn timing_buckets_are_populated() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let outcome = rl_search(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(3, 5));
        assert!(outcome.timing.total >= outcome.timing.simulator);
        assert!(outcome.timing.total.as_nanos() > 0);
        let f = outcome.timing.simulator_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn warm_cache_avoids_recomputing_layer_slices() {
        // The tentpole's measurable claim: a 60-episode search touches
        // 60 × L layer slices, but only L × C distinct (layer, shape)
        // pairs exist — everything past the first visit is a cache hit.
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default().with_tile_sharing();
        let outcome = rl_search(&m, &cands, &cfg, &quick_cfg(1, 60));
        let cache = outcome.timing.cache;
        assert!(cache.layer_hits > 0, "no cache hits recorded");
        let pairs = (m.layers.len() * cands.len()) as u64;
        assert!(
            cache.layer_misses <= pairs,
            "layer misses {} exceed the {pairs} distinct (layer, shape) pairs",
            cache.layer_misses
        );
        let episodes_times_layers = (60 * m.layers.len()) as u64;
        assert!(
            cache.layer_misses < episodes_times_layers,
            "warm cache must compute fewer slices than episodes × layers"
        );
        assert!((0.0..=1.0).contains(&cache.layer_hit_rate()));
        assert!((0.0..=1.0).contains(&cache.strategy_hit_rate()));
        // Every full composition corresponds to a strategy-cache miss.
        assert!(cache.full_evaluations() <= 60 + 1); // episodes + reward reference

        // Per-episode hit rates are well-formed, and once the distinct
        // (layer, shape) pairs are all cached, episodes run mostly hot.
        assert!(outcome
            .history
            .iter()
            .all(|h| (0.0..=1.0).contains(&h.cache_hit_rate)));
        let last = outcome.history.last().unwrap();
        assert!(
            last.cache_hit_rate > 0.5,
            "late episodes should be cache-hot, got {}",
            last.cache_hit_rate
        );
    }

    #[test]
    fn shared_engine_does_not_change_the_outcome() {
        // Warm engine vs cold engine: cached feedback is bit-identical,
        // so the search trajectory cannot depend on cache state.
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let cold = rl_search(&m, &cands, &cfg, &quick_cfg(5, 12));
        let engine = Arc::new(EvalEngine::new(m.clone(), cfg));
        // Pre-warm with unrelated evaluations.
        for (i, &c) in cands.iter().enumerate() {
            let mut s = vec![cands[0]; m.layers.len()];
            s[i % m.layers.len()] = c;
            engine.evaluate(&s);
        }
        let warm = rl_search_with_engine(&m, &cands, &cfg, &quick_cfg(5, 12), engine);
        assert_eq!(cold.best_strategy, warm.best_strategy);
        assert_eq!(cold.best_report, warm.best_report);
        let ra: Vec<f64> = cold.history.iter().map(|h| h.rue).collect();
        let rb: Vec<f64> = warm.history.iter().map(|h| h.rue).collect();
        assert_eq!(ra, rb);
    }

    fn outcome_bits(o: &SearchOutcome) -> Vec<(usize, u64, u64, u64, u64, u64)> {
        o.history
            .iter()
            .map(|h| {
                (
                    h.episode,
                    h.rue.to_bits(),
                    h.reward.to_bits(),
                    h.utilization.to_bits(),
                    h.energy_nj.to_bits(),
                    h.cache_hit_rate.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn vec_search_single_lane_is_bit_identical_to_sequential() {
        // The tentpole's N=1 identity, across the warm-up boundary
        // (warmup = min(60, 24/3) = 8 < 24 episodes).
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        for seed in [0, 7, 42] {
            let seq = rl_search(&m, &cands, &cfg, &quick_cfg(seed, 24));
            let vec1 = rl_search_vec(&m, &cands, &cfg, &quick_cfg(seed, 24), 1);
            assert_eq!(outcome_bits(&seq), outcome_bits(&vec1), "seed {seed}");
            assert_eq!(seq.best_strategy, vec1.best_strategy);
            assert_eq!(seq.best_report, vec1.best_report);
        }
    }

    #[test]
    fn vec_search_multi_lane_is_seed_reproducible() {
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let a = rl_search_vec(&m, &cands, &cfg, &quick_cfg(11, 25), 4);
        let b = rl_search_vec(&m, &cands, &cfg, &quick_cfg(11, 25), 4);
        assert_eq!(outcome_bits(&a), outcome_bits(&b));
        assert_eq!(a.best_strategy, b.best_strategy);
        assert_eq!(a.best_report, b.best_report);
    }

    #[test]
    fn vec_search_stats_are_well_formed() {
        // 25 episodes over 4 lanes: 7 groups, the last one quarter-full.
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let engine = Arc::new(EvalEngine::new(m.clone(), cfg));
        let (o, s) = rl_search_vec_with_stats(&m, &cands, &cfg, &quick_cfg(3, 25), 4, engine);
        assert_eq!(o.history.len(), 25);
        assert_eq!(
            o.history.iter().map(|h| h.episode).collect::<Vec<_>>(),
            (0..25).collect::<Vec<_>>()
        );
        assert_eq!(s.lanes, 4);
        assert_eq!(s.episodes, 25);
        assert_eq!(s.groups, 7);
        assert_eq!(s.group_occupancy.len(), 7);
        assert!(s.group_occupancy[..6].iter().all(|&o| o == 1.0));
        assert_eq!(s.group_occupancy[6], 0.25);
        assert!((s.mean_occupancy - 6.25 / 7.0).abs() < 1e-12);
        assert!(s.episodes_per_sec > 0.0);
    }

    #[test]
    fn vec_search_multi_lane_still_finds_good_strategies() {
        // Fewer gradient updates per episode must not break the search's
        // headline claim on the micro model.
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        let outcome = rl_search_vec(&m, &paper_hybrid_candidates(), &cfg, &quick_cfg(1, 60), 8);
        let (_, homo) = best_homogeneous(&m, &AccelConfig::default());
        assert!(
            outcome.best_rue() >= homo.rue(),
            "vec rl {} vs best homo {}",
            outcome.best_rue(),
            homo.rue()
        );
    }

    #[test]
    fn noise_penalty_deflates_rewards_without_changing_exploration() {
        // Warm-up actions are reward-independent, so the penalized search
        // visits the same early configurations but records strictly
        // smaller rewards for them; the whole run stays deterministic.
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let base = rl_search(&m, &cands, &cfg, &quick_cfg(5, 12));
        let pcfg = RlSearchConfig {
            noise_penalty: 5.0,
            ..quick_cfg(5, 12)
        };
        let pen = rl_search(&m, &cands, &cfg, &pcfg);
        let warmup = pcfg.warmup_episodes.min(pcfg.episodes / 3);
        for e in 0..warmup {
            assert_eq!(base.history[e].rue, pen.history[e].rue, "episode {e}");
            assert!(
                pen.history[e].reward < base.history[e].reward,
                "episode {e}: {} !< {}",
                pen.history[e].reward,
                base.history[e].reward
            );
        }
        let again = rl_search(&m, &cands, &cfg, &pcfg);
        assert_eq!(outcome_bits(&pen), outcome_bits(&again));
    }

    #[test]
    fn noise_penalized_vec_search_single_lane_is_bit_identical() {
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let scfg = RlSearchConfig {
            noise_penalty: 2.0,
            ..quick_cfg(7, 18)
        };
        let seq = rl_search(&m, &cands, &cfg, &scfg);
        let vec1 = rl_search_vec(&m, &cands, &cfg, &scfg, 1);
        assert_eq!(outcome_bits(&seq), outcome_bits(&vec1));
        assert_eq!(seq.best_strategy, vec1.best_strategy);
        assert_eq!(seq.best_report, vec1.best_report);
    }

    #[test]
    fn tapped_search_is_bit_identical_and_streams_every_episode() {
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let scfg = quick_cfg(13, 20);
        let engine = || Arc::new(EvalEngine::new(m.clone(), cfg));
        let (plain, plain_stats) = rl_search_vec_with_stats(&m, &cands, &cfg, &scfg, 4, engine());
        let sink = autohet_obs::MemorySink::new();
        let mut stream = crate::telemetry::EpisodeStream::new("ep", Box::new(sink.clone()));
        let mut stall = crate::telemetry::StallDetector::new(5, 1e-12);
        let mut tap = SearchTap {
            episodes: Some(&mut stream),
            stall: Some(&mut stall),
        };
        let (tapped, tapped_stats) =
            rl_search_vec_tapped(&m, &cands, &cfg, &scfg, 4, engine(), &mut tap);
        // Observation must not perturb the search.
        assert_eq!(outcome_bits(&plain), outcome_bits(&tapped));
        assert_eq!(plain.best_strategy, tapped.best_strategy);
        assert_eq!(plain_stats.group_occupancy, tapped_stats.group_occupancy);
        // One streamed row per episode, in episode order.
        stream.flush();
        assert_eq!(stream.rows_written(), 20);
        let lines = sink.lines();
        assert_eq!(lines.len(), 20);
        assert!(lines[0].starts_with("{\"episode\":0,"));
        assert!(lines[19].starts_with("{\"episode\":19,"));
        // The stall detector saw the full reward trajectory.
        let best = tapped
            .history
            .iter()
            .map(|h| h.reward)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(stall.best_reward(), best);
    }

    #[test]
    fn multi_seed_matches_individual_searches() {
        let m = zoo::micro_cnn();
        let cands = paper_hybrid_candidates();
        let cfg = AccelConfig::default();
        let outcomes = rl_search_multi_seed(&m, &cands, &cfg, &quick_cfg(0, 10), &[5, 9]);
        assert_eq!(outcomes.len(), 2);
        let a = rl_search(&m, &cands, &cfg, &quick_cfg(5, 10));
        let b = rl_search(&m, &cands, &cfg, &quick_cfg(9, 10));
        assert_eq!(outcomes[0].best_strategy, a.best_strategy);
        assert_eq!(outcomes[1].best_strategy, b.best_strategy);
        assert_eq!(outcomes[0].best_report, a.best_report);
        assert_eq!(outcomes[1].best_report, b.best_report);
    }
}
