//! Greedy layer-wise comparators.
//!
//! Zhu et al. (the paper's related work [29]) assign mixed crossbar sizes
//! per layer with a greedy utilization objective; the paper contrasts this
//! with AutoHet's joint utilization/energy target. Two greedy drivers:
//!
//! - [`greedy_utilization`]: maximize each layer's Eq. 4 utilization
//!   (ties broken toward the larger crossbar — fewer peripherals).
//! - [`greedy_layerwise_rue`]: maximize a per-layer RUE proxy
//!   (utilization over that layer's standalone energy) — greedy on the
//!   paper's own metric, but blind to cross-layer allocation effects,
//!   which is exactly what the RL search can exploit.

use crate::search::rl::SearchTiming;
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::energy::{layer_energy, static_power};
use autohet_xbar::latency::layer_latency_ns;
use autohet_xbar::utilization::footprint;
use autohet_xbar::XbarShape;
use std::time::Instant;

/// Result of a greedy pass: the chosen strategy, its evaluation, and the
/// stage timing (including the evaluation-cache delta, which shows
/// whether the single closing `evaluate` was served from a shared
/// engine's cache).
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    pub strategy: Vec<XbarShape>,
    pub report: EvalReport,
    /// Stage timing and the evaluation-cache delta of this pass.
    pub timing: SearchTiming,
}

impl GreedyOutcome {
    /// Raw RUE of the chosen strategy.
    pub fn rue(&self) -> f64 {
        self.report.rue()
    }
}

/// Pick each layer's candidate by Eq. 4 utilization.
pub fn greedy_utilization(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
) -> GreedyOutcome {
    let engine = EvalEngine::new(model.clone(), *cfg);
    greedy_utilization_with_engine(&engine, candidates)
}

/// [`greedy_utilization`] on an existing (possibly shared) memoized engine.
pub fn greedy_utilization_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
) -> GreedyOutcome {
    assert!(!candidates.is_empty());
    let _span = autohet_obs::trace::span("search.greedy_utilization");
    let t0 = Instant::now();
    let stats0 = engine.stats();
    let mut timing = SearchTiming::default();
    let ta = Instant::now();
    let strategy: Vec<XbarShape> = engine
        .model()
        .layers
        .iter()
        .map(|l| {
            *candidates
                .iter()
                .max_by(|a, b| {
                    let ua = footprint(l, **a).utilization();
                    let ub = footprint(l, **b).utilization();
                    ua.partial_cmp(&ub).unwrap().then(a.cells().cmp(&b.cells()))
                })
                .unwrap()
        })
        .collect();
    timing.agent = ta.elapsed();
    let ts = Instant::now();
    let report = engine.evaluate(&strategy);
    timing.simulator = ts.elapsed();
    timing.total = t0.elapsed();
    timing.cache = engine.stats().since(&stats0);
    GreedyOutcome {
        strategy,
        report,
        timing,
    }
}

/// Pick each layer's candidate by a standalone utilization/energy ratio.
pub fn greedy_layerwise_rue(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
) -> GreedyOutcome {
    let engine = EvalEngine::new(model.clone(), *cfg);
    greedy_layerwise_rue_with_engine(&engine, candidates)
}

/// [`greedy_layerwise_rue`] on an existing (possibly shared) memoized
/// engine.
pub fn greedy_layerwise_rue_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
) -> GreedyOutcome {
    assert!(!candidates.is_empty());
    let _span = autohet_obs::trace::span("search.greedy_rue");
    let t0 = Instant::now();
    let stats0 = engine.stats();
    let mut timing = SearchTiming::default();
    let cfg = engine.config();
    let p = &cfg.cost;
    let ta = Instant::now();
    let strategy: Vec<XbarShape> = engine
        .model()
        .layers
        .iter()
        .map(|l| {
            *candidates
                .iter()
                .max_by(|a, b| {
                    let score = |shape: XbarShape| {
                        let fp = footprint(l, shape);
                        let tiles = fp.total_xbars().div_ceil(cfg.pes_per_tile as u64);
                        let alloc = tiles * cfg.pes_per_tile as u64;
                        let lat = layer_latency_ns(l, &fp, p);
                        let mut e = layer_energy(l, &fp, 0, 0.0, p);
                        e.leakage = static_power(alloc, shape, p) * lat * 1e-9;
                        fp.utilization_over(alloc) * 100.0 / e.total()
                    };
                    score(**a).partial_cmp(&score(**b)).unwrap()
                })
                .unwrap()
        })
        .collect();
    timing.agent = ta.elapsed();
    let ts = Instant::now();
    let report = engine.evaluate(&strategy);
    timing.simulator = ts.elapsed();
    timing.total = t0.elapsed();
    timing.cache = engine.stats().since(&stats0);
    GreedyOutcome {
        strategy,
        report,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_accel::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::{paper_hybrid_candidates, SQUARE_CANDIDATES};

    #[test]
    fn greedy_utilization_picks_perfect_fits() {
        // VGG16 L4 (128×128×3³) fits 36×32 at exactly 100% — the greedy
        // must find it among the hybrid candidates.
        let m = zoo::vgg16();
        let out = greedy_utilization(&m, &paper_hybrid_candidates(), &AccelConfig::default());
        // Both 36×32 and 72×64 fit this layer at exactly 100%; the tie
        // breaks toward the larger crossbar (fewer peripherals).
        let u = footprint(&m.layers[3], out.strategy[3]).utilization();
        assert!(
            (u - 1.0).abs() < 1e-12,
            "layer 4 fit {u} on {}",
            out.strategy[3]
        );
        assert!(out.strategy[3].is_rect());
    }

    #[test]
    fn greedy_utilization_beats_any_homogeneous_on_mapping_utilization() {
        let m = zoo::alexnet();
        let cfg = AccelConfig::default();
        let out = greedy_utilization(&m, SQUARE_CANDIDATES.as_ref(), &cfg);
        for s in SQUARE_CANDIDATES {
            let homo = evaluate(&m, &vec![s; m.layers.len()], &cfg);
            assert!(
                out.report.mapping_utilization >= homo.mapping_utilization - 1e-12,
                "greedy {} < homo {s} {}",
                out.report.mapping_utilization,
                homo.mapping_utilization
            );
        }
    }

    #[test]
    fn rue_greedy_outscores_utilization_greedy_on_rue() {
        // The utilization-greedy ignores energy entirely; optimizing the
        // per-layer ratio must not do worse on the global metric here.
        let m = zoo::vgg16();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let by_util = greedy_utilization(&m, &cands, &cfg);
        let by_rue = greedy_layerwise_rue(&m, &cands, &cfg);
        assert!(by_rue.rue() >= by_util.rue() * 0.99);
    }

    #[test]
    fn strategies_cover_all_layers() {
        let m = zoo::resnet152();
        let cfg = AccelConfig::default();
        let out = greedy_layerwise_rue(&m, &paper_hybrid_candidates(), &cfg);
        assert_eq!(out.strategy.len(), 156);
    }

    #[test]
    fn shared_engine_reuse_shows_in_the_cache_delta() {
        // Running the same greedy twice on one engine: the second pass's
        // closing evaluation must be a strategy-cache hit.
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m, AccelConfig::default());
        let first = greedy_utilization_with_engine(&engine, &paper_hybrid_candidates());
        assert_eq!(first.timing.cache.strategy_hits, 0);
        let second = greedy_utilization_with_engine(&engine, &paper_hybrid_candidates());
        assert_eq!(second.timing.cache.strategy_hits, 1);
        assert_eq!(first.strategy, second.strategy);
    }
}
