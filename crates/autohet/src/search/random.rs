//! Random-search baseline: sample uniform strategies, keep the best.
//!
//! Not in the paper, but the honest control for any learned search — the
//! RL agent has to beat this at an equal evaluation budget to demonstrate
//! it learned anything (the exhaustive oracle bounds both from above).

use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Evaluate `samples` uniform random strategies; return the best by RUE.
pub fn random_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    samples: usize,
    seed: u64,
) -> (Vec<XbarShape>, EvalReport) {
    let engine = EvalEngine::new(model.clone(), *cfg);
    random_search_with_engine(&engine, candidates, samples, seed)
}

/// [`random_search`] on an existing (possibly shared) memoized engine.
pub fn random_search_with_engine(
    engine: &EvalEngine,
    candidates: &[XbarShape],
    samples: usize,
    seed: u64,
) -> (Vec<XbarShape>, EvalReport) {
    assert!(samples >= 1 && !candidates.is_empty());
    let n = engine.model().layers.len();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let mut best: Option<(Vec<XbarShape>, EvalReport)> = None;
    for _ in 0..samples {
        let strategy: Vec<XbarShape> = (0..n)
            .map(|_| candidates[rng.gen_range(0..candidates.len())])
            .collect();
        let report = engine.evaluate_fresh(&strategy);
        if best.as_ref().map_or(true, |(_, b)| report.rue() > b.rue()) {
            best = Some((strategy, report));
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn finds_something_and_is_deterministic() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (s1, r1) = random_search(&m, &cands, &cfg, 20, 9);
        let (s2, r2) = random_search(&m, &cands, &cfg, 20, 9);
        assert_eq!(s1, s2);
        assert_eq!(r1.rue(), r2.rue());
        assert!(r1.rue() > 0.0);
    }

    #[test]
    fn more_samples_never_do_worse() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default();
        let cands = paper_hybrid_candidates();
        let (_, small) = random_search(&m, &cands, &cfg, 5, 4);
        let (_, large) = random_search(&m, &cands, &cfg, 50, 4);
        assert!(large.rue() >= small.rue());
    }
}
