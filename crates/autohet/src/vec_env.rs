//! Lockstep vectorized environments for the batched DDPG search.
//!
//! [`VecEnv`] steps `lanes` copies of one [`AutoHetEnv`] in lockstep: at
//! layer step `k` it stacks every active lane's 10-dim state into one
//! feature-major buffer (so the agent can run a single batched actor GEMM
//! across the group), applies the returned per-lane actions, and at the
//! end of a group fans the completed strategies out over the shared
//! [`par_map`](crate::par::par_map) pool against one memoized
//! `Arc<EvalEngine>`.
//!
//! Determinism contract: lanes are always visited in ascending order and
//! evaluation results come back in lane order, so a seeded driver that
//! consumes RNG per lane in the same ascending order is bit-reproducible
//! — and at one lane the whole apparatus reduces exactly to the
//! sequential per-episode loop (see DESIGN.md §10).

use crate::env::AutoHetEnv;
use autohet_accel::{EvalEngine, EvalReport};
use autohet_xbar::XbarShape;
use std::sync::Arc;

/// One completed lane episode, handed back by [`VecEnv::finish`] in lane
/// order. State buffers are moved out (not cloned) so the driver can feed
/// them straight into the replay pool.
#[derive(Debug, Clone)]
pub struct VecEpisode {
    /// Decoded per-layer crossbar assignment.
    pub strategy: Vec<XbarShape>,
    /// Hardware feedback for the full strategy.
    pub report: EvalReport,
    /// Normalized Eq. 2 reward shared by every step of the episode.
    pub reward: f64,
    /// Per-step states; index `n` is the terminal state (`n+1` entries).
    pub states: Vec<Vec<f64>>,
    /// Continuous per-layer actions (`n` entries).
    pub actions: Vec<f64>,
}

/// `lanes` lockstep copies of one environment over a shared engine.
#[derive(Debug, Clone)]
pub struct VecEnv {
    envs: Vec<AutoHetEnv>,
    active: usize,
    prev_a: Vec<f64>,
    prev_u: Vec<f64>,
    states: Vec<Vec<Vec<f64>>>,
    actions: Vec<Vec<f64>>,
}

impl VecEnv {
    /// Clone `env` into `lanes` lockstep copies. Clones share the
    /// `Arc<EvalEngine>` memo table, so concurrent end-of-group
    /// evaluations deduplicate work across lanes.
    pub fn new(env: &AutoHetEnv, lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        VecEnv {
            envs: vec![env.clone(); lanes],
            active: 0,
            prev_a: vec![0.0; lanes],
            prev_u: vec![0.0; lanes],
            states: vec![Vec::new(); lanes],
            actions: vec![Vec::new(); lanes],
        }
    }

    /// Total lane count.
    pub fn lanes(&self) -> usize {
        self.envs.len()
    }

    /// Lanes participating in the current group.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Steps per episode.
    pub fn num_layers(&self) -> usize {
        self.envs[0].num_layers()
    }

    /// The underlying (lane 0) environment.
    pub fn env(&self) -> &AutoHetEnv {
        &self.envs[0]
    }

    /// The shared evaluation engine.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        self.envs[0].engine()
    }

    /// Start a new lockstep group of `active ≤ lanes` episodes.
    pub fn begin(&mut self, active: usize) {
        assert!(active >= 1 && active <= self.lanes());
        self.active = active;
        for l in 0..active {
            self.prev_a[l] = 0.0;
            self.prev_u[l] = 0.0;
            self.states[l].clear();
            self.actions[l].clear();
        }
    }

    /// Stack the step-`k` states of all active lanes into `out`
    /// (batch-major `active × 10`), recording each lane's copy for the
    /// replay pool. Lanes are visited in ascending order.
    pub fn observe_step(&mut self, k: usize, out: &mut Vec<f64>) {
        out.clear();
        for l in 0..self.active {
            let s = self.envs[l].state(k, self.prev_a[l], self.prev_u[l]);
            out.extend_from_slice(&s);
            self.states[l].push(s);
        }
    }

    /// Apply one action per active lane at step `k`, updating the dynamic
    /// state features (previous action, Eq. 4 utilization).
    pub fn apply_step(&mut self, k: usize, actions: &[f64]) {
        assert_eq!(actions.len(), self.active);
        for (l, &a) in actions.iter().enumerate() {
            self.prev_a[l] = a;
            self.prev_u[l] = self.envs[l].layer_utilization(k, a);
            self.actions[l].push(a);
        }
    }

    /// Close the group: record terminal states, decode every lane's
    /// strategy, fan the evaluations out over [`par_map`]
    /// (bit-identical to serial evaluation — the engine memoizes, the
    /// pool preserves order), and hand back the completed episodes in
    /// lane order with their state/action buffers moved out.
    ///
    /// [`par_map`]: crate::par::par_map
    pub fn finish(&mut self) -> Vec<VecEpisode> {
        let n = self.num_layers();
        for l in 0..self.active {
            assert_eq!(self.actions[l].len(), n, "finish before all steps");
            let s = self.envs[l].state(n - 1, self.prev_a[l], self.prev_u[l]);
            self.states[l].push(s);
        }
        let strategies: Vec<Vec<XbarShape>> = (0..self.active)
            .map(|l| self.envs[l].decode(&self.actions[l]))
            .collect();
        let env = &self.envs[0];
        let reports = if self.active == 1 {
            vec![env.evaluate_strategy(&strategies[0])]
        } else {
            crate::par::par_map(&strategies, |s| env.evaluate_strategy(s))
        };
        strategies
            .into_iter()
            .zip(reports)
            .enumerate()
            .map(|(l, (strategy, report))| VecEpisode {
                reward: env.reward(&report),
                strategy,
                report,
                states: std::mem::take(&mut self.states[l]),
                actions: std::mem::take(&mut self.actions[l]),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn env() -> AutoHetEnv {
        AutoHetEnv::new(
            &zoo::micro_cnn(),
            &paper_hybrid_candidates(),
            AccelConfig::default(),
        )
    }

    fn run_group(
        v: &mut VecEnv,
        active: usize,
        act: impl Fn(usize, usize) -> f64,
    ) -> Vec<VecEpisode> {
        let n = v.num_layers();
        let mut flat = Vec::new();
        let mut acts = Vec::new();
        v.begin(active);
        for k in 0..n {
            v.observe_step(k, &mut flat);
            assert_eq!(flat.len(), active * 10);
            acts.clear();
            acts.extend((0..active).map(|l| act(l, k)));
            v.apply_step(k, &acts);
        }
        v.finish()
    }

    #[test]
    fn lanes_share_one_engine() {
        let e = env();
        let v = VecEnv::new(&e, 4);
        assert!(Arc::ptr_eq(v.engine(), e.engine()));
        assert_eq!(v.lanes(), 4);
    }

    #[test]
    fn single_lane_matches_sequential_walk() {
        // One lane through VecEnv == the plain sequential episode loop.
        let e = env();
        let n = e.num_layers();
        let action = |_: usize, k: usize| (k as f64 * 0.31) % 1.0;

        let mut prev_a = 0.0;
        let mut prev_u = 0.0;
        let mut seq_states = Vec::new();
        let mut seq_actions = Vec::new();
        for k in 0..n {
            seq_states.push(e.state(k, prev_a, prev_u));
            let a = action(0, k);
            prev_a = a;
            prev_u = e.layer_utilization(k, a);
            seq_actions.push(a);
        }
        seq_states.push(e.state(n - 1, prev_a, prev_u));
        let seq_strategy = e.decode(&seq_actions);
        let seq_report = e.evaluate_strategy(&seq_strategy);

        let mut v = VecEnv::new(&e, 1);
        let eps = run_group(&mut v, 1, action);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].states, seq_states);
        assert_eq!(eps[0].actions, seq_actions);
        assert_eq!(eps[0].strategy, seq_strategy);
        assert_eq!(eps[0].report, seq_report);
        assert_eq!(eps[0].reward.to_bits(), e.reward(&seq_report).to_bits());
    }

    #[test]
    fn lanes_come_back_in_order_and_match_sequential_evaluation() {
        let e = env();
        let mut v = VecEnv::new(&e, 3);
        let act = |l: usize, k: usize| ((l + 1) as f64 * 0.2 + k as f64 * 0.1) % 1.0;
        let eps = run_group(&mut v, 3, act);
        assert_eq!(eps.len(), 3);
        for (l, ep) in eps.iter().enumerate() {
            let n = e.num_layers();
            assert_eq!(ep.states.len(), n + 1);
            assert_eq!(ep.actions.len(), n);
            let expected: Vec<f64> = (0..n).map(|k| act(l, k)).collect();
            assert_eq!(ep.actions, expected);
            assert_eq!(ep.report, e.evaluate_strategy(&ep.strategy));
            assert_eq!(ep.reward.to_bits(), e.reward(&ep.report).to_bits());
        }
    }

    #[test]
    fn partial_groups_and_reuse() {
        // A VecEnv can run a smaller trailing group and be reused.
        let e = env();
        let mut v = VecEnv::new(&e, 4);
        let a = run_group(&mut v, 4, |l, k| (l as f64 * 0.17 + k as f64 * 0.05) % 1.0);
        assert_eq!(a.len(), 4);
        let b = run_group(&mut v, 2, |l, k| (l as f64 * 0.17 + k as f64 * 0.05) % 1.0);
        assert_eq!(b.len(), 2);
        // Same action schedule ⇒ same outcome for the matching lanes.
        for (x, y) in a.iter().take(2).zip(&b) {
            assert_eq!(x.report, y.report);
            assert_eq!(x.states, y.states);
        }
    }
}
