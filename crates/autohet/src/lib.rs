//! # AutoHet — automated heterogeneous ReRAM-based accelerator search
//!
//! A from-scratch Rust reproduction of *AutoHet: An Automated Heterogeneous
//! ReRAM-Based Accelerator for DNN Inference* (ICPP '24). AutoHet assigns
//! each DNN layer its own crossbar shape — square or rectangle — using a
//! DDPG reinforcement-learning agent whose reward balances crossbar
//! utilization against energy, and packs multiple layers into shared tiles
//! (Algorithm 1) to eliminate allocation waste.
//!
//! ## Quick start
//!
//! ```
//! use autohet::prelude::*;
//!
//! let model = autohet_dnn::zoo::micro_cnn();
//! let cfg = AccelConfig::default().with_tile_sharing();
//! let search = RlSearchConfig { episodes: 40, ..RlSearchConfig::default() };
//! let outcome = rl_search(&model, &paper_hybrid_candidates(), &cfg, &search);
//! let best_homo = best_homogeneous(&model, &AccelConfig::default()).1;
//! assert!(outcome.best_report.rue() >= best_homo.rue() * 0.9);
//! ```
//!
//! ## Layout
//!
//! - [`env`]: the RL environment — the paper's Eq. 1 state vector and
//!   Eq. 2 reward over hardware feedback.
//! - [`search`]: strategy search drivers — [`search::rl`] (the paper),
//!   plus greedy / random / exhaustive comparators.
//! - [`vec_env`]: lockstep vectorized environments behind
//!   [`search::rl::rl_search_vec`] — N episodes share one batched actor
//!   pass and fan evaluations out over the worker pool.
//! - [`homogeneous`]: the five fixed-size baselines and Fig. 3's manual
//!   heterogeneous configuration.
//! - [`ablation`]: the §4.3 Base / +He / +Hy / All study.
//! - [`sensitivity`]: the §4.4 sweeps (SXB:RXB ratio, candidate count,
//!   PEs per tile).
//! - [`par`]: the scoped-thread fan-out behind the parallel sweep
//!   drivers; every search reuses one memoized
//!   [`EvalEngine`](autohet_accel::EvalEngine).
//! - [`robust`]: NSGA-II multi-objective search producing energy ×
//!   latency × noise-robustness Pareto fronts over the device-variation
//!   oracle (DESIGN.md §11).
//! - [`studies`]: beyond-paper ablations, including
//!   [`studies::serving_study`] — searched strategies behind the
//!   `autohet-serve` multi-tenant queueing simulator.
//! - [`telemetry`]: bridges from search histories to the `autohet-obs`
//!   observability substrate (episode time series, metric mirroring).

pub mod ablation;
pub mod env;
pub mod homogeneous;
pub mod multi_model;
pub mod par;
pub mod pareto;
pub mod persist;
pub mod robust;
pub mod search;
pub mod sensitivity;
pub mod studies;
pub mod telemetry;
pub mod vec_env;

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::ablation::{run_ablation, AblationStage};
    pub use crate::env::AutoHetEnv;
    pub use crate::homogeneous::{
        best_homogeneous, best_homogeneous_with_engine, homogeneous_reports,
        homogeneous_reports_with_engine, manual_hetero_vgg16,
    };
    pub use crate::par::par_map;
    pub use crate::robust::{
        nsga_search, nsga_search_with_engine, GenerationStat, NsgaConfig, RobustPoint,
        RobustSearchOutcome,
    };
    pub use crate::search::annealing::{
        annealing_search, annealing_search_with_engine, AnnealingConfig, AnnealingOutcome,
    };
    pub use crate::search::dqn::{
        dqn_search, dqn_search_with_engine, DqnSearchConfig, DqnSearchOutcome,
    };
    pub use crate::search::exhaustive::{
        exhaustive_search, exhaustive_search_serial, exhaustive_search_with_engine,
    };
    pub use crate::search::greedy::{
        greedy_layerwise_rue, greedy_layerwise_rue_with_engine, greedy_utilization,
        greedy_utilization_with_engine, GreedyOutcome,
    };
    pub use crate::search::random::{random_search, random_search_with_engine};
    pub use crate::search::rl::{
        rl_search, rl_search_multi_seed, rl_search_vec, rl_search_vec_multi_seed,
        rl_search_vec_tapped, rl_search_vec_with_engine, rl_search_vec_with_stats,
        rl_search_with_engine, EpisodeRecord, RlSearchConfig, SearchOutcome, SearchTap,
        SearchTiming, VecSearchStats,
    };
    pub use crate::studies::{
        fault_campaign, lifetime_campaign, robustness_study, search_throughput_study,
        serving_study, FaultCampaignConfig, FaultCampaignReport, FaultCampaignRow,
        LifetimeCampaignConfig, LifetimeCampaignReport, LifetimeRow, RobustnessStudyConfig,
        RobustnessStudyReport, RobustnessStudyRow, ThroughputRow,
    };
    pub use crate::telemetry::{
        episode_series, front_series, publish_episode_history, publish_robust_search,
        publish_vec_search, vec_occupancy_series, EpisodeStream, StallDetector, EPISODE_COLUMNS,
        FRONT_COLUMNS, REWARD_STALL_RULE,
    };
    pub use crate::vec_env::{VecEnv, VecEpisode};
    pub use autohet_accel::{
        evaluate, AccelConfig, DegradationMode, DegradationState, DegradedEvalReport,
        DriftEvalConfig, EngineStats, EvalEngine, EvalReport, FaultedEvalReport, NoiseEvalConfig,
        NoisyEvalReport, RecoveryPolicy, RepairPolicy, RobustnessReport,
    };
    pub use autohet_serve::{
        alert_timeline, jain_index, publish_shard_report, run_serving, run_serving_parallel,
        run_sharded, run_sharded_reference, run_sharded_threaded, shard_alert_timeline,
        shard_window_series, AutoscaleSpec, BurstSpec, Deployment, FailureSpec, HealthEvent,
        HealthEventKind, HealthSpec, LatencyHistogram, RampSpec, ScaleEvent, SelectMode,
        ServeAlertConfig, ServeConfig, ServingReport, ShardConfig, ShardServingReport, StealSpec,
        SwapEvent, SwapSpec, TenantSpec, TenantStats, Workload,
    };
    pub use autohet_xbar::fault::{FaultMap, FaultRates};
    pub use autohet_xbar::geometry::{
        all_candidates, mixed_candidates, paper_hybrid_candidates, RECT_CANDIDATES,
        SQUARE_CANDIDATES,
    };
    pub use autohet_xbar::DriftModel;
    pub use autohet_xbar::{VariationModel, XbarShape};
}

pub use prelude::*;
