//! Strategy persistence.
//!
//! §4.5 of the paper: "the RL training is executed once but the decision
//! result is used many times" — which requires saving that decision. This
//! module serializes a per-layer crossbar strategy to a small, stable,
//! human-readable text format:
//!
//! ```text
//! # autohet-strategy v1
//! # model: VGG16 (16 layers)
//! L1 576x512
//! L2 72x64
//! ...
//! ```
//!
//! Plain text (not JSON) keeps the offline dependency set to the
//! whitelisted crates and makes strategies diffable in code review.

use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Format version tag written to every file.
const HEADER: &str = "# autohet-strategy v1";

/// Serialize a strategy (with an optional model note).
///
/// ```
/// use autohet::persist::{strategy_from_str, strategy_to_string};
/// use autohet::prelude::paper_hybrid_candidates;
///
/// let strategy = paper_hybrid_candidates();
/// let text = strategy_to_string(&strategy, "demo");
/// assert_eq!(strategy_from_str(&text).unwrap(), strategy);
/// ```
pub fn strategy_to_string(strategy: &[XbarShape], model_note: &str) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    if !model_note.is_empty() {
        let _ = writeln!(out, "# model: {model_note}");
    }
    for (i, s) in strategy.iter().enumerate() {
        let _ = writeln!(out, "L{} {}", i + 1, s);
    }
    out
}

/// Errors from parsing a strategy file.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong version header.
    BadHeader,
    /// Line did not match `L<k> <rows>x<cols>`.
    BadLine(String),
    /// Layer indices were not 1..=N in order.
    BadIndex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing '{HEADER}' header"),
            ParseError::BadLine(l) => write!(f, "unparseable line: {l}"),
            ParseError::BadIndex(l) => write!(f, "out-of-order layer index: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a strategy string (inverse of [`strategy_to_string`]).
pub fn strategy_from_str(text: &str) -> Result<Vec<XbarShape>, ParseError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(ParseError::BadHeader);
    }
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, shape) = line
            .split_once(' ')
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        let idx: usize = tag
            .strip_prefix('L')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        if idx != out.len() + 1 {
            return Err(ParseError::BadIndex(line.into()));
        }
        let (r, c) = shape
            .split_once('x')
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        let rows: u32 = r
            .trim()
            .parse()
            .map_err(|_| ParseError::BadLine(line.into()))?;
        let cols: u32 = c
            .trim()
            .parse()
            .map_err(|_| ParseError::BadLine(line.into()))?;
        if rows == 0 || cols == 0 {
            return Err(ParseError::BadLine(line.into()));
        }
        out.push(XbarShape::new(rows, cols));
    }
    Ok(out)
}

/// Write a strategy to a file.
pub fn save_strategy(path: &Path, strategy: &[XbarShape], model_note: &str) -> io::Result<()> {
    fs::write(path, strategy_to_string(strategy, model_note))
}

/// Read a strategy from a file.
pub fn load_strategy(path: &Path) -> io::Result<Vec<XbarShape>> {
    let text = fs::read_to_string(path)?;
    strategy_from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read a strategy from a file and validate it against `model`: the file
/// must assign exactly one shape per mappable layer. Guards the
/// search-once/deploy-many workflow against loading a strategy that was
/// searched for a different network.
pub fn load_strategy_for(model: &Model, path: &Path) -> io::Result<Vec<XbarShape>> {
    let strategy = load_strategy(path)?;
    if strategy.len() != model.layers.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "strategy in {} has {} layers but model '{}' has {}",
                path.display(),
                strategy.len(),
                model.name,
                model.layers.len()
            ),
        ));
    }
    Ok(strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn sample() -> Vec<XbarShape> {
        paper_hybrid_candidates()
    }

    #[test]
    fn round_trips_through_string() {
        let s = sample();
        let text = strategy_to_string(&s, "demo (5 layers)");
        assert_eq!(strategy_from_str(&text).unwrap(), s);
    }

    #[test]
    fn round_trips_through_file() {
        let s = sample();
        let path = std::env::temp_dir().join("autohet_strategy_test.txt");
        save_strategy(&path, &s, "demo").unwrap();
        assert_eq!(load_strategy(&path).unwrap(), s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(strategy_from_str("L1 32x32\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_garbage_lines() {
        let text = format!("{HEADER}\nL1 32by32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadLine(_))
        ));
        let text = format!("{HEADER}\nL1 0x32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadLine(_))
        ));
    }

    #[test]
    fn rejects_out_of_order_indices() {
        let text = format!("{HEADER}\nL2 32x32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadIndex(_))
        ));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("{HEADER}\n# a note\n\nL1 36x32\n# more\nL2 72x64\n");
        let s = strategy_from_str(&text).unwrap();
        assert_eq!(s, vec![XbarShape::new(36, 32), XbarShape::new(72, 64)]);
    }

    #[test]
    fn empty_strategy_round_trips() {
        let text = strategy_to_string(&[], "");
        assert_eq!(strategy_from_str(&text).unwrap(), vec![]);
    }

    #[test]
    fn load_strategy_for_accepts_matching_layer_count() {
        let m = autohet_dnn::zoo::lenet5();
        let s = vec![XbarShape::new(72, 64); m.layers.len()];
        let path = std::env::temp_dir().join("autohet_strategy_for_ok.txt");
        save_strategy(&path, &s, &m.name).unwrap();
        assert_eq!(load_strategy_for(&m, &path).unwrap(), s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_strategy_for_rejects_wrong_layer_count() {
        let lenet = autohet_dnn::zoo::lenet5();
        let alexnet = autohet_dnn::zoo::alexnet();
        let s = vec![XbarShape::new(72, 64); lenet.layers.len()];
        let path = std::env::temp_dir().join("autohet_strategy_for_mismatch.txt");
        save_strategy(&path, &s, &lenet.name).unwrap();
        let err = load_strategy_for(&alexnet, &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains(&alexnet.name), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The text format round-trips any strategy, not just the
            // candidate shapes the search happens to emit.
            #[test]
            fn strategy_text_round_trips(
                dims in prop::collection::vec((1u32..=4096, 1u32..=4096), 0..48),
                note in prop_oneof![Just(""), Just("VGG16 (16 layers)"), Just("x")],
            ) {
                let strategy: Vec<XbarShape> =
                    dims.iter().map(|&(r, c)| XbarShape::new(r, c)).collect();
                let text = strategy_to_string(&strategy, note);
                prop_assert_eq!(strategy_from_str(&text).unwrap(), strategy);
            }
        }
    }
}
