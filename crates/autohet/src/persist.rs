//! Strategy persistence.
//!
//! §4.5 of the paper: "the RL training is executed once but the decision
//! result is used many times" — which requires saving that decision. This
//! module serializes a per-layer crossbar strategy to a small, stable,
//! human-readable text format:
//!
//! ```text
//! # autohet-strategy v1
//! # model: VGG16 (16 layers)
//! L1 576x512
//! L2 72x64
//! ...
//! ```
//!
//! Plain text (not JSON) keeps the offline dependency set to the
//! whitelisted crates and makes strategies diffable in code review.

use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Format version tag written to every file.
const HEADER: &str = "# autohet-strategy v1";

/// Serialize a strategy (with an optional model note).
///
/// ```
/// use autohet::persist::{strategy_from_str, strategy_to_string};
/// use autohet::prelude::paper_hybrid_candidates;
///
/// let strategy = paper_hybrid_candidates();
/// let text = strategy_to_string(&strategy, "demo");
/// assert_eq!(strategy_from_str(&text).unwrap(), strategy);
/// ```
pub fn strategy_to_string(strategy: &[XbarShape], model_note: &str) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    if !model_note.is_empty() {
        let _ = writeln!(out, "# model: {model_note}");
    }
    for (i, s) in strategy.iter().enumerate() {
        let _ = writeln!(out, "L{} {}", i + 1, s);
    }
    out
}

/// Errors from parsing a strategy file.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Empty input: the file was truncated before the header.
    Truncated,
    /// Missing or wrong version header.
    BadHeader,
    /// Line did not match `L<k> <rows>x<cols>`.
    BadLine(String),
    /// Layer indices were not 1..=N in order.
    BadIndex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "empty or truncated strategy file"),
            ParseError::BadHeader => write!(f, "missing '{HEADER}' header"),
            ParseError::BadLine(l) => write!(f, "unparseable line: {l}"),
            ParseError::BadIndex(l) => write!(f, "out-of-order layer index: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from loading or saving a strategy file: every failure mode of
/// the search-once/deploy-many workflow is a distinct variant, and none
/// of the public functions panic on bad input.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (missing file, permissions, short write, …).
    Io(io::Error),
    /// The file exists but is not a well-formed strategy.
    Parse(ParseError),
    /// The strategy parsed but was searched for a different network.
    ModelMismatch {
        /// Name of the model the caller wanted to deploy.
        model: String,
        /// Mappable layers that model has.
        expected: usize,
        /// Shapes the file actually assigns.
        found: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "strategy file I/O: {e}"),
            PersistError::Parse(e) => write!(f, "strategy file format: {e}"),
            PersistError::ModelMismatch {
                model,
                expected,
                found,
            } => write!(
                f,
                "strategy has {found} layers but model '{model}' has {expected}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Parse(e) => Some(e),
            PersistError::ModelMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<ParseError> for PersistError {
    fn from(e: ParseError) -> Self {
        PersistError::Parse(e)
    }
}

/// Parse a strategy string (inverse of [`strategy_to_string`]).
pub fn strategy_from_str(text: &str) -> Result<Vec<XbarShape>, ParseError> {
    let mut lines = text.lines();
    match lines.next() {
        None => return Err(ParseError::Truncated),
        Some(first) if first.trim() != HEADER => return Err(ParseError::BadHeader),
        Some(_) => {}
    }
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, shape) = line
            .split_once(' ')
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        let idx: usize = tag
            .strip_prefix('L')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        if idx != out.len() + 1 {
            return Err(ParseError::BadIndex(line.into()));
        }
        let (r, c) = shape
            .split_once('x')
            .ok_or_else(|| ParseError::BadLine(line.into()))?;
        let rows: u32 = r
            .trim()
            .parse()
            .map_err(|_| ParseError::BadLine(line.into()))?;
        let cols: u32 = c
            .trim()
            .parse()
            .map_err(|_| ParseError::BadLine(line.into()))?;
        if rows == 0 || cols == 0 {
            return Err(ParseError::BadLine(line.into()));
        }
        out.push(XbarShape::new(rows, cols));
    }
    Ok(out)
}

/// Write a strategy to a file.
pub fn save_strategy(
    path: &Path,
    strategy: &[XbarShape],
    model_note: &str,
) -> Result<(), PersistError> {
    fs::write(path, strategy_to_string(strategy, model_note))?;
    Ok(())
}

/// Read a strategy from a file.
pub fn load_strategy(path: &Path) -> Result<Vec<XbarShape>, PersistError> {
    let text = fs::read_to_string(path)?;
    Ok(strategy_from_str(&text)?)
}

/// Read a strategy from a file and validate it against `model`: the file
/// must assign exactly one shape per mappable layer. Guards the
/// search-once/deploy-many workflow against loading a strategy that was
/// searched for a different network.
pub fn load_strategy_for(model: &Model, path: &Path) -> Result<Vec<XbarShape>, PersistError> {
    let strategy = load_strategy(path)?;
    if strategy.len() != model.layers.len() {
        return Err(PersistError::ModelMismatch {
            model: model.name.clone(),
            expected: model.layers.len(),
            found: strategy.len(),
        });
    }
    Ok(strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn sample() -> Vec<XbarShape> {
        paper_hybrid_candidates()
    }

    #[test]
    fn round_trips_through_string() {
        let s = sample();
        let text = strategy_to_string(&s, "demo (5 layers)");
        assert_eq!(strategy_from_str(&text).unwrap(), s);
    }

    #[test]
    fn round_trips_through_file() {
        let s = sample();
        let path = std::env::temp_dir().join("autohet_strategy_test.txt");
        save_strategy(&path, &s, "demo").unwrap();
        assert_eq!(load_strategy(&path).unwrap(), s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(strategy_from_str("L1 32x32\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_garbage_lines() {
        let text = format!("{HEADER}\nL1 32by32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadLine(_))
        ));
        let text = format!("{HEADER}\nL1 0x32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadLine(_))
        ));
    }

    #[test]
    fn rejects_out_of_order_indices() {
        let text = format!("{HEADER}\nL2 32x32\n");
        assert!(matches!(
            strategy_from_str(&text),
            Err(ParseError::BadIndex(_))
        ));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("{HEADER}\n# a note\n\nL1 36x32\n# more\nL2 72x64\n");
        let s = strategy_from_str(&text).unwrap();
        assert_eq!(s, vec![XbarShape::new(36, 32), XbarShape::new(72, 64)]);
    }

    #[test]
    fn empty_strategy_round_trips() {
        let text = strategy_to_string(&[], "");
        assert_eq!(strategy_from_str(&text).unwrap(), vec![]);
    }

    #[test]
    fn load_strategy_for_accepts_matching_layer_count() {
        let m = autohet_dnn::zoo::lenet5();
        let s = vec![XbarShape::new(72, 64); m.layers.len()];
        let path = std::env::temp_dir().join("autohet_strategy_for_ok.txt");
        save_strategy(&path, &s, &m.name).unwrap();
        assert_eq!(load_strategy_for(&m, &path).unwrap(), s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_strategy_for_rejects_wrong_layer_count() {
        let lenet = autohet_dnn::zoo::lenet5();
        let alexnet = autohet_dnn::zoo::alexnet();
        let s = vec![XbarShape::new(72, 64); lenet.layers.len()];
        let path = std::env::temp_dir().join("autohet_strategy_for_mismatch.txt");
        save_strategy(&path, &s, &lenet.name).unwrap();
        let err = load_strategy_for(&alexnet, &path).unwrap_err();
        match &err {
            PersistError::ModelMismatch {
                model,
                expected,
                found,
            } => {
                assert_eq!(model, &alexnet.name);
                assert_eq!(*expected, alexnet.layers.len());
                assert_eq!(*found, lenet.layers.len());
            }
            other => panic!("expected ModelMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains(&alexnet.name), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_input_is_truncated_not_bad_header() {
        assert_eq!(strategy_from_str(""), Err(ParseError::Truncated));
    }

    #[test]
    fn load_surfaces_io_errors_without_panicking() {
        let path = std::env::temp_dir().join("autohet_no_such_strategy_file.txt");
        let _ = std::fs::remove_file(&path);
        match load_strategy(&path).unwrap_err() {
            PersistError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_truncated_file() {
        let path = std::env::temp_dir().join("autohet_truncated_strategy.txt");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            load_strategy(&path).unwrap_err(),
            PersistError::Parse(ParseError::Truncated)
        ));
        // Header alone parses as an empty strategy; a header cut mid-way
        // does not.
        std::fs::write(&path, &HEADER[..HEADER.len() / 2]).unwrap();
        assert!(matches!(
            load_strategy(&path).unwrap_err(),
            PersistError::Parse(ParseError::BadHeader)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_binary_garbage() {
        let path = std::env::temp_dir().join("autohet_garbage_strategy.txt");
        std::fs::write(&path, [0xFFu8, 0xFE, 0x00, 0x9C, 0x41]).unwrap();
        // Non-UTF-8 bytes surface as an I/O error; UTF-8 noise as parse.
        assert!(matches!(
            load_strategy(&path).unwrap_err(),
            PersistError::Io(_)
        ));
        std::fs::write(&path, format!("{HEADER}\nL1 \u{2603}x64\n")).unwrap();
        assert!(matches!(
            load_strategy(&path).unwrap_err(),
            PersistError::Parse(ParseError::BadLine(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_error_chains_its_source() {
        use std::error::Error as _;
        let e = PersistError::from(ParseError::BadHeader);
        assert!(e.source().is_some());
        let m = PersistError::ModelMismatch {
            model: "x".into(),
            expected: 3,
            found: 2,
        };
        assert!(m.source().is_none());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The text format round-trips any strategy, not just the
            // candidate shapes the search happens to emit.
            #[test]
            fn strategy_text_round_trips(
                dims in prop::collection::vec((1u32..=4096, 1u32..=4096), 0..48),
                note in prop_oneof![Just(""), Just("VGG16 (16 layers)"), Just("x")],
            ) {
                let strategy: Vec<XbarShape> =
                    dims.iter().map(|&(r, c)| XbarShape::new(r, c)).collect();
                let text = strategy_to_string(&strategy, note);
                prop_assert_eq!(strategy_from_str(&text).unwrap(), strategy);
            }
        }
    }
}
