//! Homogeneous baselines and the manual heterogeneous configuration.
//!
//! The paper compares AutoHet against five homogeneous accelerators (one
//! per square size, §4.1) and motivates the search with a hand-tuned
//! heterogeneous split of VGG16 (§2.2.1 / Fig. 3: 512×512 for the first
//! ten layers, 256×256 for the last six).

use autohet_accel::{evaluate, AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::geometry::SQUARE_CANDIDATES;
use autohet_xbar::XbarShape;

/// Evaluate every homogeneous square baseline (one parallel worker per
/// candidate, ordered like `SQUARE_CANDIDATES`).
pub fn homogeneous_reports(model: &Model, cfg: &AccelConfig) -> Vec<(XbarShape, EvalReport)> {
    let engine = EvalEngine::new(model.clone(), *cfg);
    homogeneous_reports_with_engine(&engine)
}

/// [`homogeneous_reports`] on an existing engine, warming its memo table
/// for a subsequent search over the same config.
pub fn homogeneous_reports_with_engine(engine: &EvalEngine) -> Vec<(XbarShape, EvalReport)> {
    let n = engine.model().layers.len();
    crate::par::par_map(SQUARE_CANDIDATES.as_ref(), |&s| {
        (s, engine.evaluate(&vec![s; n]))
    })
}

/// The homogeneous baseline with the highest RUE ("Best-Homo" in §4.4,
/// "Base" in §4.3).
pub fn best_homogeneous(model: &Model, cfg: &AccelConfig) -> (XbarShape, EvalReport) {
    homogeneous_reports(model, cfg)
        .into_iter()
        .max_by(|a, b| a.1.rue().partial_cmp(&b.1.rue()).unwrap())
        .expect("at least one baseline")
}

/// [`best_homogeneous`] on an existing engine.
pub fn best_homogeneous_with_engine(engine: &EvalEngine) -> (XbarShape, EvalReport) {
    homogeneous_reports_with_engine(engine)
        .into_iter()
        .max_by(|a, b| a.1.rue().partial_cmp(&b.1.rue()).unwrap())
        .expect("at least one baseline")
}

/// Fig. 3's Manual-Hetero strategy for a 16-layer VGG16: 512×512 for
/// layers 1–10, 256×256 for layers 11–16.
pub fn manual_hetero_vgg16_strategy(model: &Model) -> Vec<XbarShape> {
    assert_eq!(model.layers.len(), 16, "expects the paper's 16-layer VGG16");
    (0..16)
        .map(|i| {
            if i < 10 {
                XbarShape::square(512)
            } else {
                XbarShape::square(256)
            }
        })
        .collect()
}

/// Evaluate Fig. 3's Manual-Hetero accelerator.
pub fn manual_hetero_vgg16(model: &Model, cfg: &AccelConfig) -> EvalReport {
    evaluate(model, &manual_hetero_vgg16_strategy(model), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;

    #[test]
    fn five_baselines_are_produced() {
        let m = zoo::alexnet();
        let reports = homogeneous_reports(&m, &AccelConfig::default());
        assert_eq!(reports.len(), 5);
        assert!(reports.iter().all(|(s, _)| s.is_square()));
    }

    #[test]
    fn engine_backed_reports_match_direct_evaluation() {
        let m = zoo::alexnet();
        let cfg = AccelConfig::default().with_tile_sharing();
        for (s, r) in homogeneous_reports(&m, &cfg) {
            assert_eq!(r, evaluate(&m, &vec![s; m.layers.len()], &cfg));
        }
    }

    #[test]
    fn best_homogeneous_maximizes_rue() {
        let m = zoo::vgg16();
        let cfg = AccelConfig::default();
        let (_, best) = best_homogeneous(&m, &cfg);
        for (_, r) in homogeneous_reports(&m, &cfg) {
            assert!(best.rue() >= r.rue());
        }
    }

    #[test]
    fn homogeneous_tradeoff_matches_fig3() {
        // Fig. 3: 32×32 maximizes utilization, 512×512 minimizes energy.
        let m = zoo::vgg16();
        let reports = homogeneous_reports(&m, &AccelConfig::default());
        let best_util = reports
            .iter()
            .max_by(|a, b| a.1.utilization.partial_cmp(&b.1.utilization).unwrap())
            .unwrap();
        let best_energy = reports
            .iter()
            .min_by(|a, b| a.1.energy_nj().partial_cmp(&b.1.energy_nj()).unwrap())
            .unwrap();
        // Small crossbars win utilization (32 or 64 — ⌊64/9⌋·9 = 63 wastes
        // only one row per column group, so 64 can edge out 32), large
        // crossbars win energy.
        assert!(
            best_util.0.rows <= 64,
            "best utilization was {}",
            best_util.0
        );
        assert_eq!(best_energy.0, XbarShape::square(512));
        // And the trade-off is real: the utilization winner pays more
        // energy; the energy winner utilizes worse.
        assert!(best_util.1.energy_nj() > best_energy.1.energy_nj());
        assert!(best_util.1.utilization > best_energy.1.utilization);
    }

    #[test]
    fn manual_hetero_beats_most_homogeneous_baselines_on_vgg16() {
        // Fig. 3's motivation: a hand-tuned heterogeneous split
        // outperforms homogeneous designs. In our cost model the manual
        // 512/256 split lands above the median homogeneous RUE but below
        // the 512² baseline (see EXPERIMENTS.md for the divergence note);
        // the automated search, not the hand split, is what wins overall.
        let m = zoo::vgg16();
        let cfg = AccelConfig::default();
        let manual = manual_hetero_vgg16(&m, &cfg);
        let mut rues: Vec<f64> = homogeneous_reports(&m, &cfg)
            .into_iter()
            .map(|(_, r)| r.rue())
            .collect();
        rues.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let beaten = rues.iter().filter(|&&r| manual.rue() >= r).count();
        assert!(beaten >= 3, "manual beats only {beaten} of 5 baselines");
    }

    #[test]
    #[should_panic]
    fn manual_strategy_requires_vgg16() {
        let m = zoo::alexnet();
        let _ = manual_hetero_vgg16_strategy(&m);
    }
}
