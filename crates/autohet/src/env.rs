//! The RL environment: the paper's state space (Eq. 1 / Table 1), action
//! discretization, and reward (Eq. 2) over hardware feedback.
//!
//! One episode walks the model's layers in order. At step `k` the agent
//! observes the 10-dimensional state of layer `k`, emits a continuous
//! action in `(0,1)` that is discretized onto the candidate list, and the
//! episode reward — computed only when every layer has its assignment — is
//! the accelerator's utilization/energy ratio for the full configuration
//! (the paper feeds the same terminal reward back to every step, Eq. 3).

use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use std::sync::Arc;

/// The search environment for one model + candidate set.
#[derive(Debug, Clone)]
pub struct AutoHetEnv {
    model: Model,
    candidates: Vec<XbarShape>,
    cfg: AccelConfig,
    /// Memoized evaluator; `Arc` so several searches (e.g. multi-seed
    /// workers or ablation stages with a common config) can share one
    /// memo table. Cached results are bit-identical to direct
    /// `evaluate()`, so sharing never changes any outcome.
    engine: Arc<EvalEngine>,
    maxima: Maxima,
    /// Reward normalizer: raw RUE is divided by this so rewards sit in a
    /// well-conditioned O(1) range. The paper uses raw `u/e` (tiny but
    /// positive); normalization rescales without changing the argmax.
    reward_scale: f64,
    /// Objective exponents `(α, β)`: reward ∝ `u^α / e^β`. The paper's
    /// Eq. 2 is `(1, 1)`; other weights trace the utilization/energy
    /// Pareto front (see `crate::pareto`).
    weights: (f64, f64),
}

#[derive(Debug, Clone, Copy)]
struct Maxima {
    inc: f64,
    outc: f64,
    ks: f64,
    stride: f64,
    weights: f64,
    ins: f64,
}

impl AutoHetEnv {
    /// Build the environment with the paper's Eq. 2 reward (`u/e`).
    /// `candidates` must be non-empty.
    pub fn new(model: &Model, candidates: &[XbarShape], cfg: AccelConfig) -> Self {
        Self::with_weights(model, candidates, cfg, (1.0, 1.0))
    }

    /// Build with custom objective exponents `(α, β)`: reward ∝ `u^α/e^β`.
    pub fn with_weights(
        model: &Model,
        candidates: &[XbarShape],
        cfg: AccelConfig,
        weights: (f64, f64),
    ) -> Self {
        Self::with_shared_engine(
            model,
            candidates,
            cfg,
            weights,
            Arc::new(EvalEngine::new(model.clone(), cfg)),
        )
    }

    /// Build on an existing (possibly shared) evaluation engine. The
    /// engine must have been constructed for the same model and config.
    pub fn with_shared_engine(
        model: &Model,
        candidates: &[XbarShape],
        cfg: AccelConfig,
        weights: (f64, f64),
        engine: Arc<EvalEngine>,
    ) -> Self {
        assert!(!candidates.is_empty());
        assert_eq!(
            engine.model().layers.len(),
            model.layers.len(),
            "engine must be built for the searched model"
        );
        assert_eq!(
            *engine.config(),
            cfg,
            "engine must be built for the same accelerator config"
        );
        let fm = model.feature_maxima();
        let maxima = Maxima {
            inc: fm.in_channels as f64,
            outc: fm.out_channels as f64,
            ks: fm.kernel_elems as f64,
            stride: fm.stride as f64,
            weights: fm.weights as f64,
            ins: fm.in_size as f64,
        };
        assert!(
            weights.0 > 0.0 && weights.1 > 0.0,
            "exponents must be positive"
        );
        let mut env = AutoHetEnv {
            model: model.clone(),
            candidates: candidates.to_vec(),
            cfg,
            engine,
            maxima,
            reward_scale: 1.0,
            weights,
        };
        // Normalize rewards by a fixed reference configuration: the middle
        // candidate applied homogeneously.
        let mid = candidates[candidates.len() / 2];
        let reference = env.evaluate_strategy(&vec![mid; model.layers.len()]);
        env.reward_scale = env.raw_objective(&reference).max(f64::MIN_POSITIVE);
        env
    }

    /// `u^α / e^β` before normalization.
    fn raw_objective(&self, report: &EvalReport) -> f64 {
        report.utilization_pct().powf(self.weights.0) / report.energy_nj().powf(self.weights.1)
    }

    /// Number of steps per episode.
    pub fn num_layers(&self) -> usize {
        self.model.layers.len()
    }

    /// The candidate list (action space).
    pub fn candidates(&self) -> &[XbarShape] {
        &self.candidates
    }

    /// Model under search.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Accelerator configuration used for feedback.
    pub fn accel_config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Discretize a continuous action in `[0,1]` onto a candidate index
    /// (the HAQ-style mapping).
    pub fn action_to_index(&self, action: f64) -> usize {
        let c = self.candidates.len();
        ((action.clamp(0.0, 1.0) * (c - 1) as f64).round() as usize).min(c - 1)
    }

    /// Candidate shape for a continuous action.
    pub fn action_to_shape(&self, action: f64) -> XbarShape {
        self.candidates[self.action_to_index(action)]
    }

    /// The 10-dimensional state of layer `k` (paper Eq. 1 / Table 1), all
    /// features normalized to `[0,1]`. The two dynamic features — the
    /// action and per-layer utilization — describe the *previous* decision
    /// (zero at the first step), which is how a step-wise agent can
    /// actually observe them.
    pub fn state(&self, k: usize, prev_action: f64, prev_util: f64) -> Vec<f64> {
        let l = &self.model.layers[k];
        let n = self.model.layers.len();
        vec![
            k as f64 / (n - 1).max(1) as f64,
            l.kind.as_state(),
            l.in_channels as f64 / self.maxima.inc,
            l.out_channels as f64 / self.maxima.outc,
            l.kernel_elems() as f64 / self.maxima.ks,
            l.stride as f64 / self.maxima.stride,
            l.num_weights() as f64 / self.maxima.weights,
            l.in_size as f64 / self.maxima.ins,
            prev_action,
            prev_util,
        ]
    }

    /// Eq. 4 utilization of layer `k` under a continuous action — the
    /// dynamic state feature `u_k`.
    pub fn layer_utilization(&self, k: usize, action: f64) -> f64 {
        autohet_xbar::utilization::utilization(&self.model.layers[k], self.action_to_shape(action))
    }

    /// Full hardware feedback for a complete strategy, served through the
    /// memoized engine (bit-identical to direct `evaluate()`).
    pub fn evaluate_strategy(&self, strategy: &[XbarShape]) -> EvalReport {
        self.engine.evaluate(strategy)
    }

    /// The memoized evaluation engine backing this environment.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// Episode reward (Eq. 2 at the default `(1,1)` weights: `R = u / e`,
    /// normalized — see `reward_scale`).
    pub fn reward(&self, report: &EvalReport) -> f64 {
        self.raw_objective(report) / self.reward_scale
    }

    /// Decode a whole episode's continuous actions into a strategy.
    pub fn decode(&self, actions: &[f64]) -> Vec<XbarShape> {
        assert_eq!(actions.len(), self.num_layers());
        actions.iter().map(|&a| self.action_to_shape(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn env() -> AutoHetEnv {
        AutoHetEnv::new(
            &zoo::micro_cnn(),
            &paper_hybrid_candidates(),
            AccelConfig::default(),
        )
    }

    #[test]
    fn state_is_ten_dimensional_and_normalized() {
        let e = env();
        for k in 0..e.num_layers() {
            let s = e.state(k, 0.5, 0.8);
            assert_eq!(s.len(), 10);
            assert!(s.iter().all(|v| (0.0..=1.0).contains(v)), "{s:?}");
        }
    }

    #[test]
    fn fc_layers_have_t_zero() {
        let e = env();
        // micro_cnn: layers 2 and 3 are FC.
        assert_eq!(e.state(2, 0.0, 0.0)[1], 0.0);
        assert_eq!(e.state(0, 0.0, 0.0)[1], 1.0);
    }

    #[test]
    fn action_discretization_covers_all_candidates() {
        let e = env();
        let c = e.candidates().len();
        let mut seen = std::collections::HashSet::new();
        for i in 0..=100 {
            seen.insert(e.action_to_index(i as f64 / 100.0));
        }
        assert_eq!(seen.len(), c);
        assert_eq!(e.action_to_index(0.0), 0);
        assert_eq!(e.action_to_index(1.0), c - 1);
        // Out-of-range actions clamp.
        assert_eq!(e.action_to_index(7.0), c - 1);
        assert_eq!(e.action_to_index(-3.0), 0);
    }

    #[test]
    fn reward_is_normalized_to_order_one() {
        let e = env();
        let mid = e.candidates()[e.candidates().len() / 2];
        let r = e.evaluate_strategy(&vec![mid; e.num_layers()]);
        assert!((e.reward(&r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn better_strategies_get_higher_reward() {
        let e = env();
        let all = paper_hybrid_candidates();
        let worst = e.evaluate_strategy(&vec![all[0]; e.num_layers()]);
        let best = (0..all.len())
            .map(|i| e.evaluate_strategy(&vec![all[i]; e.num_layers()]))
            .map(|r| e.reward(&r))
            .fold(f64::MIN, f64::max);
        assert!(best >= e.reward(&worst));
    }

    #[test]
    fn decode_roundtrips_indices() {
        let e = env();
        let actions = vec![0.0, 0.25, 0.5, 1.0];
        let strategy = e.decode(&actions);
        assert_eq!(strategy.len(), 4);
        assert_eq!(strategy[0], e.candidates()[0]);
        assert_eq!(strategy[3], *e.candidates().last().unwrap());
    }

    #[test]
    fn evaluate_strategy_matches_direct_evaluate_and_caches() {
        let e = env();
        let strategy = vec![e.candidates()[0]; e.num_layers()];
        let direct = autohet_accel::evaluate(e.model(), &strategy, e.accel_config());
        let before = e.engine().stats();
        assert_eq!(e.evaluate_strategy(&strategy), direct);
        assert_eq!(e.evaluate_strategy(&strategy), direct);
        let delta = e.engine().stats().since(&before);
        assert!(
            delta.strategy_hits >= 1,
            "repeat evaluation should hit the cache"
        );
    }

    #[test]
    fn layer_utilization_matches_eq4() {
        let e = env();
        let u = e.layer_utilization(0, 0.0);
        let direct =
            autohet_xbar::utilization::utilization(&e.model().layers[0], e.candidates()[0]);
        assert_eq!(u, direct);
    }
}
