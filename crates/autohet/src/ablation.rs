//! The §4.3 ablation: Base → +He → +Hy → All.
//!
//! - **Base**: the best-RUE homogeneous square accelerator.
//! - **+He**: RL search restricted to the five square candidates
//!   (heterogeneity only).
//! - **+Hy**: RL search over the hybrid square+rectangle candidate set.
//! - **All**: +Hy plus the tile-shared allocation scheme.
//!
//! Each stage's search space contains the previous stage's best
//! configuration (squares are a subset of the square search; sharing never
//! hurts a fixed strategy), so each stage also *evaluates* its
//! predecessor's strategy and keeps the max — the RL agent must only ever
//! improve on it, mirroring the paper's monotone Fig. 10.

use crate::homogeneous::best_homogeneous_with_engine;
use crate::search::rl::{rl_search_with_engine, RlSearchConfig, SearchOutcome};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::geometry::{paper_hybrid_candidates, SQUARE_CANDIDATES};
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Ablation stages, in cumulative order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationStage {
    /// Best homogeneous square accelerator.
    Base,
    /// + heterogeneous square crossbars (RL-searched).
    He,
    /// + hybrid (square and rectangle) crossbars.
    Hy,
    /// + tile-shared allocation — the full AutoHet.
    All,
}

impl AblationStage {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AblationStage::Base => "Base",
            AblationStage::He => "+He",
            AblationStage::Hy => "+Hy",
            AblationStage::All => "All",
        }
    }
}

/// One stage's outcome.
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub stage: AblationStage,
    pub strategy: Vec<XbarShape>,
    pub report: EvalReport,
}

/// Run the full ablation. `scfg.ddpg.seed` seeds every stage's search.
/// Base, +He, and +Hy all evaluate against the plain accelerator, so they
/// share one memoized engine; All gets its own tile-shared engine.
pub fn run_ablation(model: &Model, scfg: &RlSearchConfig) -> Vec<AblationResult> {
    let plain = AccelConfig::default();
    let shared = AccelConfig::default().with_tile_sharing();
    let plain_engine = Arc::new(EvalEngine::new(model.clone(), plain));
    let shared_engine = Arc::new(EvalEngine::new(model.clone(), shared));

    // Base.
    let (base_shape, base_report) = best_homogeneous_with_engine(&plain_engine);
    let base_strategy = vec![base_shape; model.layers.len()];
    let mut results = vec![AblationResult {
        stage: AblationStage::Base,
        strategy: base_strategy.clone(),
        report: base_report,
    }];

    // +He: squares only.
    let he = search_with_floor(
        model,
        &SQUARE_CANDIDATES,
        &plain,
        scfg,
        &results[0].strategy,
        &plain_engine,
    );
    results.push(AblationResult {
        stage: AblationStage::He,
        strategy: he.0,
        report: he.1,
    });

    // +Hy: hybrid candidates.
    let hy = search_with_floor(
        model,
        &paper_hybrid_candidates(),
        &plain,
        scfg,
        &results[1].strategy,
        &plain_engine,
    );
    results.push(AblationResult {
        stage: AblationStage::Hy,
        strategy: hy.0,
        report: hy.1,
    });

    // All: hybrid + tile sharing (the predecessor strategy re-evaluated
    // under sharing is the floor — sharing a fixed strategy never hurts).
    let all = search_with_floor(
        model,
        &paper_hybrid_candidates(),
        &shared,
        scfg,
        &results[2].strategy,
        &shared_engine,
    );
    results.push(AblationResult {
        stage: AblationStage::All,
        strategy: all.0,
        report: all.1,
    });

    results
}

/// RL search that may not fall below an incumbent strategy: the incumbent
/// is evaluated under this stage's accelerator config and kept if better.
fn search_with_floor(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    incumbent: &[XbarShape],
    engine: &Arc<EvalEngine>,
) -> (Vec<XbarShape>, EvalReport) {
    let outcome: SearchOutcome =
        rl_search_with_engine(model, candidates, cfg, scfg, Arc::clone(engine));
    // The incumbent may use shapes outside this stage's candidate list
    // only when moving from He → Hy; it is still a valid configuration of
    // the stage's accelerator, so comparing is fair.
    let floor = engine.evaluate(incumbent);
    if floor.rue() > outcome.best_report.rue() {
        (incumbent.to_vec(), floor)
    } else {
        (outcome.best_strategy, outcome.best_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_rl::DdpgConfig;

    fn quick() -> RlSearchConfig {
        RlSearchConfig {
            episodes: 30,
            ddpg: DdpgConfig {
                seed: 17,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn ablation_rue_is_monotone_nondecreasing() {
        // Fig. 10's headline property.
        let m = autohet_dnn::zoo::micro_cnn();
        let results = run_ablation(&m, &quick());
        assert_eq!(results.len(), 4);
        for w in results.windows(2) {
            assert!(
                w[1].report.rue() >= w[0].report.rue() - 1e-12,
                "{} ({}) < {} ({})",
                w[1].stage.label(),
                w[1].report.rue(),
                w[0].stage.label(),
                w[0].report.rue()
            );
        }
    }

    #[test]
    fn stage_order_and_labels() {
        let m = autohet_dnn::zoo::micro_cnn();
        let results = run_ablation(&m, &quick());
        let labels: Vec<&str> = results.iter().map(|r| r.stage.label()).collect();
        assert_eq!(labels, vec!["Base", "+He", "+Hy", "All"]);
    }

    #[test]
    fn base_is_homogeneous() {
        let m = autohet_dnn::zoo::micro_cnn();
        let results = run_ablation(&m, &quick());
        let s = &results[0].strategy;
        assert!(s.windows(2).all(|w| w[0] == w[1]));
        assert!(s[0].is_square());
    }

    #[test]
    fn all_stage_uses_tile_sharing() {
        let m = autohet_dnn::zoo::micro_cnn();
        let results = run_ablation(&m, &quick());
        assert!(
            results[3].report.sharing.is_some()
                || results[3].report.tiles <= results[2].report.tiles
        );
    }
}
