//! NSGA-II-style multi-objective search over energy × latency ×
//! noise-robustness (DESIGN.md §11).
//!
//! The paper's DDPG/annealing drivers fold everything into one scalar
//! reward; once device variation is priced in, the trade-off is
//! genuinely three-dimensional and a scalarization hides the knee
//! points. This driver keeps the whole front: fast non-dominated
//! sorting plus crowding distance ([`crate::pareto`]), binary-tournament
//! parent selection, uniform crossover and per-gene mutation over the
//! candidate-shape indices, with (μ+λ) environmental selection.
//!
//! Every individual is evaluated through a shared
//! [`EvalEngine::evaluate_noisy`] — the ideal-device metrics come from
//! the memoized cost slices and the noise objective from the
//! Monte-Carlo variation oracle, both cached per `(layer, shape)`, so a
//! whole generation fans out over [`crate::par::par_map`] against one
//! cache. Seeded and deterministic: same config ⇒ same front.

use crate::pareto::{crowding_distances, non_dominated_sort};
use autohet_accel::{AccelConfig, EvalEngine, NoiseEvalConfig, NoisyEvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// NSGA-II driver parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NsgaConfig {
    /// Population size (μ; also the per-generation offspring count λ).
    pub population: usize,
    /// Evolution generations after the seeded initial population.
    pub generations: usize,
    /// RNG seed for initialization, selection, crossover and mutation.
    pub seed: u64,
    /// Probability a parent pair is recombined (else cloned).
    pub crossover_rate: f64,
    /// Per-gene probability of re-rolling a layer's candidate shape.
    pub mutation_rate: f64,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        NsgaConfig {
            population: 24,
            generations: 10,
            seed: 17,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
        }
    }
}

/// One evaluated mapping on (or near) the robustness Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustPoint {
    /// Per-layer crossbar shapes.
    pub strategy: Vec<XbarShape>,
    /// Ideal-device inference energy [nJ] (minimized).
    pub energy_nj: f64,
    /// Ideal-device inference latency [ns] (minimized).
    pub latency_ns: f64,
    /// Mean normalized output deviation under variation (minimized).
    pub noise_dev: f64,
    /// Classification-accuracy proxy under variation (higher is better;
    /// reported, not an objective — it is `noise_dev`'s monotone shadow).
    pub accuracy_proxy: f64,
    /// The paper's scalar RUE (reported for comparison with the
    /// noise-blind drivers).
    pub rue: f64,
}

impl RobustPoint {
    /// The minimization objective vector: `[energy, latency, noise]`.
    pub fn objectives(&self) -> [f64; 3] {
        [self.energy_nj, self.latency_ns, self.noise_dev]
    }

    fn from_report(strategy: Vec<XbarShape>, r: &NoisyEvalReport) -> Self {
        RobustPoint {
            energy_nj: r.eval.energy_nj(),
            latency_ns: r.eval.latency_ns,
            noise_dev: r.robustness.mean_dev,
            accuracy_proxy: r.robustness.accuracy_proxy,
            rue: r.eval.rue(),
            strategy,
        }
    }
}

/// Per-generation trajectory record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStat {
    /// Generation index (0 = seeded initial population).
    pub generation: usize,
    /// Size of the population's rank-0 front.
    pub front_size: usize,
    /// Best (lowest) energy in the population [nJ].
    pub best_energy_nj: f64,
    /// Best (lowest) latency in the population [ns].
    pub best_latency_ns: f64,
    /// Best (lowest) noise deviation in the population.
    pub best_noise_dev: f64,
}

/// Result of an NSGA-II search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustSearchOutcome {
    /// The final rank-0 front, deduplicated by strategy and sorted by
    /// ascending energy (ties: latency, noise, strategy).
    pub front: Vec<RobustPoint>,
    /// One record per generation, including the seeded generation 0.
    pub history: Vec<GenerationStat>,
    /// Strategy evaluations performed (population + offspring).
    pub evaluations: u64,
}

impl RobustSearchOutcome {
    /// The front member with the lowest noise deviation (ties broken by
    /// highest RUE) — the "noise-robust pick".
    pub fn most_robust(&self) -> Option<&RobustPoint> {
        self.front.iter().min_by(|a, b| {
            a.noise_dev
                .partial_cmp(&b.noise_dev)
                .unwrap()
                .then(b.rue.partial_cmp(&a.rue).unwrap())
        })
    }

    /// The front member with the highest RUE — what a noise-blind scalar
    /// search would have chosen from the same set.
    pub fn best_rue(&self) -> Option<&RobustPoint> {
        self.front
            .iter()
            .max_by(|a, b| a.rue.partial_cmp(&b.rue).unwrap())
    }
}

/// Run an NSGA-II search for `model` on an accelerator configured by
/// `cfg`, pricing device variation per `noise`. Builds a fresh noisy
/// engine; use [`nsga_search_with_engine`] to share caches across
/// searches.
pub fn nsga_search(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    ncfg: &NsgaConfig,
    noise: &NoiseEvalConfig,
) -> RobustSearchOutcome {
    let engine = Arc::new(EvalEngine::new(model.clone(), *cfg).with_noise(*noise));
    nsga_search_with_engine(candidates, ncfg, engine)
}

/// [`nsga_search`] against a caller-provided engine (must be built with
/// [`EvalEngine::with_noise`]). Deterministic in `(candidates, ncfg)`
/// and the engine's model/config/noise seed — shared caches never change
/// results, only speed.
pub fn nsga_search_with_engine(
    candidates: &[XbarShape],
    ncfg: &NsgaConfig,
    engine: Arc<EvalEngine>,
) -> RobustSearchOutcome {
    let _span = autohet_obs::trace::span("search.nsga");
    assert!(!candidates.is_empty(), "no candidate shapes");
    assert!(ncfg.population >= 4, "population too small for tournaments");
    assert!((0.0..=1.0).contains(&ncfg.crossover_rate));
    assert!((0.0..=1.0).contains(&ncfg.mutation_rate));
    let layers = engine.model().layers.len();
    let mut rng = SmallRng::seed_from_u64(ncfg.seed);

    // Seed with every homogeneous mapping (the paper's baselines), then
    // fill with uniform random heterogeneous individuals.
    let mut pop: Vec<Vec<usize>> = (0..candidates.len().min(ncfg.population))
        .map(|i| vec![i; layers])
        .collect();
    while pop.len() < ncfg.population {
        pop.push(
            (0..layers)
                .map(|_| rng.gen_range(0..candidates.len()))
                .collect(),
        );
    }
    let mut evals = evaluate_population(&pop, candidates, &engine);
    let mut evaluations = pop.len() as u64;
    let mut history = vec![generation_stat(0, &evals)];

    for generation in 1..=ncfg.generations {
        let objs: Vec<Vec<f64>> = evals.iter().map(|p| p.objectives().to_vec()).collect();
        let fronts = non_dominated_sort(&objs);
        let mut rank = vec![0usize; pop.len()];
        let mut crowd = vec![0.0f64; pop.len()];
        for (fi, front) in fronts.iter().enumerate() {
            let d = crowding_distances(&objs, front);
            for (&i, &di) in front.iter().zip(&d) {
                rank[i] = fi;
                crowd[i] = di;
            }
        }

        let mut offspring: Vec<Vec<usize>> = Vec::with_capacity(ncfg.population);
        while offspring.len() < ncfg.population {
            let a = tournament(&mut rng, &rank, &crowd);
            let b = tournament(&mut rng, &rank, &crowd);
            let (mut c1, mut c2) = crossover(&pop[a], &pop[b], ncfg.crossover_rate, &mut rng);
            mutate(&mut c1, candidates.len(), ncfg.mutation_rate, &mut rng);
            mutate(&mut c2, candidates.len(), ncfg.mutation_rate, &mut rng);
            offspring.push(c1);
            if offspring.len() < ncfg.population {
                offspring.push(c2);
            }
        }
        let off_evals = evaluate_population(&offspring, candidates, &engine);
        evaluations += offspring.len() as u64;

        // (μ+λ) environmental selection: fill by front, break ties in
        // the boundary front by descending crowding distance.
        let mut comb_pop = pop;
        comb_pop.extend(offspring);
        let mut comb_evals = evals;
        comb_evals.extend(off_evals);
        let comb_objs: Vec<Vec<f64>> = comb_evals.iter().map(|p| p.objectives().to_vec()).collect();
        let fronts = non_dominated_sort(&comb_objs);
        let mut selected: Vec<usize> = Vec::with_capacity(ncfg.population);
        for front in &fronts {
            let room = ncfg.population - selected.len();
            if front.len() <= room {
                selected.extend_from_slice(front);
            } else {
                let d = crowding_distances(&comb_objs, front);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&x, &y| {
                    d[y].partial_cmp(&d[x])
                        .unwrap()
                        .then(front[x].cmp(&front[y]))
                });
                selected.extend(order.iter().take(room).map(|&k| front[k]));
            }
            if selected.len() == ncfg.population {
                break;
            }
        }
        pop = selected.iter().map(|&i| comb_pop[i].clone()).collect();
        evals = selected.iter().map(|&i| comb_evals[i].clone()).collect();
        history.push(generation_stat(generation, &evals));
    }

    // Final front: rank 0 of the final population, deduplicated by
    // strategy (identical strategies have identical objectives, so
    // sorting by objectives-then-strategy makes duplicates adjacent).
    let objs: Vec<Vec<f64>> = evals.iter().map(|p| p.objectives().to_vec()).collect();
    let fronts = non_dominated_sort(&objs);
    let mut front: Vec<RobustPoint> = fronts[0].iter().map(|&i| evals[i].clone()).collect();
    front.sort_by(|a, b| {
        a.energy_nj
            .partial_cmp(&b.energy_nj)
            .unwrap()
            .then(a.latency_ns.partial_cmp(&b.latency_ns).unwrap())
            .then(a.noise_dev.partial_cmp(&b.noise_dev).unwrap())
            .then(a.strategy.cmp(&b.strategy))
    });
    front.dedup_by(|a, b| a.strategy == b.strategy);
    RobustSearchOutcome {
        front,
        history,
        evaluations,
    }
}

fn evaluate_population(
    pop: &[Vec<usize>],
    candidates: &[XbarShape],
    engine: &Arc<EvalEngine>,
) -> Vec<RobustPoint> {
    crate::par::par_map(pop, |genes| {
        let strategy: Vec<XbarShape> = genes.iter().map(|&g| candidates[g]).collect();
        let report = engine.evaluate_noisy(&strategy);
        RobustPoint::from_report(strategy, &report)
    })
}

fn generation_stat(generation: usize, evals: &[RobustPoint]) -> GenerationStat {
    let objs: Vec<Vec<f64>> = evals.iter().map(|p| p.objectives().to_vec()).collect();
    let fronts = non_dominated_sort(&objs);
    let min = |f: fn(&RobustPoint) -> f64| evals.iter().map(f).fold(f64::INFINITY, f64::min);
    GenerationStat {
        generation,
        front_size: fronts.first().map_or(0, Vec::len),
        best_energy_nj: min(|p| p.energy_nj),
        best_latency_ns: min(|p| p.latency_ns),
        best_noise_dev: min(|p| p.noise_dev),
    }
}

/// Binary tournament: lower rank wins, ties go to the larger crowding
/// distance (then the first pick, keeping the draw deterministic).
fn tournament(rng: &mut SmallRng, rank: &[usize], crowd: &[f64]) -> usize {
    let a = rng.gen_range(0..rank.len());
    let b = rng.gen_range(0..rank.len());
    if rank[b] < rank[a] || (rank[b] == rank[a] && crowd[b] > crowd[a]) {
        b
    } else {
        a
    }
}

/// Uniform crossover: with `rate`, each gene swaps between the children
/// with probability ½; otherwise the parents are cloned.
fn crossover(a: &[usize], b: &[usize], rate: f64, rng: &mut SmallRng) -> (Vec<usize>, Vec<usize>) {
    let (mut c1, mut c2) = (a.to_vec(), b.to_vec());
    if rng.gen_bool(rate) {
        for (x, y) in c1.iter_mut().zip(c2.iter_mut()) {
            if rng.gen_bool(0.5) {
                std::mem::swap(x, y);
            }
        }
    }
    (c1, c2)
}

/// Per-gene mutation: re-roll a layer's candidate index with `rate`.
fn mutate(genes: &mut [usize], n_candidates: usize, rate: f64, rng: &mut SmallRng) {
    for g in genes {
        if rng.gen_bool(rate) {
            *g = rng.gen_range(0..n_candidates);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::dominates_min;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick() -> NsgaConfig {
        NsgaConfig {
            population: 8,
            generations: 3,
            seed: 5,
            ..NsgaConfig::default()
        }
    }

    fn quick_noise() -> NoiseEvalConfig {
        NoiseEvalConfig {
            draws: 2,
            probes: 2,
            ..NoiseEvalConfig::default()
        }
    }

    #[test]
    fn search_produces_a_valid_front() {
        let m = autohet_dnn::zoo::micro_cnn();
        let out = nsga_search(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &quick_noise(),
        );
        assert!(!out.front.is_empty());
        assert_eq!(out.history.len(), 4);
        assert_eq!(out.evaluations, 8 * 4);
        for p in &out.front {
            assert_eq!(p.strategy.len(), m.layers.len());
            assert!(p.energy_nj > 0.0 && p.latency_ns > 0.0 && p.noise_dev >= 0.0);
        }
        // No front member dominated by another.
        for a in &out.front {
            for b in &out.front {
                assert!(!dominates_min(&b.objectives(), &a.objectives()));
            }
        }
        // Strategies on the front are unique.
        for (i, a) in out.front.iter().enumerate() {
            for b in &out.front[i + 1..] {
                assert_ne!(a.strategy, b.strategy);
            }
        }
    }

    #[test]
    fn search_is_seed_deterministic() {
        let m = autohet_dnn::zoo::micro_cnn();
        let run = || {
            nsga_search(
                &m,
                &paper_hybrid_candidates(),
                &AccelConfig::default(),
                &quick(),
                &quick_noise(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn picks_are_consistent_with_front() {
        let m = autohet_dnn::zoo::micro_cnn();
        let out = nsga_search(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &quick_noise(),
        );
        let robust = out.most_robust().unwrap();
        let rue = out.best_rue().unwrap();
        for p in &out.front {
            assert!(robust.noise_dev <= p.noise_dev + 1e-15);
            assert!(rue.rue >= p.rue - 1e-15);
        }
    }

    #[test]
    fn exact_noise_collapses_the_noise_axis() {
        let m = autohet_dnn::zoo::micro_cnn();
        let noise = NoiseEvalConfig {
            variation: autohet_xbar::VariationModel::ideal(),
            ..quick_noise()
        };
        let out = nsga_search(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &noise,
        );
        for p in &out.front {
            assert_eq!(p.noise_dev, 0.0);
            assert_eq!(p.accuracy_proxy, 1.0);
        }
    }
}
