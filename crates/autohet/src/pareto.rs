//! Multi-objective exploration of the utilization/energy trade-off
//! (beyond-paper extension, DESIGN.md §6).
//!
//! The paper folds both objectives into one scalar (`R = u/e`, Eq. 2);
//! this module sweeps the exponents of the generalized reward `u^α / e`
//! and collects the resulting configurations, exposing the Pareto front a
//! designer would actually choose from: how much energy one extra point
//! of utilization costs at each operating point.

use crate::search::rl::{rl_search_with_engine, RlSearchConfig};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use std::sync::Arc;

/// One operating point of the sweep.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Utilization exponent α used for this search (`reward = u^α / e`).
    pub alpha: f64,
    /// Resulting strategy.
    pub strategy: Vec<XbarShape>,
    /// Resulting hardware report.
    pub report: EvalReport,
}

impl ParetoPoint {
    /// `(utilization %, energy nJ)` objective pair.
    pub fn objectives(&self) -> (f64, f64) {
        (self.report.utilization_pct(), self.report.energy_nj())
    }
}

/// Run one RL search per `alpha`, each maximizing `u^α / e` — on parallel
/// workers sharing one memoized engine (hardware reports don't depend on
/// the reward weights, so every operating point reuses the same cache).
pub fn pareto_sweep(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    alphas: &[f64],
) -> Vec<ParetoPoint> {
    let engine = Arc::new(EvalEngine::new(model.clone(), *cfg));
    crate::par::par_map(alphas, |&alpha| {
        let mut s = *scfg;
        s.reward_weights = (alpha, 1.0);
        let outcome = rl_search_with_engine(model, candidates, cfg, &s, Arc::clone(&engine));
        ParetoPoint {
            alpha,
            strategy: outcome.best_strategy,
            report: outcome.best_report,
        }
    })
}

/// Indices of the non-dominated points (maximize utilization, minimize
/// energy). A point dominates another when it is no worse on both axes
/// and strictly better on one.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        let (ui, ei) = p.objectives();
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let (uj, ej) = q.objectives();
            let dominates = uj >= ui && ej <= ei && (uj > ui || ej < ei);
            if dominates {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_rl::DdpgConfig;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick() -> RlSearchConfig {
        RlSearchConfig {
            episodes: 40,
            ddpg: DdpgConfig {
                seed: 31,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_alpha() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.5, 1.0, 3.0],
        );
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert_eq!(p.strategy.len(), m.layers.len());
            let (u, e) = p.objectives();
            assert!(u > 0.0 && e > 0.0);
        }
    }

    #[test]
    fn heavy_utilization_weight_biases_toward_utilization() {
        // α = 6 values utilization far above energy: the chosen point's
        // utilization must be ≥ the energy-biased point's.
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.25, 6.0],
        );
        let (u_energy_biased, _) = pts[0].objectives();
        let (u_util_biased, _) = pts[1].objectives();
        assert!(
            u_util_biased >= u_energy_biased - 1e-9,
            "{u_util_biased} < {u_energy_biased}"
        );
    }

    #[test]
    fn front_is_non_dominated() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.25, 0.5, 1.0, 2.0, 6.0],
        );
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        for &i in &front {
            let (ui, ei) = pts[i].objectives();
            for (j, q) in pts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (uj, ej) = q.objectives();
                assert!(
                    !(uj >= ui && ej <= ei && (uj > ui || ej < ei)),
                    "front point {i} dominated by {j}"
                );
            }
        }
    }

    #[test]
    fn front_of_identical_points_keeps_all() {
        let m = autohet_dnn::zoo::micro_cnn();
        let one = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[1.0],
        );
        let pts = vec![one[0].clone(), one[0].clone()];
        assert_eq!(pareto_front(&pts).len(), 2);
    }
}
