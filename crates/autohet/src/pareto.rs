//! Multi-objective exploration of the utilization/energy trade-off
//! (beyond-paper extension, DESIGN.md §6).
//!
//! The paper folds both objectives into one scalar (`R = u/e`, Eq. 2);
//! this module sweeps the exponents of the generalized reward `u^α / e`
//! and collects the resulting configurations, exposing the Pareto front a
//! designer would actually choose from: how much energy one extra point
//! of utilization costs at each operating point.

use crate::search::rl::{rl_search_with_engine, RlSearchConfig};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use std::sync::Arc;

/// One operating point of the sweep.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Utilization exponent α used for this search (`reward = u^α / e`).
    pub alpha: f64,
    /// Resulting strategy.
    pub strategy: Vec<XbarShape>,
    /// Resulting hardware report.
    pub report: EvalReport,
}

impl ParetoPoint {
    /// `(utilization %, energy nJ)` objective pair.
    pub fn objectives(&self) -> (f64, f64) {
        (self.report.utilization_pct(), self.report.energy_nj())
    }
}

/// Run one RL search per `alpha`, each maximizing `u^α / e` — on parallel
/// workers sharing one memoized engine (hardware reports don't depend on
/// the reward weights, so every operating point reuses the same cache).
pub fn pareto_sweep(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
    alphas: &[f64],
) -> Vec<ParetoPoint> {
    let engine = Arc::new(EvalEngine::new(model.clone(), *cfg));
    crate::par::par_map(alphas, |&alpha| {
        let mut s = *scfg;
        s.reward_weights = (alpha, 1.0);
        let outcome = rl_search_with_engine(model, candidates, cfg, &s, Arc::clone(&engine));
        ParetoPoint {
            alpha,
            strategy: outcome.best_strategy,
            report: outcome.best_report,
        }
    })
}

/// Pareto dominance over minimization objective vectors: `a` dominates
/// `b` when it is no worse on every axis and strictly better on at least
/// one. The shared primitive behind the 2-objective
/// [`pareto_front`] and the M-objective NSGA-II machinery
/// ([`non_dominated_sort`], [`crate::robust`]).
pub fn dominates_min(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        strictly |= x < y;
    }
    strictly
}

/// Fast non-dominated sorting (Deb et al., NSGA-II): partition point
/// indices into fronts — front 0 is the Pareto-optimal set, front `k+1`
/// is Pareto-optimal once fronts `0..=k` are removed. Objectives are all
/// minimized; `O(n²·M)` comparisons. Within a front, indices stay in
/// input order (deterministic).
pub fn non_dominated_sort(objectives: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    // dominated_by[i] = points i dominates; dom_count[i] = #points
    // dominating i.
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dom_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates_min(&objectives[i], &objectives[j]) {
                dominated_by[i].push(j);
                dom_count[j] += 1;
            } else if dominates_min(&objectives[j], &objectives[i]) {
                dominated_by[j].push(i);
                dom_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dom_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                dom_count[j] -= 1;
                if dom_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// NSGA-II crowding distance of each member of `front` (parallel to
/// `front`'s order): for every objective the front is sorted and each
/// member accumulates its neighbors' normalized gap; boundary members get
/// `+∞` so extremes are always preferred at equal rank.
pub fn crowding_distances(objectives: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0f64; n];
    if n == 0 {
        return dist;
    }
    let m = objectives[front[0]].len();
    #[allow(clippy::needless_range_loop)] // `obj` indexes several inner vectors
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            objectives[front[a]][obj]
                .partial_cmp(&objectives[front[b]][obj])
                .unwrap()
                .then(front[a].cmp(&front[b]))
        });
        let lo = objectives[front[order[0]]][obj];
        let hi = objectives[front[order[n - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..n.saturating_sub(1) {
            let below = objectives[front[order[w - 1]]][obj];
            let above = objectives[front[order[w + 1]]][obj];
            dist[order[w]] += (above - below) / span;
        }
    }
    dist
}

/// Indices of the non-dominated points (maximize utilization, minimize
/// energy). A point dominates another when it is no worse on both axes
/// and strictly better on one.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    let objectives: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let (u, e) = p.objectives();
            vec![-u, e] // maximize utilization → minimize its negation
        })
        .collect();
    (0..points.len())
        .filter(|&i| {
            objectives
                .iter()
                .all(|other| !dominates_min(other, &objectives[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_rl::DdpgConfig;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick() -> RlSearchConfig {
        RlSearchConfig {
            episodes: 40,
            ddpg: DdpgConfig {
                seed: 31,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_alpha() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.5, 1.0, 3.0],
        );
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert_eq!(p.strategy.len(), m.layers.len());
            let (u, e) = p.objectives();
            assert!(u > 0.0 && e > 0.0);
        }
    }

    #[test]
    fn heavy_utilization_weight_biases_toward_utilization() {
        // α = 6 values utilization far above energy: the chosen point's
        // utilization must be ≥ the energy-biased point's.
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.25, 6.0],
        );
        let (u_energy_biased, _) = pts[0].objectives();
        let (u_util_biased, _) = pts[1].objectives();
        assert!(
            u_util_biased >= u_energy_biased - 1e-9,
            "{u_util_biased} < {u_energy_biased}"
        );
    }

    #[test]
    fn front_is_non_dominated() {
        let m = autohet_dnn::zoo::micro_cnn();
        let pts = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[0.25, 0.5, 1.0, 2.0, 6.0],
        );
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        for &i in &front {
            let (ui, ei) = pts[i].objectives();
            for (j, q) in pts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (uj, ej) = q.objectives();
                assert!(
                    !(uj >= ui && ej <= ei && (uj > ui || ej < ei)),
                    "front point {i} dominated by {j}"
                );
            }
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates_min(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates_min(&[0.5, 2.0, 7.0], &[1.0, 3.0, 7.0]));
        assert!(!dominates_min(&[1.0, 2.0], &[1.0, 2.0])); // equal
        assert!(!dominates_min(&[0.0, 5.0], &[1.0, 2.0])); // trade-off
        assert!(!dominates_min(&[2.0, 2.0], &[1.0, 3.0]));
    }

    #[test]
    fn non_dominated_sort_layers_points() {
        // Front 0: (0,3), (1,1), (3,0); front 1: (2,2), (4,1); front 2: (5,5).
        let objs = vec![
            vec![0.0, 3.0],
            vec![2.0, 2.0],
            vec![1.0, 1.0],
            vec![5.0, 5.0],
            vec![3.0, 0.0],
            vec![4.0, 1.0],
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
        // Every point appears exactly once.
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, objs.len());
        // No member of a front is dominated by another member.
        for front in &fronts {
            for &i in front {
                for &j in front {
                    assert!(!dominates_min(&objs[j], &objs[i]));
                }
            }
        }
    }

    #[test]
    fn crowding_prefers_boundary_and_spread() {
        let objs = vec![
            vec![0.0, 4.0],
            vec![1.0, 2.0],
            vec![1.5, 1.5],
            vec![4.0, 0.0],
        ];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distances(&objs, &front);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[2].is_finite());
        // Point 2 borders the wide gap to the (4,0) extreme on both axes
        // (neighbor spans 0.75 + 0.5), point 1 is wedged between 0 and 2
        // (0.375 + 0.625): the emptier neighborhood scores higher.
        assert!((d[1] - 1.0).abs() < 1e-12, "{}", d[1]);
        assert!((d[2] - 1.25).abs() < 1e-12, "{}", d[2]);
        // Degenerate fronts stay well-defined.
        assert_eq!(crowding_distances(&objs, &[]), Vec::<f64>::new());
        let same = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let d = crowding_distances(&same, &[0, 1]);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn front_of_identical_points_keeps_all() {
        let m = autohet_dnn::zoo::micro_cnn();
        let one = pareto_sweep(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &quick(),
            &[1.0],
        );
        let pts = vec![one[0].clone(), one[0].clone()];
        assert_eq!(pareto_front(&pts).len(), 2);
    }
}
