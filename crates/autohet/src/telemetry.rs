//! Bridges from search trajectories to the `autohet-obs` substrate:
//! per-episode histories as a [`Series`] table and search outcomes
//! mirrored into a metrics [`Registry`].
//!
//! Every search driver ([`rl_search`](crate::search::rl::rl_search),
//! [`dqn_search`](crate::search::dqn::dqn_search),
//! [`annealing_search`](crate::search::annealing::annealing_search))
//! emits the same [`EpisodeRecord`] rows, so one exporter covers all of
//! them: a DDPG trace and an annealing trace land in the same CSV schema
//! and can be overlaid directly.

use crate::robust::{RobustPoint, RobustSearchOutcome};
use crate::search::rl::{EpisodeRecord, SearchTiming, VecSearchStats};
use autohet_obs::{Registry, Series};

/// Column schema of [`episode_series`] (name, unit), kept in one place so
/// docs and exporters cannot drift apart.
pub const EPISODE_COLUMNS: [(&str, &str); 6] = [
    ("episode", ""),
    ("rue", ""),
    ("reward", ""),
    ("utilization", ""),
    ("energy", "nJ"),
    ("cache_hit_rate", ""),
];

/// A search history as a time-series table (one row per episode, columns
/// per [`EPISODE_COLUMNS`]). `name` labels the series in exports, e.g.
/// `"ddpg_episodes"`.
pub fn episode_series(name: &str, history: &[EpisodeRecord]) -> Series {
    let mut s = Series::new(name, &EPISODE_COLUMNS);
    for e in history {
        s.push(vec![
            e.episode as f64,
            e.rue,
            e.reward,
            e.utilization,
            e.energy_nj,
            e.cache_hit_rate,
        ]);
    }
    s
}

/// Mirror a search's trajectory and timing into `registry` under
/// `prefix`: an episode counter, gauges for the best/final RUE seen
/// (scaled ×1e6 — gauges are integers, RUE values are small), and the
/// cache counters from the search's [`SearchTiming`] delta.
pub fn publish_episode_history(
    history: &[EpisodeRecord],
    timing: &SearchTiming,
    registry: &Registry,
    prefix: &str,
) {
    registry
        .counter(&format!("{prefix}.episodes"))
        .add(history.len() as u64);
    let best = history.iter().map(|e| e.rue).fold(f64::NAN, f64::max);
    if best.is_finite() {
        registry
            .gauge(&format!("{prefix}.best_rue_x1e6"))
            .set((best * 1e6) as i64);
    }
    if let Some(last) = history.last() {
        registry
            .gauge(&format!("{prefix}.last_rue_x1e6"))
            .set((last.rue * 1e6) as i64);
    }
    let c = |name: &str, v: u64| registry.counter(&format!("{prefix}.{name}")).add(v);
    c("cache.strategy_hits", timing.cache.strategy_hits);
    c("cache.strategy_misses", timing.cache.strategy_misses);
    c("cache.layer_hits", timing.cache.layer_hits);
    c("cache.layer_misses", timing.cache.layer_misses);
}

/// Column schema of [`vec_occupancy_series`] (name, unit).
pub const VEC_GROUP_COLUMNS: [(&str, &str); 2] = [("group", ""), ("occupancy", "")];

/// Per-group lane occupancy of a vectorized search as a window series
/// (one row per lockstep group). Only the trailing group of a search can
/// run below full occupancy, so a healthy trace is a flat line at 1.0
/// with at most one lower final point.
pub fn vec_occupancy_series(name: &str, stats: &VecSearchStats) -> Series {
    let mut s = Series::new(name, &VEC_GROUP_COLUMNS);
    for (g, &occ) in stats.group_occupancy.iter().enumerate() {
        s.push(vec![g as f64, occ]);
    }
    s
}

/// Mirror a vectorized search's throughput counters into `registry`
/// under `prefix`: episode/group counters, a lane gauge, and ×1000-scaled
/// gauges for episodes/sec and mean occupancy (gauges are integers).
/// Purely observational — publishing never feeds back into the search,
/// preserving the bit-identity-when-enabled contract.
pub fn publish_vec_search(stats: &VecSearchStats, registry: &Registry, prefix: &str) {
    registry
        .counter(&format!("{prefix}.episodes"))
        .add(stats.episodes as u64);
    registry
        .counter(&format!("{prefix}.groups"))
        .add(stats.groups as u64);
    registry
        .gauge(&format!("{prefix}.lanes"))
        .set(stats.lanes as i64);
    registry
        .gauge(&format!("{prefix}.episodes_per_sec_x1000"))
        .set((stats.episodes_per_sec * 1e3) as i64);
    registry
        .gauge(&format!("{prefix}.occupancy_x1000"))
        .set((stats.mean_occupancy * 1e3) as i64);
}

/// Column schema of [`front_series`] (name, unit).
pub const FRONT_COLUMNS: [(&str, &str); 6] = [
    ("point", ""),
    ("energy", "nJ"),
    ("latency", "ns"),
    ("noise_dev", ""),
    ("accuracy_proxy", ""),
    ("rue", ""),
];

/// A 3-objective Pareto front as a table (one row per front member,
/// columns per [`FRONT_COLUMNS`]), e.g. `name = "nsga_front"`.
pub fn front_series(name: &str, front: &[RobustPoint]) -> Series {
    let mut s = Series::new(name, &FRONT_COLUMNS);
    for (i, p) in front.iter().enumerate() {
        s.push(vec![
            i as f64,
            p.energy_nj,
            p.latency_ns,
            p.noise_dev,
            p.accuracy_proxy,
            p.rue,
        ]);
    }
    s
}

/// Mirror an NSGA-II search outcome into `registry` under `prefix`:
/// evaluation/generation counters, a front-size gauge, and ×1e6-scaled
/// gauges for the front's best noise deviation and best RUE (gauges are
/// integers). Purely observational.
pub fn publish_robust_search(outcome: &RobustSearchOutcome, registry: &Registry, prefix: &str) {
    registry
        .counter(&format!("{prefix}.evaluations"))
        .add(outcome.evaluations);
    registry
        .counter(&format!("{prefix}.generations"))
        .add(outcome.history.len() as u64);
    registry
        .gauge(&format!("{prefix}.front_size"))
        .set(outcome.front.len() as i64);
    if let Some(robust) = outcome.most_robust() {
        registry
            .gauge(&format!("{prefix}.best_noise_dev_x1e6"))
            .set((robust.noise_dev * 1e6) as i64);
    }
    if let Some(best) = outcome.best_rue() {
        registry
            .gauge(&format!("{prefix}.best_rue_x1e6"))
            .set((best.rue * 1e6) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Vec<EpisodeRecord> {
        (0..4)
            .map(|i| EpisodeRecord {
                episode: i,
                rue: 0.1 * (i + 1) as f64,
                reward: i as f64,
                utilization: 0.5,
                energy_nj: 1000.0,
                cache_hit_rate: 0.25 * i as f64,
            })
            .collect()
    }

    #[test]
    fn series_has_one_row_per_episode() {
        let s = episode_series("ddpg_episodes", &history());
        assert_eq!(s.len(), 4);
        assert_eq!(s.columns.len(), EPISODE_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("episode,rue,reward,utilization,energy[nJ],cache_hit_rate"));
        assert_eq!(csv.lines().count(), 5);
        assert_eq!(s.to_jsonl().lines().count(), 4);
    }

    #[test]
    fn publish_mirrors_counts_and_best() {
        let reg = Registry::new();
        let mut timing = SearchTiming::default();
        timing.cache.strategy_hits = 3;
        timing.cache.layer_misses = 7;
        publish_episode_history(&history(), &timing, &reg, "search.ddpg");
        assert_eq!(reg.counter("search.ddpg.episodes").get(), 4);
        // Best RUE is 0.4 → 400_000 in the ×1e6 gauge.
        assert_eq!(reg.gauge("search.ddpg.best_rue_x1e6").get(), 400_000);
        assert_eq!(reg.gauge("search.ddpg.last_rue_x1e6").get(), 400_000);
        assert_eq!(reg.counter("search.ddpg.cache.strategy_hits").get(), 3);
        assert_eq!(reg.counter("search.ddpg.cache.layer_misses").get(), 7);
    }

    fn vec_stats() -> VecSearchStats {
        VecSearchStats {
            lanes: 4,
            groups: 3,
            episodes: 9,
            episodes_per_sec: 123.456,
            group_occupancy: vec![1.0, 1.0, 0.25],
            mean_occupancy: 0.75,
        }
    }

    #[test]
    fn occupancy_series_has_one_row_per_group() {
        let s = vec_occupancy_series("vec_groups", &vec_stats());
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns.len(), VEC_GROUP_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("group,occupancy"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn publish_vec_search_mirrors_throughput() {
        let reg = Registry::new();
        publish_vec_search(&vec_stats(), &reg, "search.vec");
        assert_eq!(reg.counter("search.vec.episodes").get(), 9);
        assert_eq!(reg.counter("search.vec.groups").get(), 3);
        assert_eq!(reg.gauge("search.vec.lanes").get(), 4);
        assert_eq!(
            reg.gauge("search.vec.episodes_per_sec_x1000").get(),
            123_456
        );
        assert_eq!(reg.gauge("search.vec.occupancy_x1000").get(), 750);
    }

    fn front() -> Vec<RobustPoint> {
        use autohet_xbar::XbarShape;
        (0..3)
            .map(|i| RobustPoint {
                strategy: vec![XbarShape::square(32 << i); 2],
                energy_nj: 1000.0 + 100.0 * i as f64,
                latency_ns: 500.0 - 50.0 * i as f64,
                noise_dev: 0.05 / (i + 1) as f64,
                accuracy_proxy: 0.9,
                rue: 0.02 * (i + 1) as f64,
            })
            .collect()
    }

    #[test]
    fn front_series_has_one_row_per_point() {
        let s = front_series("nsga_front", &front());
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns.len(), FRONT_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("point,energy[nJ],latency[ns],noise_dev,accuracy_proxy,rue"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn publish_robust_search_mirrors_front() {
        let outcome = RobustSearchOutcome {
            front: front(),
            history: vec![
                crate::robust::GenerationStat {
                    generation: 0,
                    front_size: 3,
                    best_energy_nj: 1000.0,
                    best_latency_ns: 400.0,
                    best_noise_dev: 0.05 / 3.0,
                };
                5
            ],
            evaluations: 40,
        };
        let reg = Registry::new();
        publish_robust_search(&outcome, &reg, "search.nsga");
        assert_eq!(reg.counter("search.nsga.evaluations").get(), 40);
        assert_eq!(reg.counter("search.nsga.generations").get(), 5);
        assert_eq!(reg.gauge("search.nsga.front_size").get(), 3);
        // Most robust point: noise_dev 0.05/3 → 16_666 in the ×1e6 gauge.
        assert_eq!(reg.gauge("search.nsga.best_noise_dev_x1e6").get(), 16_666);
        assert_eq!(reg.gauge("search.nsga.best_rue_x1e6").get(), 60_000);
    }

    #[test]
    fn empty_history_publishes_no_gauges() {
        let reg = Registry::new();
        publish_episode_history(&[], &SearchTiming::default(), &reg, "x");
        assert_eq!(reg.counter("x.episodes").get(), 0);
        let text = reg.to_text();
        assert!(!text.contains("best_rue"));
    }
}
