//! Bridges from search trajectories to the `autohet-obs` substrate:
//! per-episode histories as a [`Series`] table and search outcomes
//! mirrored into a metrics [`Registry`].
//!
//! Every search driver ([`rl_search`](crate::search::rl::rl_search),
//! [`dqn_search`](crate::search::dqn::dqn_search),
//! [`annealing_search`](crate::search::annealing::annealing_search))
//! emits the same [`EpisodeRecord`] rows, so one exporter covers all of
//! them: a DDPG trace and an annealing trace land in the same CSV schema
//! and can be overlaid directly.

use crate::robust::{RobustPoint, RobustSearchOutcome};
use crate::search::rl::{EpisodeRecord, SearchTiming, VecSearchStats};
use autohet_obs::alert::{AlertEngine, AlertRule, AlertTimeline, ThresholdRule};
use autohet_obs::export::{SeriesStream, Sink};
use autohet_obs::{Registry, Series};

/// Column schema of [`episode_series`] (name, unit), kept in one place so
/// docs and exporters cannot drift apart.
pub const EPISODE_COLUMNS: [(&str, &str); 6] = [
    ("episode", ""),
    ("rue", ""),
    ("reward", ""),
    ("utilization", ""),
    ("energy", "nJ"),
    ("cache_hit_rate", ""),
];

/// A search history as a time-series table (one row per episode, columns
/// per [`EPISODE_COLUMNS`]). `name` labels the series in exports, e.g.
/// `"ddpg_episodes"`.
pub fn episode_series(name: &str, history: &[EpisodeRecord]) -> Series {
    let mut s = Series::new(name, &EPISODE_COLUMNS);
    for e in history {
        s.push(vec![
            e.episode as f64,
            e.rue,
            e.reward,
            e.utilization,
            e.energy_nj,
            e.cache_hit_rate,
        ]);
    }
    s
}

/// Mirror a search's trajectory and timing into `registry` under
/// `prefix`: an episode counter, gauges for the best/final RUE seen
/// (scaled ×1e6 — gauges are integers, RUE values are small), and the
/// cache counters from the search's [`SearchTiming`] delta.
pub fn publish_episode_history(
    history: &[EpisodeRecord],
    timing: &SearchTiming,
    registry: &Registry,
    prefix: &str,
) {
    registry
        .counter(&format!("{prefix}.episodes"))
        .add(history.len() as u64);
    let best = history.iter().map(|e| e.rue).fold(f64::NAN, f64::max);
    if best.is_finite() {
        registry
            .gauge(&format!("{prefix}.best_rue_x1e6"))
            .set((best * 1e6) as i64);
    }
    if let Some(last) = history.last() {
        registry
            .gauge(&format!("{prefix}.last_rue_x1e6"))
            .set((last.rue * 1e6) as i64);
    }
    let c = |name: &str, v: u64| registry.counter(&format!("{prefix}.{name}")).add(v);
    c("cache.strategy_hits", timing.cache.strategy_hits);
    c("cache.strategy_misses", timing.cache.strategy_misses);
    c("cache.layer_hits", timing.cache.layer_hits);
    c("cache.layer_misses", timing.cache.layer_misses);
}

/// Streaming twin of [`episode_series`]: writes each [`EpisodeRecord`]
/// through a [`Sink`] as it is produced (schema per [`EPISODE_COLUMNS`]),
/// so long campaigns leave a usable JSONL trace even if killed mid-run.
/// Attachable to the vectorized DDPG driver via
/// [`SearchTap`](crate::search::rl::SearchTap); purely observational —
/// the search never reads anything back.
pub struct EpisodeStream {
    stream: SeriesStream,
}

impl EpisodeStream {
    pub fn new(name: &str, sink: Box<dyn Sink>) -> Self {
        let columns: Vec<&str> = EPISODE_COLUMNS.iter().map(|(c, _)| *c).collect();
        EpisodeStream {
            stream: SeriesStream::new(name, &columns, sink),
        }
    }

    /// Write one episode row.
    pub fn push(&mut self, e: &EpisodeRecord) {
        self.stream.push(&[
            e.episode as f64,
            e.rue,
            e.reward,
            e.utilization,
            e.energy_nj,
            e.cache_hit_rate,
        ]);
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> u64 {
        self.stream.rows_written()
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) {
        self.stream.flush();
    }
}

/// Name of the rule a [`StallDetector`] installs.
pub const REWARD_STALL_RULE: &str = "search.reward_stall";

/// Reward-stall detector for search drivers, built on the shared alert
/// engine: tracks the best reward seen and feeds the count of episodes
/// since the last improvement through a threshold rule, so a stalled
/// search surfaces on the same pending → firing → resolved timeline as
/// serving alerts (timestamps are episode indices, not nanoseconds).
/// Observation only — detecting a stall never changes the search.
pub struct StallDetector {
    engine: AlertEngine,
    best_reward: f64,
    since_improvement: u64,
    /// Minimum relative reward improvement that resets the stall clock.
    min_delta: f64,
}

impl StallDetector {
    /// Fire after `patience` consecutive episodes without the best reward
    /// improving by at least `min_delta` (absolute).
    pub fn new(patience: u64, min_delta: f64) -> Self {
        StallDetector {
            engine: AlertEngine::new().with_rule(AlertRule::Threshold(
                ThresholdRule::above(
                    REWARD_STALL_RULE,
                    "episodes_since_improvement",
                    patience as f64 - 0.5,
                )
                .clear_samples(1),
            )),
            best_reward: f64::NEG_INFINITY,
            since_improvement: 0,
            min_delta,
        }
    }

    /// Observe one episode's reward (episode indices must be fed in
    /// order; they become the timeline's timestamps).
    pub fn observe(&mut self, episode: usize, reward: f64) {
        if reward > self.best_reward + self.min_delta {
            self.best_reward = reward;
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
        self.engine.observe(
            episode as u64,
            &[("episodes_since_improvement", self.since_improvement as f64)],
        );
    }

    /// Whether the stall rule is currently firing.
    pub fn is_stalled(&self) -> bool {
        self.engine.is_firing(REWARD_STALL_RULE)
    }

    /// Best reward observed so far (−∞ before any observation).
    pub fn best_reward(&self) -> f64 {
        self.best_reward
    }

    /// Consume the detector into its alert timeline (timestamps are
    /// episode indices).
    pub fn finish(self) -> AlertTimeline {
        self.engine.finish()
    }
}

/// Column schema of [`vec_occupancy_series`] (name, unit).
pub const VEC_GROUP_COLUMNS: [(&str, &str); 2] = [("group", ""), ("occupancy", "")];

/// Per-group lane occupancy of a vectorized search as a window series
/// (one row per lockstep group). Only the trailing group of a search can
/// run below full occupancy, so a healthy trace is a flat line at 1.0
/// with at most one lower final point.
pub fn vec_occupancy_series(name: &str, stats: &VecSearchStats) -> Series {
    let mut s = Series::new(name, &VEC_GROUP_COLUMNS);
    for (g, &occ) in stats.group_occupancy.iter().enumerate() {
        s.push(vec![g as f64, occ]);
    }
    s
}

/// Mirror a vectorized search's throughput counters into `registry`
/// under `prefix`: episode/group counters, a lane gauge, and ×1000-scaled
/// gauges for episodes/sec and mean occupancy (gauges are integers).
/// Purely observational — publishing never feeds back into the search,
/// preserving the bit-identity-when-enabled contract.
pub fn publish_vec_search(stats: &VecSearchStats, registry: &Registry, prefix: &str) {
    registry
        .counter(&format!("{prefix}.episodes"))
        .add(stats.episodes as u64);
    registry
        .counter(&format!("{prefix}.groups"))
        .add(stats.groups as u64);
    registry
        .gauge(&format!("{prefix}.lanes"))
        .set(stats.lanes as i64);
    registry
        .gauge(&format!("{prefix}.episodes_per_sec_x1000"))
        .set((stats.episodes_per_sec * 1e3) as i64);
    registry
        .gauge(&format!("{prefix}.occupancy_x1000"))
        .set((stats.mean_occupancy * 1e3) as i64);
}

/// Column schema of [`front_series`] (name, unit).
pub const FRONT_COLUMNS: [(&str, &str); 6] = [
    ("point", ""),
    ("energy", "nJ"),
    ("latency", "ns"),
    ("noise_dev", ""),
    ("accuracy_proxy", ""),
    ("rue", ""),
];

/// A 3-objective Pareto front as a table (one row per front member,
/// columns per [`FRONT_COLUMNS`]), e.g. `name = "nsga_front"`.
pub fn front_series(name: &str, front: &[RobustPoint]) -> Series {
    let mut s = Series::new(name, &FRONT_COLUMNS);
    for (i, p) in front.iter().enumerate() {
        s.push(vec![
            i as f64,
            p.energy_nj,
            p.latency_ns,
            p.noise_dev,
            p.accuracy_proxy,
            p.rue,
        ]);
    }
    s
}

/// Mirror an NSGA-II search outcome into `registry` under `prefix`:
/// evaluation/generation counters, a front-size gauge, and ×1e6-scaled
/// gauges for the front's best noise deviation and best RUE (gauges are
/// integers). Purely observational.
pub fn publish_robust_search(outcome: &RobustSearchOutcome, registry: &Registry, prefix: &str) {
    registry
        .counter(&format!("{prefix}.evaluations"))
        .add(outcome.evaluations);
    registry
        .counter(&format!("{prefix}.generations"))
        .add(outcome.history.len() as u64);
    registry
        .gauge(&format!("{prefix}.front_size"))
        .set(outcome.front.len() as i64);
    if let Some(robust) = outcome.most_robust() {
        registry
            .gauge(&format!("{prefix}.best_noise_dev_x1e6"))
            .set((robust.noise_dev * 1e6) as i64);
    }
    if let Some(best) = outcome.best_rue() {
        registry
            .gauge(&format!("{prefix}.best_rue_x1e6"))
            .set((best.rue * 1e6) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Vec<EpisodeRecord> {
        (0..4)
            .map(|i| EpisodeRecord {
                episode: i,
                rue: 0.1 * (i + 1) as f64,
                reward: i as f64,
                utilization: 0.5,
                energy_nj: 1000.0,
                cache_hit_rate: 0.25 * i as f64,
            })
            .collect()
    }

    #[test]
    fn series_has_one_row_per_episode() {
        let s = episode_series("ddpg_episodes", &history());
        assert_eq!(s.len(), 4);
        assert_eq!(s.columns.len(), EPISODE_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("episode,rue,reward,utilization,energy[nJ],cache_hit_rate"));
        assert_eq!(csv.lines().count(), 5);
        assert_eq!(s.to_jsonl().lines().count(), 4);
    }

    #[test]
    fn publish_mirrors_counts_and_best() {
        let reg = Registry::new();
        let mut timing = SearchTiming::default();
        timing.cache.strategy_hits = 3;
        timing.cache.layer_misses = 7;
        publish_episode_history(&history(), &timing, &reg, "search.ddpg");
        assert_eq!(reg.counter("search.ddpg.episodes").get(), 4);
        // Best RUE is 0.4 → 400_000 in the ×1e6 gauge.
        assert_eq!(reg.gauge("search.ddpg.best_rue_x1e6").get(), 400_000);
        assert_eq!(reg.gauge("search.ddpg.last_rue_x1e6").get(), 400_000);
        assert_eq!(reg.counter("search.ddpg.cache.strategy_hits").get(), 3);
        assert_eq!(reg.counter("search.ddpg.cache.layer_misses").get(), 7);
    }

    fn vec_stats() -> VecSearchStats {
        VecSearchStats {
            lanes: 4,
            groups: 3,
            episodes: 9,
            episodes_per_sec: 123.456,
            group_occupancy: vec![1.0, 1.0, 0.25],
            mean_occupancy: 0.75,
        }
    }

    #[test]
    fn occupancy_series_has_one_row_per_group() {
        let s = vec_occupancy_series("vec_groups", &vec_stats());
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns.len(), VEC_GROUP_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("group,occupancy"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn publish_vec_search_mirrors_throughput() {
        let reg = Registry::new();
        publish_vec_search(&vec_stats(), &reg, "search.vec");
        assert_eq!(reg.counter("search.vec.episodes").get(), 9);
        assert_eq!(reg.counter("search.vec.groups").get(), 3);
        assert_eq!(reg.gauge("search.vec.lanes").get(), 4);
        assert_eq!(
            reg.gauge("search.vec.episodes_per_sec_x1000").get(),
            123_456
        );
        assert_eq!(reg.gauge("search.vec.occupancy_x1000").get(), 750);
    }

    fn front() -> Vec<RobustPoint> {
        use autohet_xbar::XbarShape;
        (0..3)
            .map(|i| RobustPoint {
                strategy: vec![XbarShape::square(32 << i); 2],
                energy_nj: 1000.0 + 100.0 * i as f64,
                latency_ns: 500.0 - 50.0 * i as f64,
                noise_dev: 0.05 / (i + 1) as f64,
                accuracy_proxy: 0.9,
                rue: 0.02 * (i + 1) as f64,
            })
            .collect()
    }

    #[test]
    fn front_series_has_one_row_per_point() {
        let s = front_series("nsga_front", &front());
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns.len(), FRONT_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("point,energy[nJ],latency[ns],noise_dev,accuracy_proxy,rue"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn publish_robust_search_mirrors_front() {
        let outcome = RobustSearchOutcome {
            front: front(),
            history: vec![
                crate::robust::GenerationStat {
                    generation: 0,
                    front_size: 3,
                    best_energy_nj: 1000.0,
                    best_latency_ns: 400.0,
                    best_noise_dev: 0.05 / 3.0,
                };
                5
            ],
            evaluations: 40,
        };
        let reg = Registry::new();
        publish_robust_search(&outcome, &reg, "search.nsga");
        assert_eq!(reg.counter("search.nsga.evaluations").get(), 40);
        assert_eq!(reg.counter("search.nsga.generations").get(), 5);
        assert_eq!(reg.gauge("search.nsga.front_size").get(), 3);
        // Most robust point: noise_dev 0.05/3 → 16_666 in the ×1e6 gauge.
        assert_eq!(reg.gauge("search.nsga.best_noise_dev_x1e6").get(), 16_666);
        assert_eq!(reg.gauge("search.nsga.best_rue_x1e6").get(), 60_000);
    }

    #[test]
    fn empty_history_publishes_no_gauges() {
        let reg = Registry::new();
        publish_episode_history(&[], &SearchTiming::default(), &reg, "x");
        assert_eq!(reg.counter("x.episodes").get(), 0);
        let text = reg.to_text();
        assert!(!text.contains("best_rue"));
    }

    #[test]
    fn episode_stream_mirrors_the_series_schema() {
        let sink = autohet_obs::MemorySink::new();
        let mut stream = EpisodeStream::new("ep", Box::new(sink.clone()));
        for e in history() {
            stream.push(&e);
        }
        stream.flush();
        assert_eq!(stream.rows_written(), 4);
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        // Same rows the batch exporter would produce, keyed by column.
        assert!(lines[0].starts_with("{\"episode\":0,\"rue\":0.1,\"reward\":0,"));
        for (name, _) in EPISODE_COLUMNS {
            assert!(lines[0].contains(&format!("\"{name}\":")), "{name}");
        }
    }

    #[test]
    fn stall_detector_fires_after_patience_and_resolves_on_improvement() {
        let mut d = StallDetector::new(3, 1e-9);
        // Improving rewards: no stall.
        d.observe(0, 1.0);
        d.observe(1, 2.0);
        assert!(!d.is_stalled());
        // Flat rewards: stalls on the 3rd non-improving episode.
        d.observe(2, 2.0);
        d.observe(3, 2.0);
        assert!(!d.is_stalled());
        d.observe(4, 2.0);
        assert!(d.is_stalled());
        // A breakthrough resolves the stall.
        d.observe(5, 3.0);
        assert!(!d.is_stalled());
        assert_eq!(d.best_reward(), 3.0);
        let t = d.finish();
        let stall = t.for_rule(REWARD_STALL_RULE);
        let kinds: Vec<&str> = stall.iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["firing", "resolved"]);
        assert_eq!(stall[0].t_ns, 4, "fired at episode 4");
        assert_eq!(stall[1].t_ns, 5);
    }

    #[test]
    fn stall_detector_is_deterministic() {
        let run = || {
            let mut d = StallDetector::new(2, 0.0);
            for (i, r) in [1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0].iter().enumerate() {
                d.observe(i, *r);
            }
            d.finish()
        };
        assert_eq!(run(), run());
    }
}
