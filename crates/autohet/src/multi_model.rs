//! Multi-model co-search (extension, DESIGN.md §6).
//!
//! §3.4 notes that tiles freed by sharing "become available for other
//! layers in the DNN model *or other models*". This module takes that to
//! its conclusion: several DNNs deployed on one accelerator are searched
//! *jointly* — the layer walk concatenates every model's layers, and the
//! tile-shared allocator packs all of them into one tile pool (Algorithm 1
//! groups by crossbar shape, so cross-model sharing falls out of the same
//! mechanism). Latency semantics: the models run sequentially on the
//! shared hardware, so leakage is charged over the combined runtime.

use crate::homogeneous::best_homogeneous;
use crate::search::rl::{rl_search_with_engine, RlSearchConfig};
use autohet_accel::{AccelConfig, EvalEngine, EvalReport};
use autohet_dnn::{Dataset, Model};
use autohet_xbar::XbarShape;
use std::sync::Arc;

/// Concatenate several models into one "super-model" whose layers are the
/// inputs' layers re-indexed in order. Returns the model plus each input's
/// layer offset. The super-model is mapping-only (no inference pipeline).
pub fn concat_models(models: &[Model]) -> (Model, Vec<usize>) {
    assert!(!models.is_empty());
    let mut layers = Vec::new();
    let mut offsets = Vec::with_capacity(models.len());
    let mut name = String::new();
    for m in models {
        offsets.push(layers.len());
        for l in &m.layers {
            let mut l = *l;
            l.index = layers.len();
            layers.push(l);
        }
        if !name.is_empty() {
            name.push('+');
        }
        name.push_str(&m.name);
    }
    (
        Model {
            name,
            // Geometry bookkeeping only; per-layer `in_size` is already
            // baked into each layer.
            dataset: models[0].dataset,
            layers,
            stages: Vec::new(),
        },
        offsets,
    )
}

/// Split a super-model strategy back into per-model strategies.
pub fn split_strategy(
    strategy: &[XbarShape],
    models: &[Model],
    offsets: &[usize],
) -> Vec<Vec<XbarShape>> {
    models
        .iter()
        .zip(offsets)
        .map(|(m, &o)| strategy[o..o + m.layers.len()].to_vec())
        .collect()
}

/// Result of a joint search.
#[derive(Debug, Clone)]
pub struct CoSearchOutcome {
    /// Per-model strategies (indexed like the input models).
    pub strategies: Vec<Vec<XbarShape>>,
    /// Joint hardware report (shared tile pool, sequential execution).
    pub joint: EvalReport,
}

/// Jointly search strategies for several models sharing one accelerator.
/// The per-model best-homogeneous configuration (stitched together) is
/// evaluated as a floor, so co-search can only improve on deploying each
/// model's naive best side by side.
pub fn co_search(
    models: &[Model],
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &RlSearchConfig,
) -> CoSearchOutcome {
    let shared = cfg.with_tile_sharing();
    let (joint_model, offsets) = concat_models(models);
    let engine = Arc::new(EvalEngine::new(joint_model.clone(), shared));

    let outcome =
        rl_search_with_engine(&joint_model, candidates, &shared, scfg, Arc::clone(&engine));

    // Floor: each model on its own best homogeneous shape, co-located.
    let mut stitched = Vec::with_capacity(joint_model.layers.len());
    for m in models {
        let (shape, _) = best_homogeneous(m, cfg);
        stitched.extend(std::iter::repeat(shape).take(m.layers.len()));
    }
    let floor = engine.evaluate(&stitched);

    let (best_strategy, joint) = if floor.rue() > outcome.best_report.rue() {
        (stitched, floor)
    } else {
        (outcome.best_strategy, outcome.best_report)
    };

    CoSearchOutcome {
        strategies: split_strategy(&best_strategy, models, &offsets),
        joint,
    }
}

/// Sanity helper for tests/examples: a deterministic pair of small models
/// with distinct datasets.
pub fn demo_pair() -> Vec<Model> {
    let a = autohet_dnn::zoo::micro_cnn();
    let b = autohet_dnn::zoo::test_cnn();
    debug_assert_ne!(a.dataset, Dataset::ImageNet);
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_accel::evaluate;
    use autohet_rl::DdpgConfig;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn quick() -> RlSearchConfig {
        RlSearchConfig {
            episodes: 40,
            ddpg: DdpgConfig {
                seed: 19,
                hidden: 32,
                batch: 32,
                ..DdpgConfig::default()
            },
            train_steps: 4,
            ..RlSearchConfig::default()
        }
    }

    #[test]
    fn concat_reindexes_layers() {
        let models = demo_pair();
        let (joint, offsets) = concat_models(&models);
        assert_eq!(offsets, vec![0, models[0].layers.len()]);
        assert_eq!(
            joint.layers.len(),
            models[0].layers.len() + models[1].layers.len()
        );
        for (i, l) in joint.layers.iter().enumerate() {
            assert_eq!(l.index, i);
        }
        assert_eq!(joint.name, "MicroCNN+TestCNN");
    }

    #[test]
    fn split_round_trips() {
        let models = demo_pair();
        let (joint, offsets) = concat_models(&models);
        let strategy: Vec<XbarShape> = (0..joint.layers.len())
            .map(|i| paper_hybrid_candidates()[i % 5])
            .collect();
        let split = split_strategy(&strategy, &models, &offsets);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].len(), models[0].layers.len());
        let rejoined: Vec<XbarShape> = split.concat();
        assert_eq!(rejoined, strategy);
    }

    #[test]
    fn co_search_beats_side_by_side_best_homogeneous() {
        let models = demo_pair();
        let cfg = AccelConfig::default();
        let outcome = co_search(&models, &paper_hybrid_candidates(), &cfg, &quick());
        // Floor logic guarantees ≥ stitched best-homo.
        let (joint_model, _) = concat_models(&models);
        let mut stitched = Vec::new();
        for m in &models {
            let (shape, _) = best_homogeneous(m, &cfg);
            stitched.extend(std::iter::repeat(shape).take(m.layers.len()));
        }
        let floor = evaluate(&joint_model, &stitched, &cfg.with_tile_sharing());
        assert!(outcome.joint.rue() >= floor.rue());
        assert_eq!(outcome.strategies.len(), 2);
    }

    #[test]
    fn joint_pool_never_needs_more_tiles_than_separate_pools() {
        let models = demo_pair();
        let shared = AccelConfig::default().with_tile_sharing();
        let shape = XbarShape::new(72, 64);
        let (joint_model, _) = concat_models(&models);
        let joint = evaluate(
            &joint_model,
            &vec![shape; joint_model.layers.len()],
            &shared,
        );
        let separate: u64 = models
            .iter()
            .map(|m| evaluate(m, &vec![shape; m.layers.len()], &shared).tiles)
            .sum();
        assert!(joint.tiles <= separate);
    }
}
