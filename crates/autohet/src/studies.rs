//! Beyond-paper ablation studies (DESIGN.md §6).
//!
//! The paper fixes several design constants without sweeping them; these
//! studies quantify the choices:
//!
//! - [`adc_resolution_sweep`]: the paper pins ADCs at 10 bits "to support
//!   crossbars of all heterogeneous sizes". This sweep shows the
//!   energy/area cost of each extra bit and which candidate shapes become
//!   numerically unsafe (bitline clipping) at lower resolutions.
//! - [`rxb_height_study`]: §3.3 sets rectangle heights to multiples of 9.
//!   This study scores alternative height families on a 3×3-kernel model
//!   and shows multiples of 9 are exactly right.
//! - [`multi_model_sharing_study`]: §3.4 remarks freed tiles can serve
//!   "other models" — this measures how many tiles joint allocation of
//!   several DNNs saves over per-model allocation.
//! - [`serving_study`]: the paper evaluates accelerators one inference at
//!   a time; this study puts four deployment configurations (homogeneous
//!   vs. AutoHet strategy × tile-based vs. tile-shared allocation) behind
//!   the `autohet-serve` queueing simulator under an *identical* request
//!   stream and compares tail latency, SLO attainment, and energy.
//! - [`fault_campaign`]: the paper assumes ideal devices; this campaign
//!   sweeps a component fault rate across the same four deployment
//!   configurations, repairs each allocation (spares → remap → degrade,
//!   DESIGN.md §7), serves the degraded deployment under replica-failure
//!   events scaled with the fault rate, and reports how fidelity, energy,
//!   and SLO attainment decay end to end.
//! - [`lifetime_campaign`]: the paper evaluates hardware at deploy time
//!   only; this campaign ages each deployment along a seeded conductance-
//!   drift trajectory (DESIGN.md §12), evaluates it at a lifetime epoch
//!   under three recovery arms (no recovery, recalibrate-only, the full
//!   detect → recalibrate → remap cascade), serves the epoch hardware
//!   with the matching online drift process, and reports whether the full
//!   cascade retains strictly better SLO attainment and accuracy than
//!   running unprotected.
//! - [`search_throughput_study`]: the paper quotes 49.2 min for a
//!   300-round search (§4.5) but never varies the search driver itself;
//!   this study scales the vectorized driver's lane count and reports
//!   episodes/sec, speed-up over the sequential driver, and the best RUE
//!   each batching level reaches (DESIGN.md §10).
//! - [`robustness_study`]: the paper scores mappings on ideal devices;
//!   this study prices lognormal device variation into the objective,
//!   compares every homogeneous baseline and the noise-blind greedy
//!   AutoHet mapping against the NSGA-II robustness front
//!   ([`crate::robust`]), and reports whether the noise-robust pick
//!   differs from the noise-blind winner (DESIGN.md §11).

use crate::homogeneous::best_homogeneous;
use crate::par::par_map;
use crate::robust::{nsga_search_with_engine, GenerationStat, NsgaConfig};
use crate::search::greedy::{greedy_layerwise_rue, greedy_layerwise_rue_with_engine};
use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::tile_shared::{apply_tile_sharing, share_across_models};
use autohet_accel::{
    evaluate, AccelConfig, DriftEvalConfig, EvalEngine, NoiseEvalConfig, NoisyEvalReport,
    RecoveryPolicy, RepairPolicy,
};
use autohet_dnn::{LayerKind, Model};
use autohet_serve::{
    run_serving, Deployment, FailureSpec, HealthSpec, ServeConfig, TenantSpec, Workload,
};
use autohet_xbar::fault::FaultRates;
use autohet_xbar::geometry::paper_hybrid_candidates;
use autohet_xbar::utilization::footprint;
use autohet_xbar::DriftModel;
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One point of the ADC-resolution sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcPoint {
    /// ADC resolution in bits.
    pub bits: u32,
    /// Total energy for the evaluated strategy [nJ].
    pub energy_nj: f64,
    /// Total area [µm²].
    pub area_um2: f64,
    /// RUE at this resolution.
    pub rue: f64,
    /// Largest bitline sum any candidate can produce (= tallest candidate
    /// height with 1-bit cells); conversion is lossless iff this fits.
    pub worst_case_level: u32,
    /// Whether every hybrid candidate converts losslessly.
    pub lossless: bool,
}

/// Sweep ADC resolution for a fixed strategy on `model`.
pub fn adc_resolution_sweep(model: &Model, strategy: &[XbarShape], bits: &[u32]) -> Vec<AdcPoint> {
    let tallest = strategy.iter().map(|s| s.rows).max().unwrap_or(0);
    bits.iter()
        .map(|&b| {
            let mut cfg = AccelConfig::default();
            cfg.cost.adc_bits = b;
            let r = evaluate(model, strategy, &cfg);
            AdcPoint {
                bits: b,
                energy_nj: r.energy_nj(),
                area_um2: r.area_um2,
                rue: r.rue(),
                worst_case_level: tallest,
                lossless: (1_u64 << b) > tallest as u64,
            }
        })
        .collect()
}

/// One rectangle-height family's score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeightFamily {
    /// Family label, e.g. `"multiples of 9"`.
    pub label: String,
    /// The heights evaluated (at width 64).
    pub heights: Vec<u32>,
    /// Mean best-height Eq. 4 utilization over the model's 3×3 layers.
    pub mean_utilization: f64,
}

/// Compare rectangle-height families at a fixed width on the model's
/// 3×3-kernel layers: for each conv layer take the best height within the
/// family, then average.
pub fn rxb_height_study(model: &Model, width: u32) -> Vec<HeightFamily> {
    let families: Vec<(&str, Vec<u32>)> = vec![
        ("power-of-two", vec![32, 64, 128, 256]),
        ("multiples of 8", vec![40, 72, 136, 264]),
        ("multiples of 9 (paper)", vec![36, 72, 144, 288]),
        ("multiples of 10", vec![40, 70, 140, 290]),
    ];
    let layers: Vec<_> = model
        .layers
        .iter()
        .filter(|l| l.kind == LayerKind::Conv && l.kernel == 3)
        .collect();
    assert!(!layers.is_empty(), "model has no 3x3 conv layers");
    families
        .into_iter()
        .map(|(label, heights)| {
            let mean = layers
                .iter()
                .map(|l| {
                    heights
                        .iter()
                        .map(|&h| footprint(l, XbarShape::new(h, width)).utilization())
                        .fold(0.0_f64, f64::max)
                })
                .sum::<f64>()
                / layers.len() as f64;
            HeightFamily {
                label: label.into(),
                heights,
                mean_utilization: mean,
            }
        })
        .collect()
}

/// Result of the multi-model sharing study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiModelSharing {
    /// Tiles with no sharing at all.
    pub tiles_unshared: usize,
    /// Tiles when each model shares only internally.
    pub tiles_per_model: usize,
    /// Tiles when all models share one tile pool.
    pub tiles_joint: usize,
}

/// Allocate every model on `shape` crossbars and compare no / per-model /
/// cross-model tile sharing.
pub fn multi_model_sharing_study(
    models: &[Model],
    shape: XbarShape,
    capacity: u32,
) -> MultiModelSharing {
    let allocs: Vec<_> = models
        .iter()
        .map(|m| allocate_tile_based(m, &vec![shape; m.layers.len()], capacity))
        .collect();
    let tiles_unshared = allocs.iter().map(|a| a.tiles.len()).sum();
    let tiles_per_model = allocs
        .iter()
        .map(|a| {
            let mut a = a.clone();
            apply_tile_sharing(&mut a);
            a.tiles.len()
        })
        .sum();
    let (merged, _, _) = share_across_models(allocs);
    MultiModelSharing {
        tiles_unshared,
        tiles_per_model,
        tiles_joint: merged.tiles.len(),
    }
}

/// One deployment configuration's serving outcome under the shared load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingStudyRow {
    /// `"<strategy>/<allocation>"`, e.g. `"autohet/tile-shared"`.
    pub label: String,
    /// Requests offered (identical across rows by construction).
    pub submitted: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// 99th-percentile request latency [ns].
    pub p99_ns: u64,
    /// Fraction of offered requests completed within the SLO.
    pub slo_attainment: f64,
    /// Total inference energy [nJ].
    pub energy_nj: f64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Firing transitions on the run's alert timeline (SLO burn, queue
    /// saturation — see [`autohet_serve::alert_timeline`]), evaluated
    /// post-hoc over the per-window telemetry with default
    /// [`ServeAlertConfig`](autohet_serve::ServeAlertConfig) rules.
    #[serde(default)]
    pub alerts_fired: u64,
    /// Jain's fairness index over per-tenant weighted attained service
    /// (1.0 for the single-tenant rows here; kept in the schema so
    /// multi-tenant studies line up with
    /// [`autohet_serve::ServingReport::fairness_index`]).
    #[serde(default)]
    pub fairness_index: f64,
}

/// Serve `model` under four deployment configurations — {best homogeneous,
/// greedy AutoHet} strategies × {tile-based, tile-shared} allocation —
/// against the *same* seeded request stream.
///
/// `load` is the offered rate as a fraction of the slowest deployment's
/// single-replica capacity; values near 1.0 push the slower strategies
/// into queueing while faster ones stay comfortable, which is exactly the
/// regime where strategy choice shows up as tail latency.
pub fn serving_study(model: &Model, load: f64, seed: u64) -> Vec<ServingStudyRow> {
    assert!(load > 0.0);
    let _span = autohet_obs::trace::span("study.serving");
    let base = AccelConfig::default();
    let shared = base.with_tile_sharing();
    let (homo_shape, _) = best_homogeneous(model, &base);
    let homo = vec![homo_shape; model.layers.len()];
    let het = greedy_layerwise_rue(model, &paper_hybrid_candidates(), &base).strategy;
    let configs: [(&str, &[XbarShape], &AccelConfig); 4] = [
        ("homogeneous/tile-based", &homo, &base),
        ("homogeneous/tile-shared", &homo, &shared),
        ("autohet/tile-based", &het, &base),
        ("autohet/tile-shared", &het, &shared),
    ];
    let deployments: Vec<Deployment> = configs
        .iter()
        .map(|(label, strategy, cfg)| Deployment::compile(label, model, strategy, cfg))
        .collect();
    // Identical load for every row: rate pinned to the slowest deployment,
    // SLO to the slowest single-sample latency.
    let floor_rps = deployments
        .iter()
        .map(Deployment::max_rate_rps)
        .fold(f64::MAX, f64::min);
    let slowest_fill = deployments
        .iter()
        .map(|d| d.pipeline.fill_ns)
        .fold(0.0, f64::max);
    let rate = load * floor_rps;
    let slo_ns = (4.0 * slowest_fill) as u64;
    let wl = Workload {
        seed,
        horizon_ns: (2_000.0 / rate * 1e9) as u64,
    };
    let cfg = ServeConfig {
        queue_depth: 32,
        // Per-window telemetry feeds the post-hoc alert pass; windows are
        // pure accounting, so the serving results are unaffected.
        telemetry_windows: 8,
        ..ServeConfig::default()
    };
    deployments
        .into_iter()
        .map(|d| {
            let _cell = autohet_obs::trace::span("study.serving_cell");
            let label = d.name.clone();
            let tenant = TenantSpec::new(&label, d, rate, slo_ns);
            let r = run_serving(&[tenant], &wl, &cfg);
            let alerts = autohet_serve::alert_timeline(&r, &Default::default());
            let t = &r.tenants[0];
            ServingStudyRow {
                label,
                submitted: t.submitted,
                rejected: t.rejected,
                p99_ns: t.p99_ns,
                slo_attainment: t.slo_attainment,
                energy_nj: t.energy_nj,
                throughput_rps: t.throughput_rps,
                alerts_fired: alerts.count(autohet_obs::AlertKind::Firing) as u64,
                fairness_index: r.fairness_index,
            }
        })
        .collect()
}

/// Parameters of a [`fault_campaign`] run. Everything downstream — fault
/// maps, replica outages, request arrivals — derives from `seed`, so a
/// campaign is a pure function of this struct and the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignConfig {
    /// Component fault rates to sweep (include 0.0 for the healthy
    /// baseline; rate 0 also disables instance failures).
    pub fault_rates: Vec<f64>,
    /// Master seed for fault maps, failure schedules, and arrivals.
    pub seed: u64,
    /// Offered load as a fraction of the slowest *healthy* deployment's
    /// single-replica capacity (identical across all rows).
    pub load: f64,
    /// Approximate request count per serving run (sets the horizon).
    pub requests: f64,
    /// Spare crossbars provisioned per tile for repair.
    pub spares_per_tile: u32,
    /// Accelerator replicas behind each deployment.
    pub replicas: usize,
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            fault_rates: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            seed: 7,
            load: 0.7,
            requests: 1_000.0,
            spares_per_tile: 1,
            replicas: 2,
        }
    }
}

/// One (deployment configuration, fault rate) cell of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignRow {
    /// `"<strategy>/<allocation>"`, e.g. `"autohet/tile-shared"`.
    pub label: String,
    /// Component fault rate of this cell.
    pub fault_rate: f64,
    /// Crossbar-weighted model fidelity after repair (1.0 = exact).
    pub fidelity: f64,
    /// Dead occupied slots absorbed by spare activation.
    pub spared: u64,
    /// Dead occupied slots remapped onto surviving crossbars.
    pub remapped: u64,
    /// Dead occupied slots the repair could only degrade around.
    pub degraded: u64,
    /// Whole-model inference energy on the repaired hardware [nJ].
    pub energy_nj: f64,
    /// Single-sample latency on the repaired hardware [ns].
    pub latency_ns: f64,
    /// Requests offered (identical across rows by construction).
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to instance failures past their retry deadline.
    pub failed: u64,
    /// Completed requests that survived at least one batch kill.
    pub degraded_completed: u64,
    /// Fraction of offered requests completed within the SLO.
    pub slo_attainment: f64,
    /// 99th-percentile request latency [ns].
    pub p99_ns: u64,
    /// Total replica downtime during the run [ns].
    pub downtime_ns: u64,
}

/// Outcome of a full fault-injection campaign on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignReport {
    /// Model swept.
    pub model: String,
    /// Campaign parameters.
    pub config: FaultCampaignConfig,
    /// One row per (deployment configuration × fault rate), grouped by
    /// configuration in sweep order.
    pub rows: Vec<FaultCampaignRow>,
}

impl FaultCampaignReport {
    /// The rows of one deployment configuration, in fault-rate order.
    pub fn rows_for(&self, label: &str) -> Vec<&FaultCampaignRow> {
        self.rows.iter().filter(|r| r.label == label).collect()
    }

    /// Distinct configuration labels, in declaration order.
    pub fn labels(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.label.as_str()) {
                seen.push(r.label.as_str());
            }
        }
        seen
    }
}

/// Replica-failure schedule for one campaign cell: instance failures get
/// more frequent as component faults get denser (MTBF ∝ 1/rate), and a
/// healthy device never fails.
fn campaign_failures(seed: u64, fault_rate: f64) -> Option<FailureSpec> {
    (fault_rate > 0.0).then(|| FailureSpec {
        mtbf_ns: ((1_000_000.0 / fault_rate) as u64).max(1),
        mttr_ns: 2_000_000,
        seed: seed ^ 0x5EED_FA11,
    })
}

/// Sweep component fault rate × {homogeneous, AutoHet} strategy ×
/// {tile-based, tile-shared} allocation, end to end:
///
/// 1. every deployment configuration is repaired against the fault map
///    sampled at the cell's rate ([`EvalEngine::evaluate_faulted`] — the
///    nested sampling makes damage monotone in the rate for a fixed
///    seed);
/// 2. the repaired hardware is served under the *identical* seeded
///    request stream with replica failures scaled to the fault rate;
/// 3. each cell reports repair accounting, post-repair cost, and serving
///    outcome.
///
/// Cells are evaluated with [`par_map`]; the report is bit-identical to
/// a sequential sweep because every cell is independent and seeded.
pub fn fault_campaign(model: &Model, cfg: &FaultCampaignConfig) -> FaultCampaignReport {
    let _span = autohet_obs::trace::span("study.fault_campaign");
    assert!(cfg.load > 0.0, "load must be positive");
    assert!(!cfg.fault_rates.is_empty(), "empty fault-rate sweep");
    assert!(cfg.replicas >= 1, "need at least one replica");
    let base = AccelConfig::default();
    let shared = base.with_tile_sharing();
    let (homo_shape, _) = best_homogeneous(model, &base);
    let homo = vec![homo_shape; model.layers.len()];
    let het = greedy_layerwise_rue(model, &paper_hybrid_candidates(), &base).strategy;
    let configs: [(&str, &[XbarShape], &AccelConfig); 4] = [
        ("homogeneous/tile-based", &homo, &base),
        ("homogeneous/tile-shared", &homo, &shared),
        ("autohet/tile-based", &het, &base),
        ("autohet/tile-shared", &het, &shared),
    ];
    let engines: Vec<EvalEngine> = configs
        .iter()
        .map(|(_, _, c)| EvalEngine::new(model.clone(), **c))
        .collect();
    let healthy: Vec<Deployment> = configs
        .iter()
        .map(|(label, strategy, c)| Deployment::compile(label, model, strategy, c))
        .collect();
    // Identical load for every cell: rate pinned to the slowest healthy
    // deployment, SLO to the slowest healthy fill.
    let floor_rps = healthy
        .iter()
        .map(Deployment::max_rate_rps)
        .fold(f64::MAX, f64::min);
    let slowest_fill = healthy
        .iter()
        .map(|d| d.pipeline.fill_ns)
        .fold(0.0, f64::max);
    let rate = cfg.load * floor_rps;
    let slo_ns = (6.0 * slowest_fill) as u64;
    let wl = Workload {
        seed: cfg.seed,
        horizon_ns: (cfg.requests / rate * 1e9) as u64,
    };
    let policy = RepairPolicy::default().with_spares(cfg.spares_per_tile);
    let cells: Vec<(usize, f64)> = (0..configs.len())
        .flat_map(|c| cfg.fault_rates.iter().map(move |&r| (c, r)))
        .collect();
    let rows = par_map(&cells, |&(c, fault_rate)| {
        let _cell = autohet_obs::trace::span("study.fault_cell");
        let rates = FaultRates {
            dead_xbar: fault_rate,
            degraded_adc: fault_rate / 2.0,
            adc_bits_lost: 2,
        };
        let faulted = engines[c].evaluate_faulted(configs[c].1, cfg.seed, rates, &policy);
        let deployment = healthy[c].with_degradation(&faulted);
        let tenant = TenantSpec::new(configs[c].0, deployment, rate, slo_ns);
        let serve = ServeConfig {
            replicas: cfg.replicas,
            queue_depth: 32,
            failures: campaign_failures(cfg.seed, fault_rate),
            ..ServeConfig::default()
        };
        let report = run_serving(&[tenant], &wl, &serve);
        let t = &report.tenants[0];
        FaultCampaignRow {
            label: configs[c].0.to_string(),
            fault_rate,
            fidelity: faulted.fidelity,
            spared: faulted.repair.spared,
            remapped: faulted.repair.remapped,
            degraded: faulted.repair.degraded,
            energy_nj: faulted.eval.energy_nj(),
            latency_ns: faulted.eval.latency_ns,
            submitted: t.submitted,
            completed: t.completed,
            failed: t.failed,
            degraded_completed: t.degraded_completed,
            slo_attainment: t.slo_attainment,
            p99_ns: t.p99_ns,
            downtime_ns: report.replica_downtime_ns.iter().sum(),
        }
    });
    FaultCampaignReport {
        model: model.name.clone(),
        config: cfg.clone(),
        rows,
    }
}

/// Parameters of a [`lifetime_campaign`] run. Everything downstream —
/// drift trajectories, fault snapshots, drift errors, arrivals — derives
/// from `seed`, so a campaign is a pure function of this struct and the
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeCampaignConfig {
    /// Drift-rate scales to sweep, as multiples of the nominal corner
    /// (include 0.0 for the drift-free baseline; scale 0 also disables
    /// the serving drift process).
    pub drift_scales: Vec<f64>,
    /// Lifetime epoch the hardware is evaluated at [simulated hours].
    pub epoch_hours: f64,
    /// Master seed for fault snapshots, drift errors, and arrivals.
    pub seed: u64,
    /// Offered load as a fraction of the slowest *healthy* deployment's
    /// single-replica capacity (identical across all rows).
    pub load: f64,
    /// Approximate request count per serving run (sets the horizon).
    pub requests: f64,
    /// Spare crossbars provisioned per tile for the full cascade.
    pub spares_per_tile: u32,
    /// Accelerator replicas behind each deployment.
    pub replicas: usize,
    /// Monte-Carlo draws per (layer, shape, epoch) robustness slice.
    pub draws: u32,
    /// Probe activations per draw.
    pub probes: u32,
}

impl Default for LifetimeCampaignConfig {
    fn default() -> Self {
        LifetimeCampaignConfig {
            drift_scales: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            epoch_hours: 3_000.0,
            seed: 7,
            load: 0.6,
            requests: 1_000.0,
            spares_per_tile: 1,
            replicas: 2,
            draws: 3,
            probes: 4,
        }
    }
}

/// One (deployment configuration, drift scale, recovery policy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeRow {
    /// `"<strategy>/<allocation>"`, e.g. `"autohet/tile-shared"`.
    pub label: String,
    /// Drift-rate scale of this cell (multiple of the nominal corner).
    pub drift_scale: f64,
    /// Recovery-policy label (`"no-recovery"`, `"recalibrate-only"`,
    /// `"full-cascade"`).
    pub policy: String,
    /// Lifetime epoch the hardware was evaluated at [hours].
    pub t_hours: f64,
    /// Crossbar-weighted hard-fault fidelity after the cascade.
    pub fidelity: f64,
    /// Hardware accuracy proxy at the epoch (fidelity × argmax survival).
    pub hw_accuracy_proxy: f64,
    /// Mean normalized output deviation under the drifted population.
    pub noise_dev: f64,
    /// Dead occupied slots absorbed by spare activation.
    pub spared: u64,
    /// Dead occupied slots remapped onto surviving crossbars.
    pub remapped: u64,
    /// Dead occupied slots the cascade could only degrade around.
    pub degraded: u64,
    /// Whole-model inference energy on the epoch hardware [nJ].
    pub energy_nj: f64,
    /// Single-sample latency on the epoch hardware [ns].
    pub latency_ns: f64,
    /// Requests offered (identical across rows by construction).
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Completed requests with drift-corrupted results.
    pub errored: u64,
    /// Fraction of offered requests completed cleanly within the SLO.
    pub slo_attainment: f64,
    /// 99th-percentile request latency [ns].
    pub p99_ns: u64,
    /// Fraction of completed requests with clean results.
    pub clean_fraction: f64,
    /// Circuit-breaker trips across the replica fleet.
    pub trips: u64,
    /// Successful online recalibrations.
    pub recals: u64,
    /// Remap escalations.
    pub remaps: u64,
    /// Fleet time spent paused in recovery [ns].
    pub recovery_ns: u64,
    /// End-to-end accuracy: the hardware proxy × the serving clean
    /// fraction — the campaign's headline accuracy axis.
    pub accuracy: f64,
}

/// Outcome of a full lifetime-resilience campaign on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeCampaignReport {
    /// Model swept.
    pub model: String,
    /// Campaign parameters.
    pub config: LifetimeCampaignConfig,
    /// One row per (configuration × drift scale × recovery policy),
    /// grouped by configuration, then scale, then policy escalation
    /// order.
    pub rows: Vec<LifetimeRow>,
}

impl LifetimeCampaignReport {
    /// The rows of one deployment configuration, in sweep order.
    pub fn rows_for(&self, label: &str) -> Vec<&LifetimeRow> {
        self.rows.iter().filter(|r| r.label == label).collect()
    }

    /// The rows of one (configuration, recovery policy), in drift-scale
    /// order.
    pub fn policy_rows(&self, label: &str, policy: RecoveryPolicy) -> Vec<&LifetimeRow> {
        self.rows
            .iter()
            .filter(|r| r.label == label && r.policy == policy.label())
            .collect()
    }

    /// Distinct configuration labels, in declaration order.
    pub fn labels(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.label.as_str()) {
                seen.push(r.label.as_str());
            }
        }
        seen
    }

    /// The campaign's acceptance headline: at *every* nonzero drift
    /// scale of *every* configuration, the full detect → recalibrate →
    /// remap cascade retains strictly higher SLO attainment and strictly
    /// higher end-to-end accuracy than running with no recovery at all.
    pub fn full_cascade_dominates(&self) -> bool {
        self.labels().iter().all(|label| {
            let no = self.policy_rows(label, RecoveryPolicy::NoRecovery);
            let full = self.policy_rows(label, RecoveryPolicy::FullCascade);
            no.iter().zip(&full).all(|(n, f)| {
                debug_assert_eq!(n.drift_scale, f.drift_scale);
                n.drift_scale == 0.0
                    || (f.slo_attainment > n.slo_attainment && f.accuracy > n.accuracy)
            })
        })
    }
}

/// Serving drift process for one campaign cell: the error growth scales
/// with the cell's drift rate, the breaker/remap knobs follow the
/// recovery policy, and a drift-free cell runs without health modeling
/// (all policies coincide there by construction).
fn campaign_health(seed: u64, scale: f64, policy: RecoveryPolicy) -> Option<HealthSpec> {
    (scale > 0.0).then(|| HealthSpec {
        err_ppm_per_ms: (6_000.0 * scale) as u64,
        // A threshold above 1000 milli can never be reached: the
        // no-recovery arm monitors nothing and never pauses.
        trip_milli: if policy.recalibrates() { 60 } else { 1001 },
        remap: policy.repairs(),
        seed: seed ^ 0xD21F7,
        ..HealthSpec::default()
    })
}

/// Sweep drift-rate scale × {homogeneous/tile-based, autohet/tile-shared}
/// deployment × recovery policy at a fixed lifetime epoch, end to end:
///
/// 1. each configuration's hardware is evaluated at hour `epoch_hours`
///    of a nominal drift trajectory scaled by the cell's rate
///    ([`EvalEngine::evaluate_degraded`]) under the cell's recovery arm —
///    stale references and degrade-only repair for no-recovery,
///    re-derived references for the recalibrating arms, spares + remap
///    for the full cascade;
/// 2. the epoch hardware is served under the *identical* seeded request
///    stream with the online drift process scaled to the cell's rate and
///    the health monitor armed per policy;
/// 3. each cell reports the cascade accounting, epoch cost, serving
///    outcome, and the combined accuracy axis.
///
/// Cells are evaluated with [`par_map`]; the report is bit-identical to
/// a sequential sweep because every cell is independent and seeded.
pub fn lifetime_campaign(model: &Model, cfg: &LifetimeCampaignConfig) -> LifetimeCampaignReport {
    let _span = autohet_obs::trace::span("study.lifetime_campaign");
    assert!(cfg.load > 0.0, "load must be positive");
    assert!(!cfg.drift_scales.is_empty(), "empty drift-scale sweep");
    assert!(cfg.replicas >= 1, "need at least one replica");
    let base = AccelConfig::default();
    let shared = base.with_tile_sharing();
    let (homo_shape, _) = best_homogeneous(model, &base);
    let homo = vec![homo_shape; model.layers.len()];
    let het = greedy_layerwise_rue(model, &paper_hybrid_candidates(), &base).strategy;
    let configs: [(&str, &[XbarShape], &AccelConfig); 2] = [
        ("homogeneous/tile-based", &homo, &base),
        ("autohet/tile-shared", &het, &shared),
    ];
    let healthy: Vec<Deployment> = configs
        .iter()
        .map(|(label, strategy, c)| Deployment::compile(label, model, strategy, c))
        .collect();
    // Identical load for every cell: rate pinned to the slowest healthy
    // deployment, SLO to the slowest healthy fill.
    let floor_rps = healthy
        .iter()
        .map(Deployment::max_rate_rps)
        .fold(f64::MAX, f64::min);
    let slowest_fill = healthy
        .iter()
        .map(|d| d.pipeline.fill_ns)
        .fold(0.0, f64::max);
    let rate = cfg.load * floor_rps;
    let slo_ns = (6.0 * slowest_fill) as u64;
    let wl = Workload {
        seed: cfg.seed,
        horizon_ns: (cfg.requests / rate * 1e9) as u64,
    };
    let cells: Vec<(usize, f64)> = (0..configs.len())
        .flat_map(|c| cfg.drift_scales.iter().map(move |&s| (c, s)))
        .collect();
    let groups = par_map(&cells, |&(c, scale)| {
        let _cell = autohet_obs::trace::span("study.lifetime_cell");
        // One drift-aware engine per (configuration, scale): the three
        // policy arms share its epoch memo, and each cell stays an
        // independent, seeded computation.
        let engine = EvalEngine::new(model.clone(), *configs[c].2).with_drift(DriftEvalConfig {
            drift: DriftModel::nominal().with_rate_scale(scale),
            draws: cfg.draws,
            probes: cfg.probes,
            spares_per_tile: cfg.spares_per_tile,
            ..DriftEvalConfig::default()
        });
        RecoveryPolicy::ALL
            .iter()
            .map(|&policy| {
                let deg = engine.evaluate_degraded(configs[c].1, cfg.epoch_hours, policy);
                let deployment = healthy[c].with_degraded(&deg);
                let tenant = TenantSpec::new(configs[c].0, deployment, rate, slo_ns);
                let serve = ServeConfig {
                    replicas: cfg.replicas,
                    queue_depth: 32,
                    health: campaign_health(cfg.seed, scale, policy),
                    ..ServeConfig::default()
                };
                let report = run_serving(&[tenant], &wl, &serve);
                let t = &report.tenants[0];
                LifetimeRow {
                    label: configs[c].0.to_string(),
                    drift_scale: scale,
                    policy: policy.label().to_string(),
                    t_hours: cfg.epoch_hours,
                    fidelity: deg.fidelity,
                    hw_accuracy_proxy: deg.accuracy_proxy,
                    noise_dev: deg.robustness.mean_dev,
                    spared: deg.repair.spared,
                    remapped: deg.repair.remapped,
                    degraded: deg.repair.degraded,
                    energy_nj: deg.eval.energy_nj(),
                    latency_ns: deg.eval.latency_ns,
                    submitted: t.submitted,
                    completed: t.completed,
                    errored: t.errored,
                    slo_attainment: t.slo_attainment,
                    p99_ns: t.p99_ns,
                    clean_fraction: report.clean_fraction(),
                    trips: report.replica_trips.iter().sum(),
                    recals: report.replica_recals.iter().sum(),
                    remaps: report.replica_remaps.iter().sum(),
                    recovery_ns: report.replica_recovery_ns.iter().sum(),
                    accuracy: deg.accuracy_proxy * report.clean_fraction(),
                }
            })
            .collect::<Vec<_>>()
    });
    LifetimeCampaignReport {
        model: model.name.clone(),
        config: cfg.clone(),
        rows: groups.into_iter().flatten().collect(),
    }
}

/// One lane-count point of [`search_throughput_study`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Lockstep lane count (`0` marks the sequential reference driver).
    pub lanes: usize,
    /// Completed episodes per wall-clock second.
    pub episodes_per_sec: f64,
    /// Speed-up over the sequential reference row.
    pub speedup: f64,
    /// Best RUE the run found — search quality at this batching level.
    pub best_rue: f64,
    /// Mean lane occupancy across lockstep groups (1.0 for sequential).
    pub mean_occupancy: f64,
}

/// Throughput scaling of the vectorized search: run the sequential driver
/// once as the reference row (`lanes == 0`), then
/// [`rl_search_vec`](crate::search::rl::rl_search_vec) at each lane count.
/// Every run gets a **fresh** engine so all rows pay the same cold-cache
/// cost and the comparison isolates the driver, not memo warm-up.
pub fn search_throughput_study(
    model: &Model,
    candidates: &[XbarShape],
    cfg: &AccelConfig,
    scfg: &crate::search::rl::RlSearchConfig,
    lane_counts: &[usize],
) -> Vec<ThroughputRow> {
    let seq = crate::search::rl::rl_search(model, candidates, cfg, scfg);
    let seq_eps = scfg.episodes as f64 / seq.timing.total.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut rows = vec![ThroughputRow {
        lanes: 0,
        episodes_per_sec: seq_eps,
        speedup: 1.0,
        best_rue: seq.best_rue(),
        mean_occupancy: 1.0,
    }];
    for &lanes in lane_counts {
        let engine = Arc::new(EvalEngine::new(model.clone(), *cfg));
        let (o, s) = crate::search::rl::rl_search_vec_with_stats(
            model, candidates, cfg, scfg, lanes, engine,
        );
        rows.push(ThroughputRow {
            lanes,
            episodes_per_sec: s.episodes_per_sec,
            speedup: s.episodes_per_sec / seq_eps,
            best_rue: o.best_rue(),
            mean_occupancy: s.mean_occupancy,
        });
    }
    rows
}

/// Parameters of a [`robustness_study`] run. Everything — baseline
/// scoring, the NSGA-II trajectory, the Monte-Carlo noise draws —
/// derives from the seeds inside, so a study is a pure function of this
/// struct and the model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessStudyConfig {
    /// Accelerator configuration shared by every row.
    pub accel: AccelConfig,
    /// NSGA-II driver parameters.
    pub nsga: NsgaConfig,
    /// Device-variation oracle parameters (model, draws, probes, seed).
    pub noise: NoiseEvalConfig,
}

/// One scored mapping of the robustness study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessStudyRow {
    /// `"homogeneous/<rows>x<cols>"`, `"autohet/greedy"`, or
    /// `"nsga/front-<i>"`.
    pub label: String,
    /// Per-layer crossbar shapes.
    pub strategy: Vec<XbarShape>,
    /// Ideal-device inference energy [nJ].
    pub energy_nj: f64,
    /// Ideal-device inference latency [ns].
    pub latency_ns: f64,
    /// Mean normalized output deviation under device variation.
    pub noise_dev: f64,
    /// Classification-accuracy proxy under variation (1.0 = never flips).
    pub accuracy_proxy: f64,
    /// The paper's scalar RUE.
    pub rue: f64,
}

/// Outcome of a [`robustness_study`] on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessStudyReport {
    /// Model studied.
    pub model: String,
    /// Study parameters.
    pub config: RobustnessStudyConfig,
    /// Homogeneous baselines, the greedy AutoHet mapping, then the
    /// NSGA-II front in ascending-energy order.
    pub rows: Vec<RobustnessStudyRow>,
    /// NSGA-II per-generation trajectory (generation 0 = seeded).
    pub generations: Vec<GenerationStat>,
    /// Strategy evaluations the NSGA-II search performed.
    pub nsga_evaluations: u64,
    /// Label of the noise-blind winner (highest RUE across all rows —
    /// what the paper's scalar objective would deploy).
    pub noise_blind_label: String,
    /// Label of the noise-robust pick (lowest noise deviation, ties to
    /// the higher RUE).
    pub robust_label: String,
    /// Whether the two picks deploy *different* strategies — the study's
    /// headline: ideal-device search chooses noise-fragile hardware.
    pub picks_differ: bool,
}

impl RobustnessStudyReport {
    /// The row carrying `label`, if present.
    pub fn row(&self, label: &str) -> Option<&RobustnessStudyRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The noise-blind winner's row.
    pub fn noise_blind(&self) -> &RobustnessStudyRow {
        self.row(&self.noise_blind_label).expect("pick row exists")
    }

    /// The noise-robust pick's row.
    pub fn robust(&self) -> &RobustnessStudyRow {
        self.row(&self.robust_label).expect("pick row exists")
    }
}

fn robustness_row(
    label: String,
    strategy: Vec<XbarShape>,
    r: &NoisyEvalReport,
) -> RobustnessStudyRow {
    RobustnessStudyRow {
        label,
        energy_nj: r.eval.energy_nj(),
        latency_ns: r.eval.latency_ns,
        noise_dev: r.robustness.mean_dev,
        accuracy_proxy: r.robustness.accuracy_proxy,
        rue: r.eval.rue(),
        strategy,
    }
}

/// Score every homogeneous [`paper_hybrid_candidates`] baseline and the
/// noise-blind greedy AutoHet mapping under the device-variation oracle,
/// run the NSGA-II robustness search ([`crate::robust`]) on the same
/// shared noisy engine, and compare the noise-blind winner (highest RUE
/// anywhere) with the noise-robust pick (lowest noise deviation).
///
/// All rows share one memoized [`EvalEngine`], so each `(layer, shape)`
/// noise slice is Monte-Carlo'd exactly once; results are nevertheless
/// bit-identical to independent evaluations (the cache is transparent).
pub fn robustness_study(model: &Model, cfg: &RobustnessStudyConfig) -> RobustnessStudyReport {
    let _span = autohet_obs::trace::span("study.robustness");
    let candidates = paper_hybrid_candidates();
    let engine = Arc::new(EvalEngine::new(model.clone(), cfg.accel).with_noise(cfg.noise));

    let mut rows: Vec<RobustnessStudyRow> = par_map(&candidates, |&shape| {
        let strategy = vec![shape; model.layers.len()];
        let r = engine.evaluate_noisy(&strategy);
        robustness_row(
            format!("homogeneous/{}x{}", shape.rows, shape.cols),
            strategy,
            &r,
        )
    });
    let greedy = greedy_layerwise_rue_with_engine(&engine, &candidates).strategy;
    let r = engine.evaluate_noisy(&greedy);
    rows.push(robustness_row("autohet/greedy".into(), greedy, &r));

    let outcome = nsga_search_with_engine(&candidates, &cfg.nsga, Arc::clone(&engine));
    rows.extend(
        outcome
            .front
            .iter()
            .enumerate()
            .map(|(i, p)| RobustnessStudyRow {
                label: format!("nsga/front-{i}"),
                strategy: p.strategy.clone(),
                energy_nj: p.energy_nj,
                latency_ns: p.latency_ns,
                noise_dev: p.noise_dev,
                accuracy_proxy: p.accuracy_proxy,
                rue: p.rue,
            }),
    );

    // The noise-blind winner is what the paper's scalar search deploys:
    // best RUE, variation never consulted. The robust pick minimizes the
    // noise axis (ties to the higher RUE). First match wins each tie, so
    // baseline labels are preferred over duplicated front points.
    let blind = rows
        .iter()
        .reduce(|best, r| if r.rue > best.rue { r } else { best })
        .expect("study has rows");
    let robust = rows
        .iter()
        .reduce(|best, r| {
            let better =
                r.noise_dev < best.noise_dev || (r.noise_dev == best.noise_dev && r.rue > best.rue);
            if better {
                r
            } else {
                best
            }
        })
        .expect("study has rows");
    let picks_differ = blind.strategy != robust.strategy;
    let (noise_blind_label, robust_label) = (blind.label.clone(), robust.label.clone());
    RobustnessStudyReport {
        model: model.name.clone(),
        config: *cfg,
        rows,
        generations: outcome.history,
        nsga_evaluations: outcome.evaluations,
        noise_blind_label,
        robust_label,
        picks_differ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    #[test]
    fn adc_sweep_trades_energy_for_losslessness() {
        let m = zoo::vgg16();
        let strategy = vec![XbarShape::new(576, 512); m.layers.len()];
        let pts = adc_resolution_sweep(&m, &strategy, &[6, 8, 10, 12]);
        assert_eq!(pts.len(), 4);
        // Energy and area grow with resolution (×2 per bit).
        for w in pts.windows(2) {
            assert!(w[1].energy_nj > w[0].energy_nj);
            assert!(w[1].area_um2 > w[0].area_um2);
        }
        // The paper's 10 bits is the first lossless setting for 576 rows.
        assert!(!pts[0].lossless && !pts[1].lossless);
        assert!(pts[2].lossless && pts[3].lossless);
        assert_eq!(pts[2].bits, 10);
    }

    #[test]
    fn paper_height_family_wins_on_vgg16() {
        let fams = rxb_height_study(&zoo::vgg16(), 64);
        let paper = fams
            .iter()
            .find(|f| f.label.contains("paper"))
            .unwrap()
            .mean_utilization;
        for f in &fams {
            assert!(
                paper >= f.mean_utilization - 1e-12,
                "{} ({}) beats the paper family ({paper})",
                f.label,
                f.mean_utilization
            );
        }
        // And it is a real win over power-of-two heights.
        let pow2 = fams[0].mean_utilization;
        assert!(paper > pow2 * 1.02, "paper {paper} vs pow2 {pow2}");
    }

    #[test]
    fn joint_sharing_dominates_per_model_sharing() {
        let models = vec![zoo::alexnet(), zoo::micro_cnn(), zoo::test_cnn()];
        let r = multi_model_sharing_study(&models, XbarShape::new(72, 64), 4);
        assert!(r.tiles_per_model <= r.tiles_unshared);
        assert!(r.tiles_joint <= r.tiles_per_model);
    }

    #[test]
    fn serving_study_rows_share_identical_load() {
        let rows = serving_study(&zoo::micro_cnn(), 0.9, 7);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.submitted == rows[0].submitted));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.slo_attainment)));
        assert!(rows.iter().all(|r| r.energy_nj > 0.0));
    }

    fn small_campaign() -> FaultCampaignConfig {
        FaultCampaignConfig {
            fault_rates: vec![0.0, 0.1, 0.3],
            seed: 11,
            load: 0.6,
            requests: 400.0,
            spares_per_tile: 1,
            replicas: 2,
        }
    }

    #[test]
    fn fault_campaign_is_deterministic_and_complete() {
        let m = zoo::micro_cnn();
        let cfg = small_campaign();
        let a = fault_campaign(&m, &cfg);
        let b = fault_campaign(&m, &cfg);
        assert_eq!(a, b, "same seed must reproduce the campaign bit-exactly");
        assert_eq!(a.rows.len(), 4 * cfg.fault_rates.len());
        assert_eq!(a.labels().len(), 4);
        // Identical offered load in every cell.
        assert!(a.rows.iter().all(|r| r.submitted == a.rows[0].submitted));
    }

    #[test]
    fn fault_campaign_degrades_monotonically_with_rate() {
        let m = zoo::micro_cnn();
        let r = fault_campaign(&m, &small_campaign());
        for label in r.labels() {
            let rows = r.rows_for(label);
            for w in rows.windows(2) {
                assert!(
                    w[1].energy_nj >= w[0].energy_nj - 1e-9,
                    "{label}: energy shrank from rate {} to {}",
                    w[0].fault_rate,
                    w[1].fault_rate
                );
                assert!(
                    w[1].fidelity <= w[0].fidelity + 1e-12,
                    "{label}: fidelity rose from rate {} to {}",
                    w[0].fault_rate,
                    w[1].fault_rate
                );
            }
            let healthy = rows.first().unwrap();
            let worst = rows.last().unwrap();
            assert_eq!(healthy.fault_rate, 0.0);
            assert_eq!(healthy.downtime_ns, 0);
            assert_eq!(healthy.failed, 0);
            assert!(worst.slo_attainment <= healthy.slo_attainment);
            assert!(worst.downtime_ns > 0, "{label}: no outages at rate 0.3");
        }
    }

    #[test]
    fn fault_campaign_rate_zero_matches_healthy_serving() {
        let m = zoo::micro_cnn();
        let mut cfg = small_campaign();
        cfg.fault_rates = vec![0.0];
        let r = fault_campaign(&m, &cfg);
        for row in &r.rows {
            assert_eq!(row.fidelity, 1.0);
            assert_eq!(row.spared + row.remapped + row.degraded, 0);
            assert_eq!(row.failed, 0);
            assert_eq!(row.degraded_completed, 0);
        }
    }

    fn small_lifetime() -> LifetimeCampaignConfig {
        LifetimeCampaignConfig {
            drift_scales: vec![0.0, 1.0, 4.0],
            epoch_hours: 3_000.0,
            seed: 11,
            load: 0.6,
            requests: 400.0,
            spares_per_tile: 1,
            replicas: 2,
            draws: 2,
            probes: 2,
        }
    }

    #[test]
    fn lifetime_campaign_is_deterministic_and_complete() {
        let m = zoo::micro_cnn();
        let cfg = small_lifetime();
        let a = lifetime_campaign(&m, &cfg);
        let b = lifetime_campaign(&m, &cfg);
        assert_eq!(a, b, "same seed must reproduce the campaign bit-exactly");
        assert_eq!(a.rows.len(), 2 * cfg.drift_scales.len() * 3);
        assert_eq!(a.labels().len(), 2);
        // Identical offered load in every cell.
        assert!(a.rows.iter().all(|r| r.submitted == a.rows[0].submitted));
        for label in a.labels() {
            for policy in RecoveryPolicy::ALL {
                assert_eq!(
                    a.policy_rows(label, policy).len(),
                    cfg.drift_scales.len(),
                    "{label}/{}",
                    policy.label()
                );
            }
        }
    }

    #[test]
    fn lifetime_campaign_drift_free_cells_are_policy_invariant() {
        let m = zoo::micro_cnn();
        let r = lifetime_campaign(&m, &small_lifetime());
        for label in r.labels() {
            let zero: Vec<_> = r
                .rows_for(label)
                .into_iter()
                .filter(|row| row.drift_scale == 0.0)
                .collect();
            assert_eq!(zero.len(), 3);
            for row in &zero {
                assert_eq!(row.fidelity, 1.0, "{label}/{}", row.policy);
                assert_eq!(row.errored, 0);
                assert_eq!(row.trips, 0);
                assert_eq!(row.clean_fraction, 1.0);
                // The serving half is identical across arms at scale 0.
                assert_eq!(row.slo_attainment, zero[0].slo_attainment);
                assert_eq!(row.accuracy, zero[0].accuracy);
            }
        }
    }

    #[test]
    fn lifetime_campaign_full_cascade_beats_no_recovery_everywhere() {
        // The PR's acceptance bar: strictly higher SLO attainment AND
        // strictly higher end-to-end accuracy at every nonzero drift
        // rate, for every deployment configuration, under a fixed seed.
        let m = zoo::micro_cnn();
        let r = lifetime_campaign(&m, &small_lifetime());
        assert!(r.full_cascade_dominates());
        for label in r.labels() {
            let no = r.policy_rows(label, RecoveryPolicy::NoRecovery);
            let full = r.policy_rows(label, RecoveryPolicy::FullCascade);
            for (n, f) in no.iter().zip(&full).filter(|(n, _)| n.drift_scale > 0.0) {
                assert!(
                    f.slo_attainment > n.slo_attainment,
                    "{label} scale {}: SLO {} vs {}",
                    n.drift_scale,
                    f.slo_attainment,
                    n.slo_attainment
                );
                assert!(
                    f.accuracy > n.accuracy,
                    "{label} scale {}: accuracy {} vs {}",
                    n.drift_scale,
                    f.accuracy,
                    n.accuracy
                );
                // The cascade actually ran: recoveries happened online.
                assert!(f.trips > 0, "{label} scale {}", n.drift_scale);
                assert!(f.recals + f.remaps > 0);
                assert_eq!(n.trips, 0, "no-recovery must never trip");
                assert_eq!(n.recals + n.remaps, 0);
                // And the stale readout is measurably noisier.
                assert!(n.noise_dev >= f.noise_dev);
            }
        }
    }

    #[test]
    fn throughput_study_reports_every_lane_count() {
        let m = zoo::micro_cnn();
        let scfg = crate::search::rl::RlSearchConfig {
            episodes: 12,
            ddpg: autohet_rl::DdpgConfig {
                hidden: 16,
                batch: 8,
                ..autohet_rl::DdpgConfig::default()
            },
            train_steps: 2,
            ..crate::search::rl::RlSearchConfig::default()
        };
        let rows = search_throughput_study(
            &m,
            &paper_hybrid_candidates(),
            &AccelConfig::default(),
            &scfg,
            &[1, 4],
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].lanes, 0);
        assert_eq!(rows[0].speedup, 1.0);
        assert_eq!(rows[1].lanes, 1);
        assert_eq!(rows[2].lanes, 4);
        for r in &rows {
            assert!(r.episodes_per_sec > 0.0);
            assert!(r.best_rue > 0.0);
            assert!((0.0..=1.0).contains(&r.mean_occupancy));
        }
        // Lanes == 1 is bit-identical search-wise, so quality matches.
        assert_eq!(rows[1].best_rue.to_bits(), rows[0].best_rue.to_bits());
    }

    fn small_robustness() -> RobustnessStudyConfig {
        RobustnessStudyConfig {
            nsga: NsgaConfig {
                population: 8,
                generations: 2,
                seed: 5,
                ..NsgaConfig::default()
            },
            noise: NoiseEvalConfig {
                draws: 2,
                probes: 2,
                ..NoiseEvalConfig::default()
            },
            ..RobustnessStudyConfig::default()
        }
    }

    #[test]
    fn robustness_study_is_deterministic_and_complete() {
        let m = zoo::micro_cnn();
        let cfg = small_robustness();
        let a = robustness_study(&m, &cfg);
        let b = robustness_study(&m, &cfg);
        assert_eq!(a, b, "same seeds must reproduce the study bit-exactly");
        let n_candidates = paper_hybrid_candidates().len();
        // One row per homogeneous baseline, the greedy mapping, and a
        // non-empty NSGA front.
        assert!(a.rows.len() > n_candidates + 1);
        assert!(a.row("autohet/greedy").is_some());
        assert!(a.row("nsga/front-0").is_some());
        assert_eq!(a.generations.len(), cfg.nsga.generations + 1);
        assert!(a.nsga_evaluations > 0);
        for r in &a.rows {
            assert_eq!(r.strategy.len(), m.layers.len());
            assert!(r.energy_nj > 0.0 && r.latency_ns > 0.0);
            assert!(r.noise_dev >= 0.0 && (0.0..=1.0).contains(&r.accuracy_proxy));
        }
        // The picks resolve to real rows and honour their definitions.
        let blind = a.noise_blind();
        let robust = a.robust();
        assert!(a.rows.iter().all(|r| r.rue <= blind.rue));
        assert!(a.rows.iter().all(|r| r.noise_dev >= robust.noise_dev));
        assert_eq!(a.picks_differ, blind.strategy != robust.strategy);
    }

    #[test]
    fn robust_pick_diverges_from_noise_blind_winner() {
        // The acceptance bar of DESIGN.md §11: under the HyperMetric
        // deviations, the best-RUE mapping is not the most noise-robust
        // one, so a noise-blind search deploys fragile hardware.
        let r = robustness_study(&zoo::micro_cnn(), &small_robustness());
        assert!(
            r.picks_differ,
            "noise-blind {} and robust {} deploy the same strategy",
            r.noise_blind_label, r.robust_label
        );
        assert!(r.robust().noise_dev < r.noise_blind().noise_dev);
    }

    #[test]
    fn adc_sweep_uses_strategy_specific_worst_case() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(32); m.layers.len()];
        let pts = adc_resolution_sweep(&m, &strategy, &[6]);
        // 32 rows fit a 6-bit ADC (max 63).
        assert_eq!(pts[0].worst_case_level, 32);
        assert!(pts[0].lossless);
        let _ = paper_hybrid_candidates();
    }
}
