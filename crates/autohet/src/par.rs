//! Deterministic fork-join helper for sweep drivers.
//!
//! A thin order-preserving `map` over `crossbeam::thread::scope` workers
//! (the same pattern the accel controller uses for batch inference):
//! items are split into contiguous chunks, each worker fills its chunk's
//! output slots, and results come back in input order — so parallel sweeps
//! return exactly what their serial loops returned.

/// Map `f` over `items` on up to `available_parallelism` scoped workers,
/// preserving input order. Falls back to a plain serial map for zero or
/// one item.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    crossbeam::thread::scope(|s| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            s.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel sweep worker panicked");
    out.into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map_for_awkward_sizes() {
        // Sizes around worker-count boundaries exercise chunk remainders.
        for n in [2usize, 3, 5, 7, 13, 17, 31] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |&x| x.wrapping_mul(2654435761));
            let serial: Vec<usize> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
            assert_eq!(out, serial);
        }
    }
}
