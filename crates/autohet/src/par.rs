//! Deterministic fork-join helper for sweep drivers.
//!
//! The implementation lives in [`autohet_accel::par`] now that the kernel
//! layer (DESIGN.md §9) parallelizes batched MVMs over crossbars with the
//! same helper; this module re-exports it so existing sweep-driver call
//! sites keep working unchanged.

pub use autohet_accel::par::par_map;
