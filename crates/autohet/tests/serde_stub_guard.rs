//! Guard for the vendored serde stub (`vendor/serde`).
//!
//! The stub's `Serialize`/`Deserialize` derives are no-ops, which is
//! only sound while two invariants hold:
//!
//! 1. the stub defines no trait surface (so any trait-bound use of
//!    `serde::Serialize`/`Deserialize` is a compile error rather than a
//!    silent no-op), and
//! 2. no workspace code actually calls into serde machinery
//!    (serializers, `serde_json`, `serde::ser`/`de` modules).
//!
//! Invariant 1 makes most misuse a *compile* error; this test closes
//! the remaining gap by scanning the sources for both halves and
//! failing loudly if either drifts. When `vendor/serde` is deleted
//! (real serde restored), both checks pass trivially.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn stub_serde_defines_no_trait_surface() {
    let stub = workspace_root().join("vendor/serde/src/lib.rs");
    if !stub.exists() {
        return; // real serde restored; nothing to guard
    }
    let src = fs::read_to_string(&stub).expect("stub source readable");
    for forbidden in ["trait ", "impl ", "fn ", "struct ", "enum "] {
        assert!(
            !src.lines()
                .filter(|l| !l.trim_start().starts_with("//"))
                .any(|l| l.contains(forbidden)),
            "vendor/serde grew an item (`{forbidden}…`): the stub must stay \
             derive-re-export-only so trait-bound uses remain compile errors \
             instead of silently hitting no-op derives (see vendor/README.md)"
        );
    }
}

#[test]
fn workspace_never_exercises_serde_machinery() {
    let root = workspace_root();
    if !root.join("vendor/serde").exists() {
        return; // real serde restored; trait use is fine again
    }
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    assert!(!sources.is_empty(), "no sources found under crates/");

    // Call/bound sites that would silently rely on derive-generated
    // impls. Plain `use serde::{Serialize, Deserialize}` + #[derive(..)]
    // are allowed — that is the whole supported surface of the stub.
    let forbidden = [
        "serde_json",
        ": serde::Serialize",
        ": serde::Deserialize",
        "dyn serde::",
        "impl serde::",
        "serde::Serializer",
        "serde::Deserializer",
        "serde::ser::",
        "serde::de::",
    ];

    let mut offenders = Vec::new();
    for path in &sources {
        if path.ends_with("tests/serde_stub_guard.rs") {
            continue; // the pattern list above would match itself
        }
        let src = fs::read_to_string(path).expect("source readable");
        for (lineno, line) in src.lines().enumerate() {
            let code = line.trim_start();
            if code.starts_with("//") {
                continue;
            }
            for pat in forbidden {
                if code.contains(pat) {
                    offenders.push(format!(
                        "{}:{}: `{pat}`",
                        path.strip_prefix(&root).unwrap_or(path).display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "serde machinery used while the no-op vendor/serde stub is active — \
         these sites would compile against real serde but are dead (or \
         compile errors) against the stub:\n{}\nEither drop the usage or \
         restore real serde (delete [patch.crates-io] in Cargo.toml, see \
         vendor/README.md).",
        offenders.join("\n")
    );
}
