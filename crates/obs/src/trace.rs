//! Span-based structured tracer.
//!
//! A [`Span`] is a named, hierarchically scoped region of execution. The
//! global [`Tracer`] records finished spans into a bounded ring buffer;
//! when the tracer is disabled (the default) opening a span costs one
//! relaxed atomic load and closing it costs nothing.
//!
//! Hierarchy is tracked per thread: a span opened while another span on
//! the same thread is still open becomes its child, and the recorded
//! event carries the full `parent;child` path. Recorded events can be
//! exported as JSONL ([`to_jsonl`]) or as collapsed stacks
//! ([`collapsed`]) directly consumable by `flamegraph.pl` /
//! `inferno-flamegraph`.

use crate::json_escape;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A finished span, as recorded in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Full `;`-joined scope path, e.g. `search.rl;engine.evaluate`.
    pub path: String,
    /// Leaf name of the span (last path segment).
    pub name: &'static str,
    /// Nesting depth at record time (0 = root span on its thread).
    pub depth: usize,
    /// Start offset in nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// End offset in nanoseconds since the tracer epoch.
    pub end_ns: u64,
}

impl SpanEvent {
    /// Wall-clock duration of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Bounded ring-buffer recorder for spans.
///
/// One global instance ([`global`]) serves the whole process; all
/// instrumented crates funnel through the free function [`span`]. The
/// tracer starts disabled; [`Tracer::enable`] installs a ring buffer of
/// the given capacity and [`Tracer::drain`] takes the recorded events
/// out. When the buffer is full the oldest events are evicted and
/// counted in [`Tracer::dropped`].
pub struct Tracer {
    enabled: AtomicBool,
    dropped: AtomicU64,
    buf: Mutex<RingState>,
}

struct RingState {
    capacity: usize,
    events: VecDeque<SpanEvent>,
}

impl Tracer {
    /// A new, disabled tracer with zero capacity.
    pub const fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(RingState {
                capacity: 0,
                events: VecDeque::new(),
            }),
        }
    }

    /// Enable recording into a ring buffer holding up to `capacity`
    /// events. Clears any previously recorded events and the dropped
    /// counter. `capacity == 0` is clamped to 1.
    pub fn enable(&self, capacity: usize) {
        let mut st = lock_ok(&self.buf);
        st.capacity = capacity.max(1);
        st.events.clear();
        self.dropped.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Release);
    }

    /// Disable recording. Already-recorded events stay available to
    /// [`Tracer::drain`].
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Number of events evicted because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take all recorded events, oldest first, leaving the buffer empty.
    pub fn drain(&self) -> Vec<SpanEvent> {
        lock_ok(&self.buf).events.drain(..).collect()
    }

    /// Open a span on this tracer. The span records itself when dropped;
    /// if the tracer is disabled this is (nearly) free.
    pub fn span(&'static self, name: &'static str) -> Span {
        if !self.enabled.load(Ordering::Relaxed) {
            return Span { live: None };
        }
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let depth = s.len();
            s.push(name);
            depth
        });
        Span {
            live: Some(LiveSpan {
                tracer: self,
                name,
                depth,
                start_ns: now_ns(),
            }),
        }
    }

    fn record(&self, name: &'static str, depth: usize, start_ns: u64) {
        let end_ns = now_ns();
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = s.join(";");
            // Pop our own frame; guard against disable/enable races having
            // reset the stack underneath us.
            if s.last() == Some(&name) {
                s.pop();
            }
            path
        });
        let mut st = lock_ok(&self.buf);
        if st.capacity == 0 {
            return;
        }
        while st.events.len() >= st.capacity {
            st.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        st.events.push_back(SpanEvent {
            path,
            name,
            depth,
            start_ns,
            end_ns,
        });
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// RAII guard for an open span; records the event on drop.
///
/// `live == None` means the tracer was disabled at open time and drop is
/// a no-op — this is the zero-cost path.
pub struct Span {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    tracer: &'static Tracer,
    name: &'static str,
    depth: usize,
    start_ns: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            // Pop the thread-local frame and record even if the tracer
            // was disabled mid-span, so the stack never leaks frames.
            live.tracer.record(live.name, live.depth, live.start_ns);
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide tracer shared by all instrumented crates.
pub fn global() -> &'static Tracer {
    static GLOBAL: Tracer = Tracer::new();
    &GLOBAL
}

/// Open a span on the [`global`] tracer. This is the call instrumented
/// code sites use:
///
/// ```
/// let _span = autohet_obs::trace::span("engine.evaluate");
/// // ... traced region ...
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    global().span(name)
}

/// Nanoseconds since the process-wide tracer epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panic while holding the trace lock cannot corrupt the ring
    // buffer (pure data), so poisoning is safe to ignore.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render events as JSON Lines, one span object per line, in recorded
/// (oldest-first) order.
pub fn to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"path\":\"{}\",\"name\":\"{}\",\"depth\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}",
            json_escape(&e.path),
            json_escape(e.name),
            e.depth,
            e.start_ns,
            e.end_ns,
            e.duration_ns()
        );
    }
    out
}

/// Render events in the collapsed-stack format consumed by flamegraph
/// tools: one `path;to;span weight` line per distinct path, where the
/// weight is the **self time** in nanoseconds (total duration minus time
/// spent in recorded child spans), summed across all events with that
/// path. Lines are sorted by path for deterministic output.
pub fn collapsed(events: &[SpanEvent]) -> String {
    use std::collections::BTreeMap;
    let mut total: BTreeMap<&str, u64> = BTreeMap::new();
    let mut child: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        *total.entry(e.path.as_str()).or_insert(0) += e.duration_ns();
        if let Some(idx) = e.path.rfind(';') {
            *child.entry(&e.path[..idx]).or_insert(0) += e.duration_ns();
        }
    }
    let mut out = String::new();
    for (path, t) in &total {
        let self_ns = t.saturating_sub(child.get(path).copied().unwrap_or(0));
        let _ = writeln!(out, "{path} {self_ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global tracer is process-wide, so tests that enable it must
    // not run concurrently with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().disable();
        global().drain();
        {
            let _s = span("never");
        }
        assert!(global().drain().is_empty());
    }

    #[test]
    fn spans_nest_and_record_paths() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().enable(16);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        global().disable();
        let events = global().drain();
        assert_eq!(events.len(), 2);
        // Children close first.
        assert_eq!(events[0].path, "outer;inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].path, "outer");
        assert_eq!(events[1].depth, 0);
        assert!(events[1].end_ns >= events[1].start_ns);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().enable(2);
        for _ in 0..5 {
            let _s = span("tick");
        }
        global().disable();
        assert_eq!(global().dropped(), 3);
        assert_eq!(global().drain().len(), 2);
    }

    #[test]
    fn collapsed_reports_self_time_sorted_by_path() {
        let events = vec![
            SpanEvent {
                path: "a".into(),
                name: "a",
                depth: 0,
                start_ns: 0,
                end_ns: 100,
            },
            SpanEvent {
                path: "a;b".into(),
                name: "b",
                depth: 1,
                start_ns: 10,
                end_ns: 40,
            },
            SpanEvent {
                path: "a;b".into(),
                name: "b",
                depth: 1,
                start_ns: 50,
                end_ns: 60,
            },
        ];
        assert_eq!(collapsed(&events), "a 60\na;b 40\n");
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let events = vec![SpanEvent {
            path: "x;y".into(),
            name: "y",
            depth: 1,
            start_ns: 5,
            end_ns: 9,
        }];
        let line = to_jsonl(&events);
        assert_eq!(
            line,
            "{\"path\":\"x;y\",\"name\":\"y\",\"depth\":1,\"start_ns\":5,\"end_ns\":9,\"duration_ns\":4}\n"
        );
    }
}
