//! Streaming telemetry export: bounded-buffer sinks, fan-out, and a
//! sim-time snapshot scheduler.
//!
//! The passive substrate dumps artifacts at end of run
//! (`Series::to_csv`, `Registry::to_jsonl`); long campaigns need rows on
//! disk *while* the run progresses so a killed job still leaves a usable
//! trace. This module provides the minimal machinery:
//!
//! - [`Sink`]: an object-safe line sink (`write_line` / `flush`).
//! - [`JsonlFileSink`]: buffered file sink that flushes when its bounded
//!   buffer fills and on drop.
//! - [`MemorySink`]: cloneable in-memory sink for tests.
//! - [`FanOutSink`]: duplicates every line to several sinks.
//! - [`SnapshotScheduler`]: converts a simulated clock into "how many
//!   snapshots are due", so periodic exports key off *sim* time and stay
//!   reproducible.
//! - [`SeriesStream`]: schema-carrying JSONL row writer — the streaming
//!   twin of [`Series`](crate::series::Series).
//!
//! Sinks only ever *receive* already-computed values; nothing flows back
//! into the producer, so attaching a stream cannot perturb results.

use crate::{json_escape, json_f64};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An object-safe destination for telemetry lines. Implementations must
/// not interpret the payload; a line is opaque (normally one JSON
/// object, no trailing newline — the sink adds it).
pub trait Sink {
    /// Accept one line (without trailing newline).
    fn write_line(&mut self, line: &str);
    /// Push any buffered lines to the underlying destination.
    fn flush(&mut self);
}

/// Bounded-buffer JSONL file sink: lines accumulate in memory and hit
/// the file whenever the buffer reaches `capacity_bytes` (and on drop),
/// amortising syscalls without letting the buffer grow unboundedly.
pub struct JsonlFileSink {
    file: File,
    buf: String,
    capacity_bytes: usize,
    lines: u64,
    flushes: u64,
}

impl JsonlFileSink {
    /// Create (truncate) `path` with the default 64 KiB buffer.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        JsonlFileSink::with_capacity(path, 64 * 1024)
    }

    /// Create (truncate) `path` with an explicit buffer bound. A
    /// capacity of 0 flushes after every line.
    pub fn with_capacity(path: &Path, capacity_bytes: usize) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            file: File::create(path)?,
            buf: String::new(),
            capacity_bytes,
            lines: 0,
            flushes: 0,
        })
    }

    /// Lines accepted so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Buffer flushes performed so far (excluding the drop flush).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

impl Sink for JsonlFileSink {
    fn write_line(&mut self, line: &str) {
        self.buf.push_str(line);
        self.buf.push('\n');
        self.lines += 1;
        if self.buf.len() >= self.capacity_bytes {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        // Telemetry export is best-effort by contract: an export failure
        // must never abort the run it is observing.
        let _ = self.file.write_all(self.buf.as_bytes());
        let _ = self.file.flush();
        self.buf.clear();
        self.flushes += 1;
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Cloneable in-memory sink for tests; all clones share one line store.
#[derive(Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of the lines received so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    pub fn len(&self) -> usize {
        self.lines
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(line.to_string());
    }

    fn flush(&mut self) {}
}

/// Duplicates every line (and flush) to each inner sink, in order.
#[derive(Default)]
pub struct FanOutSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl FanOutSink {
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        FanOutSink { sinks }
    }

    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }
}

impl Sink for FanOutSink {
    fn write_line(&mut self, line: &str) {
        for s in &mut self.sinks {
            s.write_line(line);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// Sim-time snapshot scheduler: tracks a period on a simulated clock and
/// reports how many snapshot deadlines a given timestamp has crossed.
/// Because it is driven purely by the caller's simulated time it is
/// deterministic by construction — two runs advancing the same sim clock
/// schedule identical snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotScheduler {
    every_ns: u64,
    next_ns: u64,
}

impl SnapshotScheduler {
    /// Snapshots due at `every_ns`, `2*every_ns`, … (`every_ns` ≥ 1).
    pub fn new(every_ns: u64) -> Self {
        let every_ns = every_ns.max(1);
        SnapshotScheduler {
            every_ns,
            next_ns: every_ns,
        }
    }

    /// Number of snapshot deadlines at or before `t_ns` not yet
    /// reported; advances past them. A big time jump reports every
    /// deadline it skipped, so callers can emit catch-up snapshots (or
    /// collapse them — the count is theirs to interpret).
    pub fn due(&mut self, t_ns: u64) -> usize {
        let mut n = 0;
        while self.next_ns <= t_ns {
            self.next_ns += self.every_ns;
            n += 1;
        }
        n
    }

    /// The next deadline on the simulated clock.
    pub fn next_deadline_ns(&self) -> u64 {
        self.next_ns
    }
}

/// Streaming twin of [`Series`](crate::series::Series): carries a column
/// schema and writes each row as one JSONL object keyed by column name
/// (`{"col_a":1,"col_b":2.5}`), so a partial file is still parseable
/// row-by-row.
pub struct SeriesStream {
    name: String,
    columns: Vec<String>,
    sink: Box<dyn Sink>,
    rows: u64,
}

impl SeriesStream {
    pub fn new(name: &str, columns: &[&str], sink: Box<dyn Sink>) -> Self {
        SeriesStream {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            sink,
            rows: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Write one row. Panics on schema mismatch, mirroring
    /// `Series::push` — a wrong-arity row is a bug at the call site.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "SeriesStream {:?}: row has {} values, schema has {} columns",
            self.name,
            row.len(),
            self.columns.len()
        );
        let mut line = String::from("{");
        for (i, (col, v)) in self.columns.iter().zip(row).enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":{}", json_escape(col), json_f64(*v));
        }
        line.push('}');
        self.sink.write_line(&line);
        self.rows += 1;
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects_lines_across_clones() {
        let sink = MemorySink::new();
        let mut a = sink.clone();
        let mut b = sink.clone();
        a.write_line("one");
        b.write_line("two");
        assert_eq!(sink.lines(), ["one", "two"]);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn file_sink_buffers_until_capacity_and_flushes_on_drop() {
        let dir = std::env::temp_dir().join("obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink_capacity.jsonl");
        {
            let mut sink = JsonlFileSink::with_capacity(&path, 16).unwrap();
            sink.write_line("aaaa"); // 5 bytes buffered
            assert_eq!(sink.flushes(), 0);
            sink.write_line("bbbbbbbbbbbb"); // crosses 16 → flush
            assert_eq!(sink.flushes(), 1);
            sink.write_line("cc"); // left in buffer for the drop flush
            assert_eq!(sink.lines_written(), 3);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "aaaa\nbbbbbbbbbbbb\ncc\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fan_out_duplicates_lines() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let mut fan = FanOutSink::new(vec![Box::new(a.clone()), Box::new(b.clone())]);
        fan.write_line("x");
        fan.flush();
        assert_eq!(a.lines(), ["x"]);
        assert_eq!(b.lines(), ["x"]);
    }

    #[test]
    fn scheduler_counts_crossed_deadlines() {
        let mut s = SnapshotScheduler::new(100);
        assert_eq!(s.due(50), 0);
        assert_eq!(s.due(100), 1);
        assert_eq!(s.due(100), 0, "a deadline is reported once");
        assert_eq!(s.due(450), 3, "t=200,300,400 were all crossed");
        assert_eq!(s.next_deadline_ns(), 500);
    }

    #[test]
    fn scheduler_is_deterministic_under_identical_clocks() {
        let drive = || {
            let mut s = SnapshotScheduler::new(7);
            (0..40u64).map(|t| s.due(t * 3)).collect::<Vec<_>>()
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn series_stream_writes_keyed_jsonl_rows() {
        let sink = MemorySink::new();
        let mut stream = SeriesStream::new("ep", &["episode", "reward"], Box::new(sink.clone()));
        stream.push(&[0.0, 1.5]);
        stream.push(&[1.0, f64::NAN]);
        assert_eq!(stream.rows_written(), 2);
        let lines = sink.lines();
        assert_eq!(lines[0], "{\"episode\":0,\"reward\":1.5}");
        assert_eq!(lines[1], "{\"episode\":1,\"reward\":null}");
    }

    #[test]
    #[should_panic(expected = "row has 1 values")]
    fn series_stream_panics_on_arity_mismatch() {
        let mut stream = SeriesStream::new("s", &["a", "b"], Box::new(MemorySink::new()));
        stream.push(&[1.0]);
    }
}
