//! Time-series tables: named, unit-annotated columns of `f64` rows, with
//! CSV and JSONL export.
//!
//! This is the carrier format for per-episode search traces and
//! per-window serving telemetry. Columns are fixed at construction;
//! rows are appended in order and exported verbatim, so output is
//! deterministic given the same data.

use crate::{json_escape, json_f64};
use std::fmt::Write as _;

/// A named table of `f64` time-series rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Table name (used as a file stem by exporters).
    pub name: String,
    /// `(column, unit)` pairs; unit may be empty for dimensionless.
    pub columns: Vec<(String, String)>,
    /// Row-major data; every row has `columns.len()` cells.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Create an empty series with the given `(column, unit)` schema.
    pub fn new(name: &str, columns: &[(&str, &str)]) -> Self {
        Series {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(c, u)| (c.to_string(), u.to_string()))
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row. Panics if the cell count does not match the
    /// schema (a programming error at the instrumentation site).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "series {:?}: row has {} cells, schema has {} columns",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the series holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV export: header row of `column[unit]` (or bare `column` when
    /// the unit is empty), then one line per row. Non-finite cells
    /// render as empty fields.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .map(|(c, u)| {
                if u.is_empty() {
                    c.clone()
                } else {
                    format!("{c}[{u}]")
                }
            })
            .collect();
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|&v| {
                    if v.is_finite() {
                        format!("{v}")
                    } else {
                        String::new()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// The trailing `n` rows as a new series with the same name and
    /// schema — the windowed view alert rules evaluate over. Returns all
    /// rows when `n ≥ len`.
    pub fn tail(&self, n: usize) -> Series {
        let start = self.rows.len().saturating_sub(n);
        Series {
            name: self.name.clone(),
            columns: self.columns.clone(),
            rows: self.rows[start..].to_vec(),
        }
    }

    /// Append all rows of `other` to this series. Panics unless the
    /// column schemas (names **and** units) match exactly — merging
    /// mismatched tables silently would corrupt exports.
    pub fn merge(&mut self, other: &Series) {
        assert_eq!(
            self.columns, other.columns,
            "series {:?}: cannot merge {:?} with a different column schema",
            self.name, other.name
        );
        self.rows.extend(other.rows.iter().cloned());
    }

    /// JSON Lines export: one object per row keyed by column name, with
    /// non-finite cells rendered as `null`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let fields: Vec<String> = self
                .columns
                .iter()
                .zip(row)
                .map(|((c, _), &v)| format!("\"{}\":{}", json_escape(c), json_f64(v)))
                .collect();
            let _ = writeln!(out, "{{{}}}", fields.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_unit_annotated_header_and_roundtrip_floats() {
        let mut s = Series::new("ep", &[("episode", ""), ("reward", ""), ("energy", "nJ")]);
        s.push(vec![0.0, 0.5, 123.25]);
        s.push(vec![1.0, f64::NAN, 130.0]);
        assert_eq!(
            s.to_csv(),
            "episode,reward,energy[nJ]\n0,0.5,123.25\n1,,130\n"
        );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn jsonl_keys_rows_by_column() {
        let mut s = Series::new("w", &[("t", "ns"), ("depth", "")]);
        s.push(vec![100.0, 2.0]);
        s.push(vec![200.0, f64::INFINITY]);
        assert_eq!(
            s.to_jsonl(),
            "{\"t\":100,\"depth\":2}\n{\"t\":200,\"depth\":null}\n"
        );
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn schema_mismatch_panics() {
        let mut s = Series::new("bad", &[("a", ""), ("b", "")]);
        s.push(vec![1.0]);
    }

    #[test]
    fn tail_returns_trailing_window() {
        let mut s = Series::new("t", &[("x", "")]);
        for i in 0..5 {
            s.push(vec![i as f64]);
        }
        let last2 = s.tail(2);
        assert_eq!(last2.rows, vec![vec![3.0], vec![4.0]]);
        assert_eq!(last2.name, "t");
        assert_eq!(last2.columns, s.columns);
        // n past the length returns everything; n = 0 returns nothing.
        assert_eq!(s.tail(99).rows.len(), 5);
        assert!(s.tail(0).is_empty());
    }

    #[test]
    fn merge_appends_schema_matched_rows() {
        let mut a = Series::new("a", &[("t", "ns"), ("v", "")]);
        a.push(vec![1.0, 10.0]);
        let mut b = Series::new("b", &[("t", "ns"), ("v", "")]);
        b.push(vec![2.0, 20.0]);
        b.push(vec![3.0, 30.0]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.rows[2], vec![3.0, 30.0]);
        // The source series is untouched.
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different column schema")]
    fn merge_rejects_unit_mismatch() {
        let mut a = Series::new("a", &[("t", "ns")]);
        let b = Series::new("b", &[("t", "ms")]);
        a.merge(&b);
    }
}
