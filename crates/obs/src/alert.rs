//! Deterministic SLO alerting: rules over telemetry samples, a
//! pending → firing → resolved state machine with hysteresis, and an
//! exportable alert timeline.
//!
//! The engine is the *active* half of the observability layer: the
//! passive substrate ([`metrics`](crate::metrics),
//! [`series`](crate::series)) records what happened, this module decides
//! *when something is wrong*. Two rule families cover the stack's needs:
//!
//! - [`ThresholdRule`]: a static bound on one signal (queue depth above a
//!   limit, occupancy below a floor), with `for_samples` hysteresis
//!   before firing and `clear_samples` before resolving.
//! - [`BurnRateRule`]: multi-window SLO burn rate à la SRE practice — the
//!   signal is a per-window error *fraction*, the rule fires when both a
//!   short and a long trailing window consume error budget faster than
//!   `factor`× the sustainable rate. The short window makes the alert
//!   fast, the long window keeps one bad sample from paging.
//!
//! ## Determinism contract
//!
//! The engine has no clock: every observation carries an explicit
//! **simulated** timestamp, and all state transitions are pure functions
//! of the rule configuration and the observed sample sequence. Feeding
//! the same windows in the same order always yields a bit-identical
//! [`AlertTimeline`] — which is what lets the serving simulator's alert
//! timeline be compared across the single-threaded and parallel drivers.
//! The engine only *consumes* telemetry; nothing feeds back into the
//! simulated quantities, so enabling alerting cannot change any result.

use crate::{json_escape, json_f64};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Direction of a threshold breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Breach when `value > threshold`.
    Above,
    /// Breach when `value < threshold`.
    Below,
}

/// Static bound on one signal with firing/resolution hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRule {
    /// Rule name (the `rule` column of timeline events).
    pub name: String,
    /// Signal this rule watches (matched against observation keys).
    pub signal: String,
    /// Breach direction.
    pub cmp: Comparison,
    /// The bound.
    pub threshold: f64,
    /// Consecutive breaching samples before the rule fires (≥ 1). With
    /// 1 the rule skips the pending phase and fires immediately.
    pub for_samples: usize,
    /// Consecutive clean samples before a firing rule resolves (≥ 1).
    pub clear_samples: usize,
}

impl ThresholdRule {
    /// A rule firing when `signal` exceeds `threshold`, with 1-sample
    /// trigger and 1-sample resolution hysteresis.
    pub fn above(name: &str, signal: &str, threshold: f64) -> Self {
        ThresholdRule {
            name: name.to_string(),
            signal: signal.to_string(),
            cmp: Comparison::Above,
            threshold,
            for_samples: 1,
            clear_samples: 1,
        }
    }

    /// A rule firing when `signal` drops below `threshold`.
    pub fn below(name: &str, signal: &str, threshold: f64) -> Self {
        ThresholdRule {
            cmp: Comparison::Below,
            ..ThresholdRule::above(name, signal, threshold)
        }
    }

    /// Set the firing hysteresis (consecutive breaching samples).
    pub fn for_samples(mut self, n: usize) -> Self {
        self.for_samples = n.max(1);
        self
    }

    /// Set the resolution hysteresis (consecutive clean samples).
    pub fn clear_samples(mut self, n: usize) -> Self {
        self.clear_samples = n.max(1);
        self
    }
}

/// Multi-window SLO burn-rate rule. The watched signal is an error
/// fraction in `[0, 1]` per sample (e.g. `1 − slo_attainment` of one
/// telemetry window); `budget` is the error fraction the SLO allows
/// (`1 − slo_target`). The per-sample burn rate is `error / budget`; the
/// rule breaches when the mean burn rate over the last `short_windows`
/// samples **and** over the last `long_windows` samples both reach
/// `factor`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRateRule {
    /// Rule name (the `rule` column of timeline events).
    pub name: String,
    /// Error-fraction signal this rule watches.
    pub signal: String,
    /// Allowed error fraction (`1 − slo_target`), > 0.
    pub budget: f64,
    /// Burn-rate multiple that breaches (≥ 1 is meaningful).
    pub factor: f64,
    /// Fast window length in samples (≥ 1).
    pub short_windows: usize,
    /// Slow window length in samples (≥ `short_windows`).
    pub long_windows: usize,
    /// Consecutive clean samples before a firing rule resolves (≥ 1).
    pub clear_samples: usize,
}

impl BurnRateRule {
    /// A burn-rate rule for an SLO target (e.g. `0.95` → 5% budget),
    /// firing at `factor`× sustained burn over 1-sample short and
    /// 4-sample long windows, resolving after 2 clean samples.
    pub fn new(name: &str, signal: &str, slo_target: f64, factor: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&slo_target),
            "slo_target must be in [0, 1): {slo_target}"
        );
        BurnRateRule {
            name: name.to_string(),
            signal: signal.to_string(),
            budget: 1.0 - slo_target,
            factor,
            short_windows: 1,
            long_windows: 4,
            clear_samples: 2,
        }
    }

    /// Set the fast/slow window lengths in samples.
    pub fn windows(mut self, short: usize, long: usize) -> Self {
        self.short_windows = short.max(1);
        self.long_windows = long.max(self.short_windows);
        self
    }

    /// Set the resolution hysteresis (consecutive clean samples).
    pub fn clear_samples(mut self, n: usize) -> Self {
        self.clear_samples = n.max(1);
        self
    }
}

/// One rule of an [`AlertEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum AlertRule {
    Threshold(ThresholdRule),
    BurnRate(BurnRateRule),
}

impl AlertRule {
    fn name(&self) -> &str {
        match self {
            AlertRule::Threshold(r) => &r.name,
            AlertRule::BurnRate(r) => &r.name,
        }
    }

    fn signal(&self) -> &str {
        match self {
            AlertRule::Threshold(r) => &r.signal,
            AlertRule::BurnRate(r) => &r.signal,
        }
    }

    fn for_samples(&self) -> usize {
        match self {
            AlertRule::Threshold(r) => r.for_samples,
            AlertRule::BurnRate(_) => 1,
        }
    }

    fn clear_samples(&self) -> usize {
        match self {
            AlertRule::Threshold(r) => r.clear_samples,
            AlertRule::BurnRate(r) => r.clear_samples,
        }
    }
}

/// Kind of an [`AlertEvent`] on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A rule started breaching but has not met its `for_samples`
    /// hysteresis yet.
    Pending,
    /// A rule crossed its hysteresis and is now active.
    Firing,
    /// A firing rule observed `clear_samples` clean samples.
    Resolved,
    /// An externally injected marker (e.g. a serving health trip) placed
    /// on the same timeline via [`AlertEngine::annotate`].
    Annotation,
}

impl AlertKind {
    /// Lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::Pending => "pending",
            AlertKind::Firing => "firing",
            AlertKind::Resolved => "resolved",
            AlertKind::Annotation => "annotation",
        }
    }
}

/// One transition (or annotation) on the alert timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Simulated timestamp of the observation that caused the event, in
    /// nanoseconds (or whatever unit the caller's timeline uses — the
    /// engine never interprets it).
    pub t_ns: u64,
    /// Rule name (or annotation label).
    pub rule: String,
    /// Transition kind.
    pub kind: AlertKind,
    /// The value that drove the transition: the signal value for
    /// threshold rules, the short-window burn rate for burn-rate rules,
    /// the caller's payload for annotations.
    pub value: f64,
}

/// The exportable product of an alerting run: events in timeline order
/// (ascending `t_ns`, insertion order within ties — deterministic given
/// the same observations).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertTimeline {
    pub events: Vec<AlertEvent>,
}

impl AlertTimeline {
    /// JSON Lines export: one `{"t","rule","kind","value"}` object per
    /// event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"t\":{},\"rule\":\"{}\",\"kind\":\"{}\",\"value\":{}}}",
                e.t_ns,
                json_escape(&e.rule),
                e.kind.label(),
                json_f64(e.value)
            );
        }
        out
    }

    /// CSV export with a `t,rule,kind,value` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t[ns],rule,kind,value\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                e.t_ns,
                e.rule,
                e.kind.label(),
                if e.value.is_finite() {
                    format!("{}", e.value)
                } else {
                    String::new()
                }
            );
        }
        out
    }

    /// Events of one rule, in timeline order.
    pub fn for_rule(&self, rule: &str) -> Vec<&AlertEvent> {
        self.events.iter().filter(|e| e.rule == rule).collect()
    }

    /// Number of events of the given kind.
    pub fn count(&self, kind: AlertKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, PartialEq)]
struct RuleState {
    phase: Phase,
    /// Consecutive breaching samples (while inactive/pending) or clean
    /// samples (while firing).
    streak: usize,
    /// Trailing samples for burn-rate rules (bounded by `long_windows`).
    window: VecDeque<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Inactive,
    Pending,
    Firing,
}

/// Deterministic alert engine: a set of rules evaluated against
/// explicitly timestamped samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    events: Vec<AlertEvent>,
}

impl AlertEngine {
    pub fn new() -> Self {
        AlertEngine::default()
    }

    /// Add a rule (builder style). Rule names should be unique; the
    /// engine does not enforce it, but timelines become ambiguous.
    pub fn with_rule(mut self, rule: AlertRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Add a rule.
    pub fn add_rule(&mut self, rule: AlertRule) {
        if let AlertRule::BurnRate(r) = &rule {
            assert!(
                r.budget > 0.0,
                "burn-rate rule {:?}: budget must be > 0",
                r.name
            );
            assert!(
                r.factor > 0.0,
                "burn-rate rule {:?}: factor must be > 0",
                r.name
            );
        }
        self.states.push(RuleState {
            phase: Phase::Inactive,
            streak: 0,
            window: VecDeque::new(),
        });
        self.rules.push(rule);
    }

    /// Feed one timestamped sample: `signals` maps signal names to
    /// values. A rule whose signal is absent from the sample skips this
    /// observation entirely (no state change). Timestamps are expected
    /// to be non-decreasing; the engine does not reorder observations.
    pub fn observe(&mut self, t_ns: u64, signals: &[(&str, f64)]) {
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(&(_, value)) = signals.iter().find(|(s, _)| *s == rule.signal()) else {
                continue;
            };
            let (breach, event_value) = match rule {
                AlertRule::Threshold(r) => {
                    let b = match r.cmp {
                        Comparison::Above => value > r.threshold,
                        Comparison::Below => value < r.threshold,
                    };
                    (b, value)
                }
                AlertRule::BurnRate(r) => {
                    state.window.push_back(value);
                    while state.window.len() > r.long_windows {
                        state.window.pop_front();
                    }
                    let mean_of = |n: usize| {
                        let take = n.min(state.window.len());
                        let sum: f64 = state.window.iter().rev().take(take).sum();
                        sum / take.max(1) as f64
                    };
                    let burn_short = mean_of(r.short_windows) / r.budget;
                    let burn_long = mean_of(r.long_windows) / r.budget;
                    (burn_short >= r.factor && burn_long >= r.factor, burn_short)
                }
            };
            let emit = |events: &mut Vec<AlertEvent>, kind: AlertKind| {
                events.push(AlertEvent {
                    t_ns,
                    rule: rule.name().to_string(),
                    kind,
                    value: event_value,
                });
            };
            match (state.phase, breach) {
                (Phase::Inactive, true) => {
                    state.streak = 1;
                    if state.streak >= rule.for_samples() {
                        state.phase = Phase::Firing;
                        state.streak = 0;
                        emit(&mut self.events, AlertKind::Firing);
                    } else {
                        state.phase = Phase::Pending;
                        emit(&mut self.events, AlertKind::Pending);
                    }
                }
                (Phase::Inactive, false) => {}
                (Phase::Pending, true) => {
                    state.streak += 1;
                    if state.streak >= rule.for_samples() {
                        state.phase = Phase::Firing;
                        state.streak = 0;
                        emit(&mut self.events, AlertKind::Firing);
                    }
                }
                // A pending alert that stops breaching never fired, so it
                // resolves silently (matching common alerting practice).
                (Phase::Pending, false) => {
                    state.phase = Phase::Inactive;
                    state.streak = 0;
                }
                (Phase::Firing, true) => state.streak = 0,
                (Phase::Firing, false) => {
                    state.streak += 1;
                    if state.streak >= rule.clear_samples() {
                        state.phase = Phase::Inactive;
                        state.streak = 0;
                        emit(&mut self.events, AlertKind::Resolved);
                    }
                }
            }
        }
    }

    /// Place an external marker on the timeline (e.g. a serving replica's
    /// circuit-breaker trip): rules never react to annotations, they
    /// only interleave with rule transitions in the export.
    pub fn annotate(&mut self, t_ns: u64, label: &str, value: f64) {
        self.events.push(AlertEvent {
            t_ns,
            rule: label.to_string(),
            kind: AlertKind::Annotation,
            value,
        });
    }

    /// Names of the rules currently firing, in rule order.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.phase == Phase::Firing)
            .map(|(r, _)| r.name())
            .collect()
    }

    /// Whether the named rule is currently firing.
    pub fn is_firing(&self, rule: &str) -> bool {
        self.firing().contains(&rule)
    }

    /// Events recorded so far, in insertion order (annotations may be
    /// out of time order until [`finish`](Self::finish) sorts them).
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Consume the engine into the final timeline: events sorted by
    /// timestamp (stable — insertion order breaks ties, so the result is
    /// deterministic given the same observation sequence).
    pub fn finish(mut self) -> AlertTimeline {
        self.events.sort_by_key(|e| e.t_ns);
        AlertTimeline {
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_engine(for_samples: usize, clear_samples: usize) -> AlertEngine {
        AlertEngine::new().with_rule(AlertRule::Threshold(
            ThresholdRule::above("depth_high", "depth", 10.0)
                .for_samples(for_samples)
                .clear_samples(clear_samples),
        ))
    }

    #[test]
    fn threshold_fires_and_resolves_without_hysteresis() {
        let mut e = threshold_engine(1, 1);
        e.observe(100, &[("depth", 5.0)]);
        assert!(e.firing().is_empty());
        e.observe(200, &[("depth", 11.0)]);
        assert!(e.is_firing("depth_high"));
        e.observe(300, &[("depth", 3.0)]);
        assert!(!e.is_firing("depth_high"));
        let t = e.finish();
        let kinds: Vec<AlertKind> = t.events.iter().map(|ev| ev.kind).collect();
        assert_eq!(kinds, [AlertKind::Firing, AlertKind::Resolved]);
        assert_eq!(t.events[0].t_ns, 200);
        assert_eq!(t.events[1].t_ns, 300);
    }

    #[test]
    fn firing_hysteresis_requires_consecutive_breaches() {
        let mut e = threshold_engine(3, 1);
        // Two breaches, a clean sample, then three breaches.
        e.observe(1, &[("depth", 20.0)]); // pending
        e.observe(2, &[("depth", 20.0)]);
        e.observe(3, &[("depth", 0.0)]); // silently resets
        e.observe(4, &[("depth", 20.0)]); // pending again
        e.observe(5, &[("depth", 20.0)]);
        assert!(!e.is_firing("depth_high"));
        e.observe(6, &[("depth", 20.0)]); // third consecutive → firing
        assert!(e.is_firing("depth_high"));
        let t = e.finish();
        assert_eq!(t.count(AlertKind::Pending), 2);
        assert_eq!(t.count(AlertKind::Firing), 1);
        assert_eq!(t.count(AlertKind::Resolved), 0);
    }

    #[test]
    fn resolution_hysteresis_requires_consecutive_clean_samples() {
        let mut e = threshold_engine(1, 2);
        e.observe(1, &[("depth", 20.0)]);
        e.observe(2, &[("depth", 0.0)]); // 1 clean — still firing
        assert!(e.is_firing("depth_high"));
        e.observe(3, &[("depth", 20.0)]); // breach resets the clean streak
        e.observe(4, &[("depth", 0.0)]);
        e.observe(5, &[("depth", 0.0)]); // 2 consecutive clean → resolved
        assert!(!e.is_firing("depth_high"));
        let t = e.finish();
        assert_eq!(t.count(AlertKind::Firing), 1);
        assert_eq!(t.count(AlertKind::Resolved), 1);
        assert_eq!(t.events.last().unwrap().t_ns, 5);
    }

    #[test]
    fn below_rules_and_missing_signals() {
        let mut e = AlertEngine::new().with_rule(AlertRule::Threshold(ThresholdRule::below(
            "slo_low", "slo", 0.9,
        )));
        e.observe(1, &[("other", 0.0)]); // signal absent: no state change
        e.observe(2, &[("slo", 0.95)]);
        assert!(e.firing().is_empty());
        e.observe(3, &[("slo", 0.5)]);
        assert!(e.is_firing("slo_low"));
    }

    #[test]
    fn burn_rate_needs_short_and_long_windows_hot() {
        // 95% SLO → 5% budget; factor 2 → sustained error ≥ 10%.
        let mut e = AlertEngine::new().with_rule(AlertRule::BurnRate(
            BurnRateRule::new("slo_burn", "err", 0.95, 2.0)
                .windows(1, 4)
                .clear_samples(2),
        ));
        // One hot sample: short window breaches, long window (mean of
        // history) breaches too since history is just this sample.
        e.observe(1, &[("err", 0.5)]);
        assert!(e.is_firing("slo_burn"));
        // Cool samples dilute the long window and clear the short one.
        e.observe(2, &[("err", 0.0)]);
        e.observe(3, &[("err", 0.0)]);
        assert!(!e.is_firing("slo_burn"), "2 clean samples must resolve");
        // A single hot sample after a long clean stretch: short window is
        // hot but the 4-sample long window mean is 0.5/4 = 0.125 → burn
        // 2.5 ≥ 2 fires; with a longer window it would not.
        let t = e.finish();
        assert_eq!(t.count(AlertKind::Firing), 1);
        assert_eq!(t.count(AlertKind::Resolved), 1);
    }

    #[test]
    fn long_window_suppresses_single_spikes() {
        let mut e = AlertEngine::new().with_rule(AlertRule::BurnRate(
            BurnRateRule::new("slo_burn", "err", 0.95, 2.0).windows(1, 8),
        ));
        // Seven clean windows, then one spike: short burn is 10 but the
        // 8-window long mean is 0.5/8 ≈ 0.0625 → burn 1.25 < 2.
        for t in 1..=7 {
            e.observe(t, &[("err", 0.0)]);
        }
        e.observe(8, &[("err", 0.5)]);
        assert!(!e.is_firing("slo_burn"), "one spike must not page");
        // Sustained errors breach both windows.
        for t in 9..=16 {
            e.observe(t, &[("err", 0.5)]);
        }
        assert!(e.is_firing("slo_burn"));
    }

    #[test]
    fn annotations_interleave_on_the_sorted_timeline() {
        let mut e = threshold_engine(1, 1);
        e.observe(100, &[("depth", 20.0)]);
        e.annotate(50, "health.trip", 0.0);
        e.annotate(150, "health.recal", 1.0);
        e.observe(200, &[("depth", 0.0)]);
        let t = e.finish();
        let order: Vec<(u64, &str)> = t
            .events
            .iter()
            .map(|ev| (ev.t_ns, ev.kind.label()))
            .collect();
        assert_eq!(
            order,
            [
                (50, "annotation"),
                (100, "firing"),
                (150, "annotation"),
                (200, "resolved")
            ]
        );
        assert_eq!(t.for_rule("health.trip").len(), 1);
    }

    #[test]
    fn identical_observations_yield_identical_timelines() {
        let run = || {
            let mut e = AlertEngine::new()
                .with_rule(AlertRule::Threshold(
                    ThresholdRule::above("a", "x", 1.0).for_samples(2),
                ))
                .with_rule(AlertRule::BurnRate(BurnRateRule::new("b", "e", 0.99, 3.0)));
            for t in 0..50u64 {
                let x = ((t * 37) % 11) as f64 / 3.0;
                let err = if t % 7 == 0 { 0.2 } else { 0.0 };
                e.observe(t, &[("x", x), ("e", err)]);
                if t % 13 == 0 {
                    e.annotate(t, "mark", t as f64);
                }
            }
            e.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exports_are_wellformed() {
        let mut e = threshold_engine(1, 1);
        e.observe(10, &[("depth", 99.0)]);
        e.annotate(20, "note \"quoted\"", f64::NAN);
        let t = e.finish();
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(
            jsonl.contains("{\"t\":10,\"rule\":\"depth_high\",\"kind\":\"firing\",\"value\":99}")
        );
        assert!(jsonl.contains("\\\"quoted\\\""));
        assert!(jsonl.contains("\"value\":null"));
        let csv = t.to_csv();
        assert!(csv.starts_with("t[ns],rule,kind,value\n"));
        assert_eq!(csv.lines().count(), 3);
    }
}
