//! # autohet-obs — zero-dependency observability substrate
//!
//! Every layer of the stack used to invent its own counters
//! (`EngineStats` in the evaluation engine, `SearchTiming` in the RL
//! search, per-tenant histograms in the serving simulator). This crate is
//! the shared substrate underneath all of them:
//!
//! - [`trace`]: a span-based structured tracer — hierarchical scopes with
//!   monotonic timestamps, recorded into a bounded ring buffer, exported
//!   as JSONL or as collapsed stacks consumable by flamegraph tools.
//! - [`metrics`]: a metrics registry unifying counters, gauges, and
//!   log₂-binned histograms behind typed handles, with deterministic
//!   (name-sorted) text and JSONL snapshots.
//! - [`series`]: time-series tables (named, unit-annotated columns) with
//!   CSV and JSONL export — the carrier for per-episode search traces and
//!   per-window serving telemetry.
//! - [`alert`]: a deterministic alert engine — threshold and multi-window
//!   SLO burn-rate rules with a pending → firing → resolved state machine,
//!   evaluated on simulated time so alert timelines are bit-reproducible.
//! - [`export`]: streaming sinks (bounded-buffer JSONL file, in-memory,
//!   fan-out) and a sim-time snapshot scheduler, so long campaigns flush
//!   telemetry incrementally instead of only at end of run.
//! - [`regress`]: a perf-regression sentinel over the `BENCH_*.json`
//!   min-of-N snapshots, with a noise-aware threshold and a JSONL verdict
//!   artifact for CI.
//!
//! ## Overhead contract
//!
//! Instrumented code calls [`trace::span`] unconditionally; when no
//! recorder is installed the call is a single relaxed atomic load and the
//! returned guard's `Drop` is a no-op. Nothing in this crate feeds back
//! into instrumented computations, so **results are bit-identical with
//! the recorder on or off** — the downstream crates property-test exactly
//! that for `evaluate`, `rl_search`, and `run_serving`.
//!
//! ## Determinism
//!
//! Span timestamps are wall-clock (monotonic, process-relative) and so
//! vary run to run; everything else — metric snapshots, series exports,
//! collapsed stacks — is deterministic given the same recorded values,
//! because all exports iterate in name- or insertion-sorted order.
//!
//! This crate deliberately has **no dependencies** (std only).

pub mod alert;
pub mod export;
pub mod metrics;
pub mod regress;
pub mod series;
pub mod trace;

pub use alert::{
    AlertEngine, AlertEvent, AlertKind, AlertRule, AlertTimeline, BurnRateRule, Comparison,
    ThresholdRule,
};
pub use export::{FanOutSink, JsonlFileSink, MemorySink, SeriesStream, Sink, SnapshotScheduler};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, Registry, SnapshotValue};
pub use regress::{
    compare, parse_snapshot, BenchSnapshot, RegressConfig, RegressReport, RegressRow, Verdict,
};
pub use series::Series;
pub use trace::{Span, SpanEvent, Tracer};

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the hand-rolled JSONL writers in this crate.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON/CSV: finite values use Rust's shortest
/// round-trip formatting; non-finite values (invalid JSON) become `null`
/// markers in JSON and empty cells in CSV via the callers.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn float_formatting_is_roundtrip_and_null_safe() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
