//! Process-wide metrics registry.
//!
//! A [`Registry`] hands out typed handles — [`Counter`], [`Gauge`],
//! [`Histogram`] — keyed by name. Handles are cheap `Arc` clones over
//! atomics, so instrumented code can stash them and update lock-free;
//! the registry itself is only locked on registration and snapshot.
//!
//! Snapshots iterate metrics in name order, so [`Registry::to_text`] and
//! [`Registry::to_jsonl`] are deterministic given the same recorded
//! values. Histograms use the same log₂ binning as
//! `autohet-serve`'s `LatencyHistogram` (bin `i` counts values in
//! `[2^i, 2^(i+1))`, bin 0 also absorbing 0), so serving latency
//! distributions can be mirrored into the registry without re-bucketing.

use crate::{json_escape, json_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram bins (covers the full `u64` range).
pub const HIST_BINS: usize = 64;

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (may be negative).
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log₂-binned histogram handle: bin `i` counts values in
/// `[2^i, 2^(i+1))` ns/units (bin 0 also absorbs 0).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

struct HistogramCore {
    bins: [AtomicU64; HIST_BINS],
}

/// Map a value to its log₂ bin (shared with the snapshot quantile).
fn bin_of(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (value.ilog2() as usize).min(HIST_BINS - 1)
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.0.bins[bin_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.bins.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copy out the per-bin counts.
    pub fn bins(&self) -> Vec<u64> {
        self.0
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank quantile estimate: the upper bound of the bin holding
    /// the rank-`q` observation (see [`quantile_from_bins`]).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_bins(&self.bins(), q)
    }

    /// Add pre-binned counts (same log₂ binning) into this histogram —
    /// how externally accumulated distributions (e.g. a serving run's
    /// latency histogram) are mirrored into the registry without
    /// re-recording every observation. Extra bins beyond [`HIST_BINS`]
    /// are ignored.
    pub fn merge_bins(&self, bins: &[u64]) {
        for (slot, &c) in self.0.bins.iter().zip(bins) {
            slot.fetch_add(c, Ordering::Relaxed);
        }
    }
}

/// Nearest-rank quantile over log₂ bins, reporting the **upper bound** of
/// the bin containing the rank-⌈q·n⌉ observation (a conservative
/// estimate: true value ≤ reported value). Returns 0 for an empty
/// histogram; `q` is clamped to `[0, 1]` and `q = 0` selects the first
/// observation's bin.
pub fn quantile_from_bins(bins: &[u64], q: f64) -> u64 {
    let total: u64 = bins.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in bins.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Bin i covers [2^i, 2^(i+1)); its inclusive upper bound is
            // 2^(i+1) - 1, except bin 0 ([0, 2)) and the saturated last
            // bin (which extends to u64::MAX).
            return if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
        }
    }
    u64::MAX
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(i64),
    /// Per-bin counts of a log₂ histogram.
    Histogram(Vec<u64>),
}

/// A named metric captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: String,
    pub value: SnapshotValue,
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named metric registry. `counter`/`gauge`/`histogram` register on
/// first use and return the existing handle on subsequent calls with the
/// same name; registering a name as two different kinds panics (it is a
/// programming error, caught in tests).
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = lock_ok(&self.slots);
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = lock_ok(&self.slots);
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = lock_ok(&self.slots);
        match slots.entry(name.to_string()).or_insert_with(|| {
            Slot::Histogram(Histogram(Arc::new(HistogramCore {
                bins: std::array::from_fn(|_| AtomicU64::new(0)),
            })))
        }) {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Reset every registered metric to zero **in place**. Entries are
    /// not dropped, so typed handles held across a clear stay wired to
    /// the live cores (and the names remain visible to snapshots): a
    /// handle update after `clear` is observed, not lost on a detached
    /// `Arc`.
    pub fn clear(&self) {
        for slot in lock_ok(&self.slots).values() {
            match slot {
                Slot::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Slot::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Slot::Histogram(h) => {
                    for bin in &h.0.bins {
                        bin.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Capture every metric's current value, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        lock_ok(&self.slots)
            .iter()
            .map(|(name, slot)| MetricSnapshot {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => SnapshotValue::Counter(c.get()),
                    Slot::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Slot::Histogram(h) => SnapshotValue::Histogram(h.bins()),
                },
            })
            .collect()
    }

    /// Human-readable `name value` lines; histograms render count and
    /// p50/p95/p99 bin upper bounds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            match &m.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                SnapshotValue::Histogram(bins) => {
                    let count: u64 = bins.iter().sum();
                    let _ = writeln!(
                        out,
                        "{} count={count} p50<={} p95<={} p99<={}",
                        m.name,
                        quantile_from_bins(bins, 0.50),
                        quantile_from_bins(bins, 0.95),
                        quantile_from_bins(bins, 0.99),
                    );
                }
            }
        }
        out
    }

    /// JSON Lines export: one `{"name":...,"kind":...,...}` object per
    /// metric, sorted by name.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            let name = json_escape(&m.name);
            match &m.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{v}}}"
                    );
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}"
                    );
                }
                SnapshotValue::Histogram(bins) => {
                    let count: u64 = bins.iter().sum();
                    // Only non-empty bins are listed, as [bin, count]
                    // pairs, to keep lines compact.
                    let pairs: Vec<String> = bins
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{i},{c}]"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{count},\"p50\":{},\"p99\":{},\"bins\":[{}]}}",
                        json_f64(quantile_from_bins(bins, 0.50) as f64),
                        json_f64(quantile_from_bins(bins, 0.99) as f64),
                        pairs.join(",")
                    );
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Process-wide registry shared by all instrumented crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("evals");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("evals").get(), 5);
        let g = r.gauge("depth");
        g.set(7);
        g.adjust(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_bins_match_serve_semantics() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let bins = h.bins();
        assert_eq!(bins[0], 2);
        assert_eq!(bins[1], 2);
        assert_eq!(bins[10], 1);
        assert_eq!(bins[63], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn quantiles_report_bin_upper_bounds() {
        let mut bins = vec![0u64; HIST_BINS];
        assert_eq!(quantile_from_bins(&bins, 0.5), 0); // empty
        bins[3] = 1; // a single sample in [8, 16)
        assert_eq!(quantile_from_bins(&bins, 0.0), 15);
        assert_eq!(quantile_from_bins(&bins, 0.5), 15);
        assert_eq!(quantile_from_bins(&bins, 1.0), 15);
        bins[10] = 99; // now p50/p99 land in [1024, 2048)
        assert_eq!(quantile_from_bins(&bins, 0.5), 2047);
        assert_eq!(quantile_from_bins(&bins, 0.99), 2047);
        assert_eq!(quantile_from_bins(&bins, 0.01), 15);
        let mut top = vec![0u64; HIST_BINS];
        top[63] = 5;
        assert_eq!(quantile_from_bins(&top, 0.5), u64::MAX);
    }

    #[test]
    fn snapshot_is_name_sorted_and_exports_deterministically() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.gauge("a.first").set(-2);
        r.histogram("m.mid").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(
            r.to_text(),
            "a.first -2\nm.mid count=1 p50<=127 p95<=127 p99<=127\nz.last 1\n"
        );
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("{\"name\":\"a.first\",\"kind\":\"gauge\",\"value\":-2}"));
        assert!(jsonl
            .contains("{\"name\":\"m.mid\",\"kind\":\"histogram\",\"count\":1,\"p50\":127,\"p99\":127,\"bins\":[[6,1]]}"));
    }

    #[test]
    fn handles_stay_valid_across_clear() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        c.add(10);
        g.set(-5);
        h.record(1024);
        r.clear();
        // Values reset in place; names stay registered.
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.snapshot().len(), 3);
        // The old handles still feed the live cores: updates through them
        // are visible to freshly fetched handles and to snapshots.
        c.inc();
        g.adjust(3);
        h.record(7);
        assert_eq!(r.counter("c").get(), 1);
        assert_eq!(r.gauge("g").get(), 3);
        assert_eq!(r.histogram("h").count(), 1);
        assert!(r.to_text().contains("c 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
