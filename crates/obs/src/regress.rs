//! Perf-regression sentinel over `BENCH_*.json` snapshots.
//!
//! `scripts/bench_snapshot.sh` records min-of-N criterion timings as
//! flat `{"results": {"name": ns, ...}}` JSON. This module parses those
//! snapshots (with a small hand-rolled JSON reader — the obs crate is
//! deliberately dependency-free and the workspace's serde stub does not
//! serialize), compares a current snapshot against a baseline with a
//! noise-aware threshold, and renders a machine-checkable verdict
//! artifact. `scripts/check.sh` runs it in warn mode on every gate;
//! `--hard` upgrades regressions to a non-zero exit for release gating.
//!
//! ## Noise model
//!
//! Min-of-N already suppresses scheduler noise, but small kernels still
//! jitter by a few percent and sub-microsecond benches by whole
//! nanoseconds. A result counts as **regressed** only when
//!
//! ```text
//! current > baseline * (1 + rel_threshold) + abs_slack_ns
//! ```
//!
//! and symmetrically as **improved** below
//! `baseline * (1 − rel_threshold) − abs_slack_ns`. The absolute slack
//! keeps 10 ns → 13 ns flips on trivial benches from paging; the
//! relative threshold (default 20%) absorbs run-to-run jitter on big
//! ones.

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, literals).
// ---------------------------------------------------------------------------

/// Parsed JSON value. Only what snapshots need; numbers are f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order of the source text is preserved via BTreeMap's sorted
    /// iteration being irrelevant here — lookups are by key.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for bench names;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bench names are ASCII, but
                // stay correct for arbitrary input).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot model and comparison.
// ---------------------------------------------------------------------------

/// One parsed `BENCH_*.json` snapshot (the fields the sentinel needs).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Suite name (`"kernels"`, `"search"`, …).
    pub bench: String,
    /// Git revision the snapshot was taken at, if recorded.
    pub git_rev: String,
    /// `name → min ns/iter`, sorted by name.
    pub results: BTreeMap<String, f64>,
}

/// Parse a snapshot document. Nested `derived` blocks and any unknown
/// top-level keys are ignored; only `results` entries that are plain
/// numbers participate in comparison.
pub fn parse_snapshot(text: &str) -> Result<BenchSnapshot, String> {
    let doc = Json::parse(text)?;
    let results_obj = doc
        .get("results")
        .and_then(Json::as_obj)
        .ok_or("snapshot has no \"results\" object".to_string())?;
    let mut results = BTreeMap::new();
    for (name, v) in results_obj {
        if let Some(ns) = v.as_f64() {
            results.insert(name.clone(), ns);
        }
    }
    Ok(BenchSnapshot {
        bench: doc
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        git_rev: doc
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        results,
    })
}

/// Noise-aware comparison thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressConfig {
    /// Relative change that counts as signal (0.20 = 20%).
    pub rel_threshold: f64,
    /// Absolute slack in nanoseconds added on top, shielding tiny benches.
    pub abs_slack_ns: f64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            rel_threshold: 0.20,
            abs_slack_ns: 100.0,
        }
    }
}

/// Verdict for one benchmark entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Slower than baseline beyond threshold + slack.
    Regressed,
    /// Faster than baseline beyond threshold + slack.
    Improved,
    /// Within the noise envelope.
    Unchanged,
    /// Present only in the current snapshot.
    Added,
    /// Present only in the baseline.
    Removed,
}

impl Verdict {
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One row of a comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressRow {
    pub name: String,
    /// Baseline min ns/iter (NaN for added entries).
    pub baseline_ns: f64,
    /// Current min ns/iter (NaN for removed entries).
    pub current_ns: f64,
    /// `current / baseline` (NaN when either side is missing).
    pub ratio: f64,
    pub verdict: Verdict,
}

/// Full comparison of one suite, rows sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    pub bench: String,
    pub baseline_rev: String,
    pub current_rev: String,
    pub config: RegressConfig,
    pub rows: Vec<RegressRow>,
}

/// Compare `current` against `baseline` under `cfg`.
pub fn compare(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    cfg: RegressConfig,
) -> RegressReport {
    let mut names: Vec<&String> = baseline.results.keys().collect();
    for name in current.results.keys() {
        if !baseline.results.contains_key(name) {
            names.push(name);
        }
    }
    names.sort();
    let rows = names
        .into_iter()
        .map(|name| {
            let base = baseline.results.get(name).copied();
            let cur = current.results.get(name).copied();
            let (baseline_ns, current_ns, ratio, verdict) = match (base, cur) {
                (Some(b), Some(c)) => {
                    let verdict = if c > b * (1.0 + cfg.rel_threshold) + cfg.abs_slack_ns {
                        Verdict::Regressed
                    } else if c < b * (1.0 - cfg.rel_threshold) - cfg.abs_slack_ns {
                        Verdict::Improved
                    } else {
                        Verdict::Unchanged
                    };
                    (b, c, if b > 0.0 { c / b } else { f64::NAN }, verdict)
                }
                (None, Some(c)) => (f64::NAN, c, f64::NAN, Verdict::Added),
                (Some(b), None) => (b, f64::NAN, f64::NAN, Verdict::Removed),
                (None, None) => unreachable!("name came from one of the maps"),
            };
            RegressRow {
                name: name.clone(),
                baseline_ns,
                current_ns,
                ratio,
                verdict,
            }
        })
        .collect();
    RegressReport {
        bench: current.bench.clone(),
        baseline_rev: baseline.git_rev.clone(),
        current_rev: current.git_rev.clone(),
        config: cfg,
        rows,
    }
}

impl RegressReport {
    /// Rows that regressed.
    pub fn regressions(&self) -> Vec<&RegressRow> {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .collect()
    }

    /// Rows that improved.
    pub fn improvements(&self) -> Vec<&RegressRow> {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improved)
            .collect()
    }

    /// JSONL verdict artifact: one object per row plus a trailing
    /// summary object (`"kind":"summary"`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{{\"kind\":\"row\",\"bench\":\"{}\",\"name\":\"{}\",\"baseline_ns\":{},\"current_ns\":{},\"ratio\":{},\"verdict\":\"{}\"}}",
                crate::json_escape(&self.bench),
                crate::json_escape(&r.name),
                crate::json_f64(r.baseline_ns),
                crate::json_f64(r.current_ns),
                crate::json_f64(r.ratio),
                r.verdict.label()
            );
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"summary\",\"bench\":\"{}\",\"baseline_rev\":\"{}\",\"current_rev\":\"{}\",\"rel_threshold\":{},\"abs_slack_ns\":{},\"total\":{},\"regressed\":{},\"improved\":{}}}",
            crate::json_escape(&self.bench),
            crate::json_escape(&self.baseline_rev),
            crate::json_escape(&self.current_rev),
            crate::json_f64(self.config.rel_threshold),
            crate::json_f64(self.config.abs_slack_ns),
            self.rows.len(),
            self.regressions().len(),
            self.improvements().len()
        );
        out
    }

    /// Human-readable summary for terminal / CI logs.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench {:?}: {} entries, {} regressed, {} improved ({}% threshold, {} ns slack)",
            self.bench,
            self.rows.len(),
            self.regressions().len(),
            self.improvements().len(),
            self.config.rel_threshold * 100.0,
            self.config.abs_slack_ns
        );
        for r in &self.rows {
            if r.verdict == Verdict::Unchanged {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<10} {}  {} ns -> {} ns (x{:.3})",
                r.verdict.label(),
                r.name,
                r.baseline_ns,
                r.current_ns,
                r.ratio
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            bench: "test".into(),
            git_rev: "abc".into(),
            results: entries.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn json_parser_handles_snapshot_shape() {
        let doc = Json::parse(
            r#"{"bench":"kernels","reps":5,"results":{"a/b":10,"c":2.5e3},
                "derived":{"x":{"speedup":4.25}},"flag":true,"none":null,
                "arr":[1,"two\n",{}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("kernels"));
        assert_eq!(
            doc.get("results")
                .and_then(|r| r.get("c"))
                .and_then(Json::as_f64),
            Some(2500.0)
        );
        assert_eq!(
            doc.get("derived")
                .and_then(|d| d.get("x"))
                .and_then(|x| x.get("speedup"))
                .and_then(Json::as_f64),
            Some(4.25)
        );
        assert!(Json::parse("{\"a\":1} junk").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn parse_real_bench_kernels_snapshot() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        let text = std::fs::read_to_string(path).expect("BENCH_kernels.json present at repo root");
        let snap = parse_snapshot(&text).unwrap();
        assert_eq!(snap.bench, "kernels");
        assert!(!snap.results.is_empty());
        assert!(snap.results.values().all(|&ns| ns > 0.0));
    }

    #[test]
    fn identical_snapshots_are_unchanged() {
        let base = snap(&[("a", 1000.0), ("b", 50.0)]);
        let report = compare(&base, &base, RegressConfig::default());
        assert!(report.regressions().is_empty());
        assert!(report.improvements().is_empty());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
    }

    #[test]
    fn twenty_percent_slowdown_is_flagged_small_jitter_is_not() {
        let cfg = RegressConfig::default();
        let base = snap(&[("big", 100_000.0), ("tiny", 10.0)]);
        // 25% slowdown on a big bench: regressed.
        let cur = snap(&[("big", 125_000.0), ("tiny", 10.0)]);
        let report = compare(&base, &cur, cfg);
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].name, "big");
        // 19% slowdown: inside the envelope.
        let cur = snap(&[("big", 119_000.0), ("tiny", 10.0)]);
        assert!(compare(&base, &cur, cfg).regressions().is_empty());
        // Tiny bench tripling from 10 ns to 30 ns: shielded by abs slack.
        let cur = snap(&[("big", 100_000.0), ("tiny", 30.0)]);
        assert!(compare(&base, &cur, cfg).regressions().is_empty());
        // Large improvement is reported as such.
        let cur = snap(&[("big", 50_000.0), ("tiny", 10.0)]);
        assert_eq!(compare(&base, &cur, cfg).improvements().len(), 1);
    }

    #[test]
    fn added_and_removed_entries_are_classified() {
        let base = snap(&[("a", 100.0), ("gone", 5.0)]);
        let cur = snap(&[("a", 100.0), ("new", 7.0)]);
        let report = compare(&base, &cur, RegressConfig::default());
        let verdicts: Vec<(&str, Verdict)> = report
            .rows
            .iter()
            .map(|r| (r.name.as_str(), r.verdict))
            .collect();
        assert_eq!(
            verdicts,
            [
                ("a", Verdict::Unchanged),
                ("gone", Verdict::Removed),
                ("new", Verdict::Added)
            ]
        );
    }

    #[test]
    fn verdict_artifact_has_rows_and_summary() {
        let base = snap(&[("a", 100_000.0)]);
        let cur = snap(&[("a", 130_000.0)]);
        let report = compare(&base, &cur, RegressConfig::default());
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"verdict\":\"regressed\""));
        assert!(jsonl.contains("\"kind\":\"summary\""));
        assert!(jsonl.contains("\"regressed\":1"));
        let text = report.to_text();
        assert!(text.contains("1 regressed"));
    }

    #[test]
    fn real_snapshot_vs_itself_with_injected_slowdown() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        let text = std::fs::read_to_string(path).unwrap();
        let base = parse_snapshot(&text).unwrap();
        // Self-comparison: the real trajectory passes.
        assert!(compare(&base, &base, RegressConfig::default())
            .regressions()
            .is_empty());
        // Inject a 25% slowdown into the largest entry of a copy.
        let mut cur = base.clone();
        let (victim, ns) = cur
            .results
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, v)| (k.clone(), *v))
            .unwrap();
        cur.results.insert(victim.clone(), ns * 1.25);
        let report = compare(&base, &cur, RegressConfig::default());
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].name, victim);
    }
}
