//! Unified lifetime degradation: hard faults, device variation, and
//! conductance drift resolved to one per-epoch state, consumed by the
//! extended repair cascade *recalibrate → remap (spares) → degrade*
//! (DESIGN.md §12).
//!
//! [`autohet_xbar::drift::DriftModel`] describes *how* an accelerator
//! ages; this module decides *what the system does about it* at an
//! evaluation epoch `t`:
//!
//! - [`RecoveryPolicy::NoRecovery`] — the baseline arm: the readout keeps
//!   its factory references (stale against the drifted population) and
//!   the hard-fault cascade is reduced to degradation only (no spares,
//!   no remapping).
//! - [`RecoveryPolicy::RecalibrateOnly`] — readout references are
//!   re-derived against the drifted distribution (cascade step 1), but
//!   stuck components still only degrade.
//! - [`RecoveryPolicy::FullCascade`] — recalibration plus the full hard
//!   repair: spare activation and cross-tile remapping before any
//!   degradation.
//!
//! [`DegradationState::at`] resolves a drift model, an epoch, and a
//! recovery policy into the concrete `(rates, device, reference)` triple
//! the engine evaluates — the single place where the soft and hard
//! degradation axes meet.

use crate::metrics::EvalReport;
use crate::repair::{DegradationMode, RepairPolicy, RepairReport};
use crate::robustness::RobustnessReport;
use autohet_xbar::drift::DriftModel;
use autohet_xbar::fault::FaultRates;
use autohet_xbar::variation::VariationModel;
use serde::{Deserialize, Serialize};

/// What the system does about accumulated degradation at an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No reaction at all: stale readout references, degrade-only repair.
    NoRecovery,
    /// Re-derive the S_ou readout references against the drifted
    /// distribution; hard faults still only degrade.
    RecalibrateOnly,
    /// Recalibrate, then run the full hard cascade: spares → remap →
    /// degrade.
    FullCascade,
}

impl RecoveryPolicy {
    /// All policies, in escalation order (the campaign's sweep axis).
    pub const ALL: [RecoveryPolicy; 3] = [
        RecoveryPolicy::NoRecovery,
        RecoveryPolicy::RecalibrateOnly,
        RecoveryPolicy::FullCascade,
    ];

    /// Whether this policy re-derives readout references at the epoch.
    pub fn recalibrates(&self) -> bool {
        !matches!(self, RecoveryPolicy::NoRecovery)
    }

    /// Whether this policy runs the hard repair (spares + remap).
    pub fn repairs(&self) -> bool {
        matches!(self, RecoveryPolicy::FullCascade)
    }

    /// Stable lowercase label for reports and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::NoRecovery => "no-recovery",
            RecoveryPolicy::RecalibrateOnly => "recalibrate-only",
            RecoveryPolicy::FullCascade => "full-cascade",
        }
    }
}

/// Drift-evaluation parameters for
/// [`EvalEngine::with_drift`](crate::engine::EvalEngine::with_drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftEvalConfig {
    /// The temporal degradation model (corner + seed).
    pub drift: DriftModel,
    /// Monte-Carlo draws per `(layer, shape, epoch)` noise slice.
    pub draws: u32,
    /// Probe activations per draw.
    pub probes: u32,
    /// Base seed for the noise slices (kept separate from the drift
    /// model's fault seed so the two processes stay independent).
    pub noise_seed: u64,
    /// Spares provisioned per tile when the policy repairs.
    pub spares_per_tile: u32,
    /// Degradation fallback for slices the cascade cannot re-home.
    pub fallback: DegradationMode,
}

impl Default for DriftEvalConfig {
    /// Nominal drift corner, the static noise oracle's 3 draws × 4
    /// probes budget, one spare per tile, re-serialization fallback.
    fn default() -> Self {
        DriftEvalConfig {
            drift: DriftModel::nominal(),
            draws: 3,
            probes: 4,
            noise_seed: 7,
            spares_per_tile: 1,
            fallback: DegradationMode::Reserialize,
        }
    }
}

impl DriftEvalConfig {
    /// The hard-repair policy this configuration implies under
    /// `recovery`: the full cascade gets spares and remapping; the other
    /// arms degrade only.
    pub fn repair_policy(&self, recovery: RecoveryPolicy) -> RepairPolicy {
        if recovery.repairs() {
            RepairPolicy {
                spares_per_tile: self.spares_per_tile,
                remap: true,
                fallback: self.fallback,
            }
        } else {
            RepairPolicy::no_spares(self.fallback).without_remap()
        }
    }
}

/// The resolved degradation state at one evaluation epoch: the one
/// struct where hard faults (cumulative rates), soft variation (the
/// drifted device population), and the recovery decision (readout
/// reference) meet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationState {
    /// Epoch, simulated hours since deployment.
    pub t_hours: f64,
    /// Cumulative hard-fault probabilities at `t`.
    pub rates: FaultRates,
    /// The variation model the device population obeys at `t`.
    pub device: VariationModel,
    /// The variation model the readout references: the factory base when
    /// stale, `device` itself after recalibration.
    pub reference: VariationModel,
    /// Whether the readout was recalibrated at this epoch.
    pub recalibrated: bool,
}

impl DegradationState {
    /// Resolve `drift` at epoch `t_hours` under `recovery`.
    pub fn at(drift: &DriftModel, t_hours: f64, recovery: RecoveryPolicy) -> Self {
        let device = drift.variation_at(t_hours);
        let recalibrated = recovery.recalibrates();
        DegradationState {
            t_hours,
            rates: drift.rates_at(t_hours),
            device,
            reference: if recalibrated { device } else { drift.base },
            recalibrated,
        }
    }
}

/// Evaluation of a strategy at a lifetime epoch: repaired-hardware
/// metrics, the repair outcome, and the drift-aware robustness scores.
/// Produced by
/// [`EvalEngine::evaluate_degraded`](crate::engine::EvalEngine::evaluate_degraded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedEvalReport {
    /// Metrics of the repaired allocation at the epoch (latency factors,
    /// spare area, and spare leakage folded in).
    pub eval: EvalReport,
    /// What the hard cascade did at this epoch.
    pub repair: RepairReport,
    /// Monte-Carlo robustness under the drifted population, read against
    /// the state's reference model.
    pub robustness: RobustnessReport,
    /// The resolved degradation state this report was evaluated at.
    pub state: DegradationState,
    /// Crossbar-weighted hard-fault fidelity in `[0, 1]`.
    pub fidelity: f64,
    /// End-to-end accuracy proxy: hard fidelity × the robustness
    /// argmax-survival product — the campaign's accuracy axis.
    pub accuracy_proxy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_policy_flags_and_labels() {
        assert!(!RecoveryPolicy::NoRecovery.recalibrates());
        assert!(RecoveryPolicy::RecalibrateOnly.recalibrates());
        assert!(RecoveryPolicy::FullCascade.recalibrates());
        assert!(RecoveryPolicy::FullCascade.repairs());
        assert!(!RecoveryPolicy::RecalibrateOnly.repairs());
        let labels: Vec<_> = RecoveryPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["no-recovery", "recalibrate-only", "full-cascade"]);
    }

    #[test]
    fn repair_policy_follows_the_recovery_arm() {
        let cfg = DriftEvalConfig {
            spares_per_tile: 3,
            ..DriftEvalConfig::default()
        };
        let full = cfg.repair_policy(RecoveryPolicy::FullCascade);
        assert_eq!(full.spares_per_tile, 3);
        assert!(full.remap);
        for arm in [RecoveryPolicy::NoRecovery, RecoveryPolicy::RecalibrateOnly] {
            let p = cfg.repair_policy(arm);
            assert_eq!(p.spares_per_tile, 0);
            assert!(!p.remap);
        }
    }

    #[test]
    fn state_reference_tracks_the_recovery_decision() {
        let drift = DriftModel::fast();
        let t = 2000.0;
        let stale = DegradationState::at(&drift, t, RecoveryPolicy::NoRecovery);
        let recal = DegradationState::at(&drift, t, RecoveryPolicy::RecalibrateOnly);
        assert_eq!(stale.device, recal.device);
        assert_eq!(stale.reference, drift.base);
        assert_eq!(recal.reference, recal.device);
        assert_ne!(
            stale.reference, stale.device,
            "fast drift must move by hour 2000"
        );
        // At t = 0 the distinction vanishes: device == base bit for bit.
        let zero = DegradationState::at(&drift, 0.0, RecoveryPolicy::NoRecovery);
        assert_eq!(zero.device, zero.reference);
        assert!(zero.rates.is_ideal());
    }
}
