//! The paper's tile-shared crossbar allocation scheme (§3.4, Algorithm 1).
//!
//! Key idea: allow multiple DNN layers to share one tile so the empty
//! crossbars the tile-based scheme leaves behind get reused. Sharing is
//! only legal between tiles of the *same crossbar shape* (a tile's
//! peripherals are sized for one shape), so tiles are first grouped by
//! shape; within each group Algorithm 1 runs verbatim:
//!
//! 1. sort the tile list ascending by empty-crossbar count;
//! 2. two pointers walk from both ends: when
//!    `head.empty + tail.empty ≥ capacity`, the tail tile's occupants all
//!    fit into the head tile's empty slots (tail is the emptiest tile), so
//!    they are remapped into the head tile, the tail tile is freed, and
//!    the tail pointer moves inward; otherwise the head pointer moves.
//!
//! O(N log N) for the sort plus the paper's O(N) scan.

use crate::alloc::Allocation;
use crate::hierarchy::Tile;
use serde::{Deserialize, Serialize};

/// Result of tile sharing over one allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingReport {
    /// Tiles before sharing.
    pub tiles_before: usize,
    /// Tiles after sharing.
    pub tiles_after: usize,
    /// `(absorbing tile id, freed tile id)` pairs, in combination order —
    /// Algorithm 1's `combMap` flattened.
    pub combinations: Vec<(usize, usize)>,
}

impl SharingReport {
    /// Tiles released back to the free pool.
    pub fn freed(&self) -> usize {
        self.tiles_before - self.tiles_after
    }
}

/// Algorithm 1 over one same-shape tile group. Tiles whose occupants were
/// remapped away are drained (left with zero occupants); the caller
/// removes them. Returns the `(head, tail)` tile-id combinations.
pub fn combine_group(tiles: &mut [Tile]) -> Vec<(usize, usize)> {
    debug_assert!(tiles.windows(2).all(|w| w[0].shape == w[1].shape));
    let capacity = match tiles.first() {
        Some(t) => t.capacity,
        None => return Vec::new(),
    };
    // Line 2: sort ascending by empty crossbar count.
    let mut order: Vec<usize> = (0..tiles.len()).collect();
    order.sort_by_key(|&i| tiles[i].empty());

    let mut comb = Vec::new();
    let mut head = 0usize;
    let mut tail = order.len().saturating_sub(1);
    while head < tail {
        let (hi, ti) = (order[head], order[tail]);
        // Lines 8-12: the tail tile's occupants fit into the head's slack.
        if tiles[hi].empty() + tiles[ti].empty() >= capacity {
            let moved = std::mem::take(&mut tiles[ti].occupants);
            for slot in moved {
                tiles[hi].place(slot.layer_index, slot.xbars);
            }
            comb.push((tiles[hi].id, tiles[ti].id));
            tail -= 1;
        } else {
            // Lines 13-14.
            head += 1;
        }
    }
    comb
}

/// Apply tile sharing to a whole allocation: group tiles by shape, run
/// Algorithm 1 per group, drop freed tiles.
///
/// ```
/// use autohet_accel::{alloc::allocate_tile_based, tile_shared::apply_tile_sharing};
/// use autohet_xbar::XbarShape;
///
/// let model = autohet_dnn::zoo::alexnet();
/// let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
/// let mut alloc = allocate_tile_based(&model, &strategy, 4);
/// let report = apply_tile_sharing(&mut alloc);
/// assert!(report.tiles_after <= report.tiles_before);
/// assert!(alloc.tiles.iter().all(|t| t.occupied() <= t.capacity));
/// ```
pub fn apply_tile_sharing(alloc: &mut Allocation) -> SharingReport {
    let tiles_before = alloc.tiles.len();
    // Group by crossbar shape (§3.4: "the selected tiles for sharing
    // should have the same crossbar size").
    let mut shapes: Vec<_> = alloc.tiles.iter().map(|t| t.shape).collect();
    shapes.sort();
    shapes.dedup();

    let mut combinations = Vec::new();
    for shape in shapes {
        // Indices of this group's tiles within the allocation.
        let idx: Vec<usize> = alloc
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.shape == shape)
            .map(|(i, _)| i)
            .collect();
        let mut group: Vec<Tile> = idx.iter().map(|&i| alloc.tiles[i].clone()).collect();
        combinations.extend(combine_group(&mut group));
        for (&i, t) in idx.iter().zip(group) {
            alloc.tiles[i] = t;
        }
    }
    alloc.tiles.retain(|t| !t.occupants.is_empty());
    SharingReport {
        tiles_before,
        tiles_after: alloc.tiles.len(),
        combinations,
    }
}

/// Merge several models' allocations into one pool and share tiles across
/// all of them (§3.4: freed tiles "become available for other layers in
/// the DNN model **or other models**"). Occupant `layer_index`es are
/// re-tagged with each allocation's global layer offset (allocation `i`'s
/// layer `k` becomes `offset_i + k`), and the returned offsets let callers
/// map back.
pub fn share_across_models(allocs: Vec<Allocation>) -> (Allocation, Vec<usize>, SharingReport) {
    assert!(!allocs.is_empty());
    let capacity = allocs[0].capacity;
    assert!(
        allocs.iter().all(|a| a.capacity == capacity),
        "all accelerators must share a tile capacity"
    );
    let mut offsets = Vec::with_capacity(allocs.len());
    let mut merged = Allocation {
        capacity,
        tiles: Vec::new(),
        per_layer: Vec::new(),
    };
    let mut layer_offset = 0usize;
    for a in allocs {
        offsets.push(layer_offset);
        let next_offset = layer_offset + a.per_layer.len();
        for mut t in a.tiles {
            t.id = merged.tiles.len();
            for s in &mut t.occupants {
                s.layer_index += layer_offset;
            }
            merged.tiles.push(t);
        }
        for mut p in a.per_layer {
            p.layer_index += layer_offset;
            merged.per_layer.push(p);
        }
        layer_offset = next_offset;
    }
    let report = apply_tile_sharing(&mut merged);
    (merged, offsets, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate_tile_based;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn tile_with(id: usize, occupied: u32) -> Tile {
        let mut t = Tile::new(id, XbarShape::square(32), 4);
        t.place(id, occupied);
        t
    }

    #[test]
    fn paper_fig8_example_three_tiles_collapse_to_one() {
        // Fig. 8: L1 takes 2 crossbars, L2 and L3 one each, all 32×32,
        // 4 crossbars per tile → one shared tile instead of three.
        let mut tiles = vec![tile_with(0, 2), tile_with(1, 1), tile_with(2, 1)];
        let comb = combine_group(&mut tiles);
        let survivors: Vec<&Tile> = tiles.iter().filter(|t| !t.occupants.is_empty()).collect();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].occupied(), 4);
        assert_eq!(survivors[0].distinct_layers(), 3);
        assert_eq!(comb.len(), 2);
    }

    #[test]
    fn combination_requires_fit() {
        // Two tiles each 3/4 full cannot merge (3+3 > 4 occupied).
        let mut tiles = vec![tile_with(0, 3), tile_with(1, 3)];
        let comb = combine_group(&mut tiles);
        assert!(comb.is_empty());
        assert!(tiles.iter().all(|t| t.occupied() == 3));
    }

    #[test]
    fn never_overflows_capacity() {
        let mut tiles: Vec<Tile> = (0..20).map(|i| tile_with(i, (i % 4 + 1) as u32)).collect();
        let _ = combine_group(&mut tiles);
        assert!(tiles.iter().all(|t| t.occupied() <= t.capacity));
    }

    #[test]
    fn conserves_occupied_crossbars() {
        let mut tiles: Vec<Tile> = (0..37)
            .map(|i| tile_with(i, (i * 7 % 4 + 1) as u32))
            .collect();
        let before: u32 = tiles.iter().map(Tile::occupied).sum();
        let _ = combine_group(&mut tiles);
        let after: u32 = tiles.iter().map(Tile::occupied).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn sharing_never_mixes_shapes() {
        let m = zoo::micro_cnn();
        let strategy = vec![
            XbarShape::square(32),
            XbarShape::square(64),
            XbarShape::square(32),
            XbarShape::square(64),
        ];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let _ = apply_tile_sharing(&mut alloc);
        for t in &alloc.tiles {
            // Occupants of one tile must have been assigned the same shape.
            for s in &t.occupants {
                assert_eq!(strategy[s.layer_index], t.shape);
            }
        }
    }

    #[test]
    fn sharing_reduces_tiles_on_vgg16() {
        // Table 4's effect: All occupies fewer tiles than +Hy.
        let m = zoo::vgg16();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let rep = apply_tile_sharing(&mut alloc);
        assert!(rep.freed() > 0, "expected sharing to free tiles");
        assert_eq!(rep.tiles_after, alloc.tiles.len());
        assert!(alloc.tiles.iter().all(|t| !t.occupants.is_empty()));
    }

    #[test]
    fn cross_model_sharing_frees_at_least_as_much_as_separate_sharing() {
        let shape = XbarShape::new(72, 64);
        let make = |m: &autohet_dnn::Model| allocate_tile_based(m, &vec![shape; m.layers.len()], 4);
        let a = make(&zoo::alexnet());
        let b = make(&zoo::micro_cnn());
        // Separate sharing.
        let mut sa = a.clone();
        let mut sb = b.clone();
        let ra = apply_tile_sharing(&mut sa);
        let rb = apply_tile_sharing(&mut sb);
        // Joint sharing.
        let (merged, offsets, rj) = share_across_models(vec![a, b]);
        assert_eq!(offsets, vec![0, zoo::alexnet().layers.len()]);
        assert!(rj.tiles_after <= ra.tiles_after + rb.tiles_after);
        assert!(merged.tiles.iter().all(|t| t.occupied() <= t.capacity));
        // At least one tile actually mixes the two models.
        let n_a = zoo::alexnet().layers.len();
        let mixes = merged.tiles.iter().any(|t| {
            let mut has_a = false;
            let mut has_b = false;
            for s in &t.occupants {
                if s.layer_index < n_a {
                    has_a = true;
                } else {
                    has_b = true;
                }
            }
            has_a && has_b
        });
        assert!(mixes, "expected a shared tile spanning both models");
    }

    #[test]
    #[should_panic]
    fn cross_model_sharing_rejects_mismatched_capacity() {
        let m = zoo::micro_cnn();
        let s = vec![XbarShape::square(32); m.layers.len()];
        let a = allocate_tile_based(&m, &s, 4);
        let b = allocate_tile_based(&m, &s, 8);
        let _ = share_across_models(vec![a, b]);
    }

    #[test]
    fn empty_group_is_a_noop() {
        let mut tiles: Vec<Tile> = Vec::new();
        assert!(combine_group(&mut tiles).is_empty());
    }

    #[test]
    fn already_full_tiles_are_untouched() {
        let mut tiles = vec![tile_with(0, 4), tile_with(1, 4), tile_with(2, 2)];
        let comb = combine_group(&mut tiles);
        assert!(comb.is_empty());
    }
}
