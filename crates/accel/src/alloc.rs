//! The baseline *tile-based* crossbar allocator.
//!
//! This is the scheme §2.2.2 criticizes: the tile is the minimum
//! allocation unit, each tile serves exactly one layer, and a layer
//! needing `n` crossbars receives `⌈n / capacity⌉` whole tiles — so a
//! layer occupying 5 of 8 crossbars wastes 3 (37.5%), and a tiny layer in
//! its own tile wastes up to `capacity − 1`. The paper's Fig. 4 measures
//! exactly this waste; [`crate::tile_shared`] then repairs it.

use crate::hierarchy::Tile;
use autohet_dnn::{Layer, Model};
use autohet_xbar::utilization::{footprint, Footprint};
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};

/// Per-layer placement summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPlacement {
    /// Layer index within the model.
    pub layer_index: usize,
    /// Crossbar shape assigned by the strategy.
    pub shape: XbarShape,
    /// Mapping footprint (occupied crossbars, Eq. 4 terms).
    pub footprint: Footprint,
    /// Tiles granted by the allocator (before any sharing).
    pub tiles: u64,
}

impl LayerPlacement {
    /// Crossbars granted minus crossbars occupied.
    pub fn empty_xbars(&self, capacity: u32) -> u64 {
        self.tiles * capacity as u64 - self.footprint.total_xbars()
    }

    /// Fraction of granted crossbars left empty (the paper's Fig. 4
    /// quantity).
    pub fn empty_fraction(&self, capacity: u32) -> f64 {
        self.empty_xbars(capacity) as f64 / (self.tiles * capacity as u64) as f64
    }
}

/// A complete allocation: concrete tiles plus per-layer summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Logical crossbars per tile.
    pub capacity: u32,
    /// All allocated tiles.
    pub tiles: Vec<Tile>,
    /// Per-layer placements, indexed like `model.layers`.
    pub per_layer: Vec<LayerPlacement>,
}

impl Allocation {
    /// Total allocated logical crossbars.
    pub fn allocated_xbars(&self) -> u64 {
        self.tiles.len() as u64 * self.capacity as u64
    }

    /// Total occupied logical crossbars.
    pub fn occupied_xbars(&self) -> u64 {
        self.tiles.iter().map(|t| t.occupied() as u64).sum()
    }

    /// Total empty crossbar slots across all tiles.
    pub fn empty_xbars(&self) -> u64 {
        self.allocated_xbars() - self.occupied_xbars()
    }

    /// Allocated cells (provisioned storage), summed over tiles.
    pub fn allocated_cells(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.capacity as u64 * t.shape.cells())
            .sum()
    }

    /// Number of banks needed to host this allocation, given a per-bank
    /// tile capacity (the paper's banks hold 256×256 tiles, §4.1 — far
    /// more than any single model needs, but multi-model co-location and
    /// small edge banks make the check meaningful).
    pub fn banks_required(&self, tiles_per_bank: u64) -> u64 {
        assert!(tiles_per_bank >= 1);
        (self.tiles.len() as u64).div_ceil(tiles_per_bank)
    }

    /// Tile count per crossbar shape, for per-shape cost aggregation.
    pub fn tiles_by_shape(&self) -> Vec<(XbarShape, u64)> {
        let mut counts: Vec<(XbarShape, u64)> = Vec::new();
        for t in &self.tiles {
            match counts.iter_mut().find(|(s, _)| *s == t.shape) {
                Some((_, n)) => *n += 1,
                None => counts.push((t.shape, 1)),
            }
        }
        counts.sort();
        counts
    }
}

/// Placement of a single layer under the tile-based scheme: the pure,
/// per-(layer, shape) half of the allocator, safe to memoize because it
/// depends on nothing but the layer, the shape, and the tile capacity.
pub fn placement_for(layer: &Layer, shape: XbarShape, capacity: u32) -> LayerPlacement {
    assert!(capacity >= 1);
    let fp = footprint(layer, shape);
    LayerPlacement {
        layer_index: layer.index,
        shape,
        footprint: fp,
        tiles: fp.total_xbars().div_ceil(capacity as u64),
    }
}

/// Materialize concrete tiles from per-layer placements — the second,
/// strategy-dependent half of the tile-based scheme, shared by
/// [`allocate_tile_based`] and the memoized [`crate::engine::EvalEngine`]
/// so both produce identical allocations.
pub fn allocation_from_placements(per_layer: Vec<LayerPlacement>, capacity: u32) -> Allocation {
    assert!(capacity >= 1);
    let mut tiles = Vec::new();
    for pl in &per_layer {
        let mut remaining = pl.footprint.total_xbars();
        debug_assert_eq!(pl.tiles, remaining.div_ceil(capacity as u64));
        for _ in 0..pl.tiles {
            let mut t = Tile::new(tiles.len(), pl.shape, capacity);
            let take = remaining.min(capacity as u64) as u32;
            t.place(pl.layer_index, take);
            remaining -= take as u64;
            tiles.push(t);
        }
    }
    Allocation {
        capacity,
        tiles,
        per_layer,
    }
}

/// Allocate `model` under `strategy` (one shape per layer) with the
/// tile-based scheme: every layer gets its own whole tiles.
pub fn allocate_tile_based(model: &Model, strategy: &[XbarShape], capacity: u32) -> Allocation {
    assert_eq!(
        strategy.len(),
        model.layers.len(),
        "strategy length must match layer count"
    );
    assert!(capacity >= 1);
    let per_layer: Vec<LayerPlacement> = model
        .layers
        .iter()
        .zip(strategy)
        .map(|(layer, &shape)| placement_for(layer, shape, capacity))
        .collect();
    allocation_from_placements(per_layer, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;

    fn uniform(model: &Model, shape: XbarShape) -> Vec<XbarShape> {
        vec![shape; model.layers.len()]
    }

    #[test]
    fn small_layer_wastes_three_quarters_of_its_tile() {
        // §2.2.2's example: a layer needing one crossbar in a 4-crossbar
        // tile wastes 75%.
        let m = zoo::micro_cnn();
        // Layer 0: Cin=1, Cout=8, k=3 → fits one 64×64 crossbar.
        let alloc = allocate_tile_based(&m, &uniform(&m, XbarShape::square(64)), 4);
        let p0 = alloc.per_layer[0];
        assert_eq!(p0.footprint.total_xbars(), 1);
        assert_eq!(p0.tiles, 1);
        assert_eq!(p0.empty_xbars(4), 3);
        assert!((p0.empty_fraction(4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn five_crossbars_take_two_tiles_wasting_37_5_percent() {
        // §2.2.2's second example: 5 crossbars → 2 tiles → 3/8 wasted.
        // FC 240→120 on 64×64: ⌈240/64⌉ × ⌈120/64⌉ = 4 × 2 = 8… use a
        // layer that needs exactly 5: FC 300→50 → ⌈300/64⌉=5 × 1.
        let m = autohet_dnn::ModelBuilder::new("t", autohet_dnn::Dataset::Mnist)
            .fc(300)
            .fc(50)
            .build();
        let alloc = allocate_tile_based(&m, &uniform(&m, XbarShape::square(64)), 4);
        let p1 = alloc.per_layer[1]; // fc 300→50
        assert_eq!(p1.footprint.total_xbars(), 5);
        assert_eq!(p1.tiles, 2);
        assert!((p1.empty_fraction(4) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn tiles_hold_one_layer_each_before_sharing() {
        let m = zoo::vgg16();
        let alloc = allocate_tile_based(&m, &uniform(&m, XbarShape::square(64)), 4);
        assert!(alloc.tiles.iter().all(|t| t.distinct_layers() == 1));
        assert!(alloc.tiles.iter().all(|t| t.occupied() <= t.capacity));
    }

    #[test]
    fn occupancy_matches_footprints() {
        let m = zoo::alexnet();
        let alloc = allocate_tile_based(&m, &uniform(&m, XbarShape::square(128)), 8);
        let occupied: u64 = alloc
            .per_layer
            .iter()
            .map(|p| p.footprint.total_xbars())
            .sum();
        assert_eq!(alloc.occupied_xbars(), occupied);
        assert!(alloc.allocated_xbars() >= occupied);
        assert_eq!(
            alloc.allocated_xbars(),
            alloc.per_layer.iter().map(|p| p.tiles * 8).sum::<u64>()
        );
    }

    #[test]
    fn empty_fraction_grows_with_tile_size() {
        // The paper's Fig. 4 trend: bigger tiles, more waste.
        let m = zoo::vgg16();
        let strategy = uniform(&m, XbarShape::square(64));
        let mut prev = 0.0;
        for cap in [4u32, 8, 16, 32] {
            let alloc = allocate_tile_based(&m, &strategy, cap);
            let frac = alloc.empty_xbars() as f64 / alloc.allocated_xbars() as f64;
            assert!(frac >= prev - 1e-12, "cap {cap}: {frac} < {prev}");
            prev = frac;
        }
    }

    #[test]
    fn tiles_by_shape_counts_heterogeneous_allocations() {
        let m = zoo::micro_cnn();
        let strategy = vec![
            XbarShape::square(32),
            XbarShape::square(32),
            XbarShape::square(64),
            XbarShape::square(32),
        ];
        let alloc = allocate_tile_based(&m, &strategy, 4);
        let by_shape = alloc.tiles_by_shape();
        assert_eq!(by_shape.len(), 2);
        let total: u64 = by_shape.iter().map(|(_, n)| n).sum();
        assert_eq!(total, alloc.tiles.len() as u64);
    }

    #[test]
    fn banks_required_rounds_up() {
        let m = zoo::vgg16();
        let alloc = allocate_tile_based(&m, &uniform(&m, XbarShape::square(64)), 4);
        let tiles = alloc.tiles.len() as u64;
        assert_eq!(alloc.banks_required(tiles), 1);
        assert_eq!(alloc.banks_required(tiles - 1), 2);
        // The paper's 256×256-tile banks hold any single model.
        assert_eq!(alloc.banks_required(256 * 256), 1);
    }

    #[test]
    #[should_panic]
    fn strategy_length_mismatch_panics() {
        let m = zoo::micro_cnn();
        let _ = allocate_tile_based(&m, &[XbarShape::square(32)], 4);
    }

    #[test]
    fn placements_rebuild_the_same_allocation() {
        // The split halves of the allocator must compose back to exactly
        // what the one-shot path produces (the EvalEngine relies on this).
        let m = zoo::alexnet();
        let strategy = uniform(&m, XbarShape::square(64));
        let direct = allocate_tile_based(&m, &strategy, 4);
        let per_layer: Vec<LayerPlacement> = m
            .layers
            .iter()
            .zip(&strategy)
            .map(|(l, &s)| placement_for(l, s, 4))
            .collect();
        assert_eq!(allocation_from_placements(per_layer, 4), direct);
    }
}
