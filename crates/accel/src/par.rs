//! Deterministic fork-join helper for sweep drivers.
//!
//! A thin order-preserving `map` over `crossbeam::thread::scope` workers
//! (the same pattern the accel controller uses for batch inference):
//! items are split into contiguous chunks, each worker fills its chunk's
//! output slots, and results come back in input order — so parallel sweeps
//! return exactly what their serial loops returned.

/// Map `f` over `items` on up to `available_parallelism` scoped workers,
/// preserving input order. Falls back to a plain serial map for zero or
/// one item.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    // Join each worker explicitly so a panic can be attributed to its
    // chunk (and the original payload preserved) instead of surfacing as
    // an anonymous scope error.
    let joined: Vec<Result<(), Box<dyn std::any::Any + Send>>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .map(|(slot_chunk, item_chunk)| {
                s.spawn(move |_| {
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
    .expect("parallel sweep worker pool panicked");
    for (i, r) in joined.iter().enumerate() {
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("<non-string panic payload>");
            panic!(
                "par_map worker for chunk {i} (items {}..{}) panicked: {msg}",
                i * chunk,
                ((i + 1) * chunk).min(items.len())
            );
        }
    }
    out.into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_input() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
    }

    #[test]
    fn handles_single_item_without_spawning() {
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "chunk 0")]
    fn worker_panic_reports_originating_chunk() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            assert!(x != 0, "poisoned item");
            x
        });
    }

    #[test]
    #[should_panic(expected = "poisoned item")]
    fn worker_panic_preserves_the_original_message() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            assert!(x != 1, "poisoned item");
            x
        });
    }

    #[test]
    fn matches_serial_map_for_awkward_sizes() {
        // Sizes around worker-count boundaries exercise chunk remainders.
        for n in [2usize, 3, 5, 7, 13, 17, 31] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |&x| x.wrapping_mul(2654435761));
            let serial: Vec<usize> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
            assert_eq!(out, serial);
        }
    }
}
