//! Repair-aware remapping of an [`Allocation`] onto faulted hardware.
//!
//! The paper evaluates ideal devices; this module (with
//! [`autohet_xbar::fault`]) adds the fault tolerance a deployed
//! accelerator needs. Given an allocation and a sampled
//! [`FaultMap`], repair walks every tile and re-homes the layer slices
//! that landed on dead crossbars, in a fixed three-step cascade:
//!
//! 1. **Spare activation** — if the tile provisioned spare crossbars and
//!    one is still usable, the displaced slice moves onto the spare. The
//!    tile's logical occupancy is unchanged; the spare starts burning
//!    static power and is charged by the evaluation.
//! 2. **Remap** — otherwise the slice moves to the lowest-positioned tile
//!    of the *same crossbar shape* with a usable empty slot (a tile's
//!    peripherals serve one shape, exactly the tile-sharing legality rule,
//!    so repair is tile-shared aware by construction: under sharing, tiles
//!    run fuller and fewer usable empty slots exist).
//! 3. **Degrade** — with spares exhausted and no usable slot anywhere, the
//!    slice is dropped from the physical mapping and the layer enters the
//!    policy's [`DegradationMode`]: re-serialize its work over the
//!    surviving crossbars (latency factor `total / surviving`), or
//!    tolerate the loss as noise (fidelity hit, no latency change).
//!
//! Slot-index convention: occupants fill a tile's primary slots from
//! index 0 in occupant order, matching [`FaultMap::sample`]'s per-slot
//! addressing. Faulted tiles are *kept* in the allocation even if repair
//! empties them — the silicon still exists, still costs area, and still
//! leaks; dead components are conservatively assumed to stay on the power
//! rail (a stuck peripheral is not a clean shutoff).
//!
//! Everything is deterministic: tiles are walked in position order,
//! displaced slices in slot order, spares and remap targets consumed in
//! index order — one `(allocation, fault map, policy)` triple always
//! yields one repair outcome.

use crate::alloc::Allocation;
use autohet_xbar::fault::{ComponentHealth, FaultMap};
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};

/// What happens to a layer whose slices could not be re-homed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationMode {
    /// Surviving crossbars of the layer re-process the lost slices
    /// serially: correctness preserved, latency multiplied by
    /// `total / surviving`.
    Reserialize,
    /// Lost slices contribute zeros: latency preserved, fidelity drops by
    /// the lost weight fraction.
    TolerateNoise,
}

/// Repair configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Spare logical crossbars provisioned per tile.
    pub spares_per_tile: u32,
    /// Whether displaced slices may remap onto other tiles' usable empty
    /// slots (cascade step 2). Disabled by the lifetime campaign's
    /// no-recovery arm; always on for ordinary repair.
    pub remap: bool,
    /// Fallback when spares and remap targets are exhausted.
    pub fallback: DegradationMode,
}

impl Default for RepairPolicy {
    /// One spare per tile, remapping on, re-serialization fallback.
    fn default() -> Self {
        RepairPolicy {
            spares_per_tile: 1,
            remap: true,
            fallback: DegradationMode::Reserialize,
        }
    }
}

impl RepairPolicy {
    /// Policy without any spare provisioning.
    pub fn no_spares(fallback: DegradationMode) -> Self {
        RepairPolicy {
            spares_per_tile: 0,
            remap: true,
            fallback,
        }
    }

    /// Policy with a custom spare count.
    pub fn with_spares(mut self, spares: u32) -> Self {
        self.spares_per_tile = spares;
        self
    }

    /// This policy with cascade step 2 (cross-tile remapping) disabled:
    /// displaced slices that find no spare degrade immediately.
    pub fn without_remap(mut self) -> Self {
        self.remap = false;
        self
    }
}

/// Post-repair damage summary for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerDamage {
    /// Layer index within the model.
    pub layer_index: usize,
    /// Crossbars the layer's mapping occupies in total.
    pub total_xbars: u64,
    /// Crossbars dropped from the physical mapping (unrepairable).
    pub lost_xbars: u64,
    /// Crossbars resting on degraded-resolution ADCs after repair.
    pub adc_degraded_xbars: u64,
    /// Degradation mode applied to the lost slices.
    pub mode: DegradationMode,
    /// Latency multiplier (≥ 1; > 1 only under [`DegradationMode::Reserialize`]).
    pub latency_factor: f64,
    /// Fraction of the layer's crossbar work computed at full fidelity,
    /// in `[0, 1]` (1 = undamaged).
    pub fidelity: f64,
}

/// Outcome of repairing one allocation against one fault map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Occupied slots that sat on dead components (displaced slices).
    pub dead_occupied: u64,
    /// Displaced slices re-homed onto same-tile spares.
    pub spared: u64,
    /// Displaced slices remapped to usable slots on other tiles.
    pub remapped: u64,
    /// Displaced slices dropped into a degradation mode.
    pub degraded: u64,
    /// Occupied slots (post-repair) resting on degraded-resolution ADCs.
    pub adc_degraded: u64,
    /// Spare crossbars provisioned across the array (cost area always).
    pub spares_provisioned: u64,
    /// Spares activated per tile position (cost leakage once active).
    pub activated_per_tile: Vec<u64>,
    /// Provisioned spare crossbars grouped by tile shape, sorted.
    pub spares_by_shape: Vec<(XbarShape, u64)>,
    /// Activated spare crossbars grouped by tile shape, sorted.
    pub activated_by_shape: Vec<(XbarShape, u64)>,
    /// Per-layer damage, only layers with lost or ADC-degraded slices,
    /// ascending by layer index.
    pub damage: Vec<LayerDamage>,
}

impl RepairReport {
    /// Total spares activated.
    pub fn activated_spares(&self) -> u64 {
        self.activated_per_tile.iter().sum()
    }

    /// True when the fault map left the mapping untouched.
    pub fn is_clean(&self) -> bool {
        self.dead_occupied == 0 && self.adc_degraded == 0
    }

    /// Latency multiplier for `layer_index` (1.0 when undamaged).
    pub fn latency_factor(&self, layer_index: usize) -> f64 {
        self.damage
            .iter()
            .find(|d| d.layer_index == layer_index)
            .map_or(1.0, |d| d.latency_factor)
    }

    /// Crossbar-weighted mean fidelity across the model's layers
    /// (`totals` = per-layer total crossbars; undamaged layers count 1.0).
    pub fn model_fidelity(&self, totals: &[u64]) -> f64 {
        let all: u64 = totals.iter().sum();
        if all == 0 {
            return 1.0;
        }
        let mut weighted = 0.0;
        for (li, &t) in totals.iter().enumerate() {
            let f = self
                .damage
                .iter()
                .find(|d| d.layer_index == li)
                .map_or(1.0, |d| d.fidelity);
            weighted += f * t as f64;
        }
        weighted / all as f64
    }
}

/// A slice displaced from a dead component, pending re-homing.
struct Displaced {
    tile: usize,
    occupant: usize,
    layer_index: usize,
}

/// Repair `alloc` in place against `faults`, returning the outcome.
///
/// `faults` must have been sampled for exactly this allocation's tile
/// array (`faults.tiles.len() == alloc.tiles.len()`, per-tile slot counts
/// matching tile capacities, spare counts matching
/// `policy.spares_per_tile`) — [`FaultMap::sample`] over
/// `alloc.tiles[i].capacity` produces that.
pub fn repair_allocation(
    alloc: &mut Allocation,
    faults: &FaultMap,
    policy: &RepairPolicy,
) -> RepairReport {
    assert_eq!(
        faults.tiles.len(),
        alloc.tiles.len(),
        "fault map / allocation tile count mismatch"
    );
    for (t, f) in alloc.tiles.iter().zip(&faults.tiles) {
        assert_eq!(
            f.slots.len(),
            t.capacity as usize,
            "fault map slot count does not match tile {} capacity",
            t.id
        );
        assert_eq!(
            f.spares.len(),
            policy.spares_per_tile as usize,
            "fault map spare count does not match policy"
        );
    }

    let n_tiles = alloc.tiles.len();
    let mut displaced: Vec<Displaced> = Vec::new();
    // Per-layer ADC-degraded slot counts, keyed by layer index.
    let mut adc: Vec<(usize, u64)> = Vec::new();
    let bump_adc =
        |adc: &mut Vec<(usize, u64)>, layer: usize| match adc.iter_mut().find(|(l, _)| *l == layer)
        {
            Some((_, n)) => *n += 1,
            None => adc.push((layer, 1)),
        };
    // Usable empty primary slots per tile, each with its health, in slot
    // order — the remap targets.
    let mut free: Vec<Vec<ComponentHealth>> = Vec::with_capacity(n_tiles);

    for (ti, tile) in alloc.tiles.iter().enumerate() {
        let tf = &faults.tiles[ti];
        // Occupants fill slots from index 0 in occupant order.
        let mut slot = 0usize;
        for (oi, occ) in tile.occupants.iter().enumerate() {
            for _ in 0..occ.xbars {
                match tf.slots[slot] {
                    ComponentHealth::Dead => displaced.push(Displaced {
                        tile: ti,
                        occupant: oi,
                        layer_index: occ.layer_index,
                    }),
                    ComponentHealth::DegradedAdc { .. } => {
                        bump_adc(&mut adc, occ.layer_index);
                    }
                    ComponentHealth::Healthy => {}
                }
                slot += 1;
            }
        }
        let mut empties = Vec::new();
        for s in slot..tile.capacity as usize {
            if tf.slots[s].is_usable() {
                empties.push(tf.slots[s]);
            }
        }
        free.push(empties);
    }

    // Re-home displaced slices: spare → remap → degrade.
    let mut spare_cursor: Vec<usize> = vec![0; n_tiles];
    let mut activated_per_tile: Vec<u64> = vec![0; n_tiles];
    let mut removals: Vec<(usize, usize)> = Vec::new(); // (tile, occupant)
    let mut moves: Vec<(usize, usize, usize)> = Vec::new(); // (src tile, occupant, dst tile)
    let mut lost: Vec<(usize, u64)> = Vec::new(); // (layer, dropped xbars)
    let (mut spared, mut remapped, mut degraded) = (0u64, 0u64, 0u64);

    for d in &displaced {
        // 1. Same-tile spare.
        let spares = &faults.tiles[d.tile].spares;
        let mut cursor = spare_cursor[d.tile];
        while cursor < spares.len() && !spares[cursor].is_usable() {
            cursor += 1;
        }
        if cursor < spares.len() {
            if matches!(spares[cursor], ComponentHealth::DegradedAdc { .. }) {
                bump_adc(&mut adc, d.layer_index);
            }
            spare_cursor[d.tile] = cursor + 1;
            activated_per_tile[d.tile] += 1;
            spared += 1;
            continue;
        }
        // 2. Remap to the lowest-positioned same-shape tile with a usable
        //    empty slot (skipped when the policy forbids remapping).
        let shape = alloc.tiles[d.tile].shape;
        let target = policy.remap.then(|| {
            (0..n_tiles)
                .find(|&t| t != d.tile && alloc.tiles[t].shape == shape && !free[t].is_empty())
        });
        let target = target.flatten();
        if let Some(t) = target {
            let health = free[t].remove(0);
            if matches!(health, ComponentHealth::DegradedAdc { .. }) {
                bump_adc(&mut adc, d.layer_index);
            }
            moves.push((d.tile, d.occupant, t));
            remapped += 1;
            continue;
        }
        // 3. Degrade.
        removals.push((d.tile, d.occupant));
        match lost.iter_mut().find(|(l, _)| *l == d.layer_index) {
            Some((_, n)) => *n += 1,
            None => lost.push((d.layer_index, 1)),
        }
        degraded += 1;
    }

    // Apply occupancy edits. Moves transfer one crossbar at a time; the
    // `place` capacity check holds because remap targets came from each
    // tile's empty slots.
    for &(src, occupant, dst) in &moves {
        let layer = alloc.tiles[src].occupants[occupant].layer_index;
        alloc.tiles[src].occupants[occupant].xbars -= 1;
        alloc.tiles[dst].place(layer, 1);
    }
    for &(tile, occupant) in &removals {
        alloc.tiles[tile].occupants[occupant].xbars -= 1;
    }
    for t in &mut alloc.tiles {
        t.occupants.retain(|o| o.xbars > 0);
    }

    // Per-layer damage entries.
    let total_for = |layer_index: usize| -> u64 {
        alloc
            .per_layer
            .iter()
            .find(|p| p.layer_index == layer_index)
            .map_or(0, |p| p.footprint.total_xbars())
    };
    let mut damaged: Vec<usize> = lost
        .iter()
        .map(|&(l, _)| l)
        .chain(adc.iter().map(|&(l, _)| l))
        .collect();
    damaged.sort_unstable();
    damaged.dedup();
    let damage: Vec<LayerDamage> = damaged
        .into_iter()
        .map(|li| {
            let total = total_for(li);
            let lost_xbars = lost.iter().find(|(l, _)| *l == li).map_or(0, |&(_, n)| n);
            let adc_degraded_xbars = adc.iter().find(|(l, _)| *l == li).map_or(0, |&(_, n)| n);
            let surviving = total - lost_xbars;
            // Re-serialization needs survivors to serialize over; a fully
            // lost layer can only be tolerated as noise.
            let mode = if lost_xbars > 0 && surviving == 0 {
                DegradationMode::TolerateNoise
            } else {
                policy.fallback
            };
            let latency_factor = match mode {
                DegradationMode::Reserialize if lost_xbars > 0 => total as f64 / surviving as f64,
                _ => 1.0,
            };
            // Fidelity: slices recomputed serially stay exact; tolerated
            // losses and coarse ADC conversions do not.
            let infidel = match mode {
                DegradationMode::Reserialize => adc_degraded_xbars,
                DegradationMode::TolerateNoise => lost_xbars + adc_degraded_xbars,
            };
            let fidelity = if total == 0 {
                1.0
            } else {
                (total - infidel.min(total)) as f64 / total as f64
            };
            LayerDamage {
                layer_index: li,
                total_xbars: total,
                lost_xbars,
                adc_degraded_xbars,
                mode,
                latency_factor,
                fidelity,
            }
        })
        .collect();

    let mut spares_by_shape: Vec<(XbarShape, u64)> = Vec::new();
    let mut activated_by_shape: Vec<(XbarShape, u64)> = Vec::new();
    let bump = |v: &mut Vec<(XbarShape, u64)>, shape: XbarShape, n: u64| {
        if n == 0 {
            return;
        }
        match v.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, c)) => *c += n,
            None => v.push((shape, n)),
        }
    };
    for (ti, tile) in alloc.tiles.iter().enumerate() {
        bump(
            &mut spares_by_shape,
            tile.shape,
            policy.spares_per_tile as u64,
        );
        bump(&mut activated_by_shape, tile.shape, activated_per_tile[ti]);
    }
    spares_by_shape.sort();
    activated_by_shape.sort();

    RepairReport {
        dead_occupied: displaced.len() as u64,
        spared,
        remapped,
        degraded,
        adc_degraded: adc.iter().map(|&(_, n)| n).sum(),
        spares_provisioned: n_tiles as u64 * policy.spares_per_tile as u64,
        activated_per_tile,
        spares_by_shape,
        activated_by_shape,
        damage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate_tile_based;
    use crate::tile_shared::apply_tile_sharing;
    use autohet_dnn::zoo;
    use autohet_xbar::fault::FaultRates;
    use autohet_xbar::XbarShape;

    fn capacities(alloc: &Allocation) -> Vec<u32> {
        alloc.tiles.iter().map(|t| t.capacity).collect()
    }

    /// The repair invariant: every tile's occupants fit on usable primary
    /// components plus its activated spares.
    fn assert_invariant(alloc: &Allocation, faults: &FaultMap, report: &RepairReport) {
        for (ti, tile) in alloc.tiles.iter().enumerate() {
            let usable = faults.tiles[ti]
                .slots
                .iter()
                .filter(|h| h.is_usable())
                .count() as u64;
            let hosts = usable + report.activated_per_tile[ti];
            assert!(
                tile.occupied() as u64 <= hosts,
                "tile {ti}: {} occupants on {hosts} usable components",
                tile.occupied()
            );
        }
    }

    #[test]
    fn ideal_map_is_a_clean_noop() {
        let m = zoo::alexnet();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let before = alloc.clone();
        let faults = FaultMap::ideal(&capacities(&alloc), 1);
        let rep = repair_allocation(&mut alloc, &faults, &RepairPolicy::default());
        assert!(rep.is_clean());
        assert_eq!(rep.dead_occupied, 0);
        assert_eq!(alloc, before);
        assert!(rep.damage.is_empty());
    }

    #[test]
    fn dead_slice_prefers_a_spare() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        // Find a seed that kills at least one occupied slot but leaves
        // spares usable.
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 2);
        faults.tiles[0].slots[0] = ComponentHealth::Dead;
        let occupied_before = alloc.occupied_xbars();
        let rep = repair_allocation(&mut alloc, &faults, &RepairPolicy::default().with_spares(2));
        assert_eq!(rep.dead_occupied, 1);
        assert_eq!(rep.spared, 1);
        assert_eq!(rep.remapped + rep.degraded, 0);
        assert_eq!(rep.activated_spares(), 1);
        // Spare keeps the slice in the tile: occupancy unchanged.
        assert_eq!(alloc.occupied_xbars(), occupied_before);
        assert_invariant(&alloc, &faults, &rep);
    }

    #[test]
    fn without_spares_the_slice_remaps_to_a_same_shape_tile() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        // Ensure at least one other 64×64 tile has an empty slot.
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 0);
        faults.tiles[0].slots[0] = ComponentHealth::Dead;
        let has_room = alloc.tiles.iter().skip(1).any(|t| t.empty() > 0);
        assert!(has_room, "test fixture needs slack");
        let occupied_before = alloc.occupied_xbars();
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::Reserialize),
        );
        assert_eq!(rep.remapped, 1);
        assert_eq!(rep.degraded, 0);
        assert_eq!(alloc.occupied_xbars(), occupied_before);
        assert_invariant(&alloc, &faults, &rep);
    }

    #[test]
    fn without_remap_the_slice_degrades_despite_free_slots() {
        // Same fixture as the remap test, but with cascade step 2 off:
        // the displaced slice must fall straight through to degradation
        // even though a same-shape tile has room.
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 0);
        faults.tiles[0].slots[0] = ComponentHealth::Dead;
        assert!(alloc.tiles.iter().skip(1).any(|t| t.empty() > 0));
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::Reserialize).without_remap(),
        );
        assert_eq!(rep.remapped, 0);
        assert_eq!(rep.degraded, 1);
        assert_invariant(&alloc, &faults, &rep);
    }

    #[test]
    fn exhausted_repair_degrades_with_a_latency_factor() {
        // One layer on exactly full tiles, no spares, everything else
        // faulted away: slices must degrade.
        let m = autohet_dnn::ModelBuilder::new("t", autohet_dnn::Dataset::Mnist)
            .fc(256)
            .fc(64)
            .build();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 0);
        // Kill one occupied slot in every tile: no free slots exist
        // anywhere only if tiles are full; kill enough to beat the slack.
        for tf in &mut faults.tiles {
            for s in &mut tf.slots {
                *s = ComponentHealth::Dead;
            }
        }
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::Reserialize),
        );
        assert_eq!(rep.degraded, rep.dead_occupied);
        assert!(rep.degraded > 0);
        // Everything died: layers fall back to tolerate-with-noise and
        // report zero fidelity.
        for d in &rep.damage {
            assert_eq!(d.mode, DegradationMode::TolerateNoise);
            assert_eq!(d.fidelity, 0.0);
            assert_eq!(d.latency_factor, 1.0);
        }
        assert_eq!(alloc.occupied_xbars(), 0);
        assert_invariant(&alloc, &faults, &rep);
    }

    #[test]
    fn reserialize_factor_matches_lost_fraction() {
        let m = autohet_dnn::ModelBuilder::new("t", autohet_dnn::Dataset::Mnist)
            .fc(256)
            .build();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let total = alloc.per_layer[0].footprint.total_xbars();
        assert!(total >= 2);
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 0);
        faults.tiles[0].slots[0] = ComponentHealth::Dead;
        // Fill remaining capacity so no remap target exists: fault every
        // *empty* slot too.
        let occupied: u32 = alloc.tiles[0].occupied();
        for (ti, tf) in faults.tiles.iter_mut().enumerate() {
            let occ = alloc.tiles[ti].occupied() as usize;
            for s in occ..tf.slots.len() {
                tf.slots[s] = ComponentHealth::Dead;
            }
        }
        let _ = occupied;
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::Reserialize),
        );
        assert_eq!(rep.degraded, 1);
        let d = rep.damage[0];
        assert_eq!(d.lost_xbars, 1);
        let expect = total as f64 / (total - 1) as f64;
        assert!((d.latency_factor - expect).abs() < 1e-12);
        assert_eq!(d.fidelity, 1.0); // re-serialized work stays exact
        assert_eq!(rep.latency_factor(0), d.latency_factor);
        assert_eq!(rep.latency_factor(999), 1.0);
    }

    #[test]
    fn tolerate_noise_trades_fidelity_not_latency() {
        let m = autohet_dnn::ModelBuilder::new("t", autohet_dnn::Dataset::Mnist)
            .fc(256)
            .build();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let total = alloc.per_layer[0].footprint.total_xbars();
        let caps = capacities(&alloc);
        let mut faults = FaultMap::ideal(&caps, 0);
        faults.tiles[0].slots[0] = ComponentHealth::Dead;
        for (ti, tf) in faults.tiles.iter_mut().enumerate() {
            let occ = alloc.tiles[ti].occupied() as usize;
            for s in occ..tf.slots.len() {
                tf.slots[s] = ComponentHealth::Dead;
            }
        }
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::TolerateNoise),
        );
        let d = rep.damage[0];
        assert_eq!(d.latency_factor, 1.0);
        let expect = (total - 1) as f64 / total as f64;
        assert!((d.fidelity - expect).abs() < 1e-12);
        let fid = rep.model_fidelity(&[total]);
        assert!((fid - expect).abs() < 1e-12);
    }

    #[test]
    fn degraded_adcs_are_counted_on_final_positions() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let rates = FaultRates {
            dead_xbar: 0.0,
            degraded_adc: 1.0,
            adc_bits_lost: 2,
        };
        let faults = FaultMap::sample(5, rates, &capacities(&alloc), 0);
        let occupied = alloc.occupied_xbars();
        let rep = repair_allocation(
            &mut alloc,
            &faults,
            &RepairPolicy::no_spares(DegradationMode::Reserialize),
        );
        assert_eq!(rep.adc_degraded, occupied);
        assert_eq!(rep.dead_occupied, 0);
        assert!(rep.damage.iter().all(|d| d.fidelity < 1.0));
    }

    #[test]
    fn sampled_faults_preserve_the_invariant_and_conservation() {
        let m = zoo::alexnet();
        let strategy = vec![XbarShape::new(72, 64); m.layers.len()];
        for tile_shared in [false, true] {
            for seed in 0..20u64 {
                let mut alloc = allocate_tile_based(&m, &strategy, 4);
                if tile_shared {
                    let _ = apply_tile_sharing(&mut alloc);
                }
                let policy = RepairPolicy::default();
                let faults = FaultMap::sample(
                    seed,
                    FaultRates::dead(0.15),
                    &capacities(&alloc),
                    policy.spares_per_tile,
                );
                let occupied_before = alloc.occupied_xbars();
                let rep = repair_allocation(&mut alloc, &faults, &policy);
                assert_eq!(rep.spared + rep.remapped + rep.degraded, rep.dead_occupied);
                assert_eq!(alloc.occupied_xbars(), occupied_before - rep.degraded);
                assert_invariant(&alloc, &faults, &rep);
            }
        }
    }

    #[test]
    fn tile_shared_allocations_have_fewer_remap_targets() {
        // Sharing packs tiles tighter, so under the same physical fault
        // process (no spares) it can only degrade at least as many slices.
        let m = zoo::vgg16();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let policy = RepairPolicy::no_spares(DegradationMode::Reserialize);
        let mut degraded = Vec::new();
        for tile_shared in [false, true] {
            let mut alloc = allocate_tile_based(&m, &strategy, 4);
            if tile_shared {
                let _ = apply_tile_sharing(&mut alloc);
            }
            let faults = FaultMap::sample(3, FaultRates::dead(0.2), &capacities(&alloc), 0);
            let rep = repair_allocation(&mut alloc, &faults, &policy);
            degraded.push((rep.dead_occupied, rep.degraded));
        }
        // Both configurations saw faults; the shared one had strictly
        // fewer empty slots available for remapping.
        assert!(degraded[0].0 > 0 && degraded[1].0 > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_fault_map_is_rejected() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mut alloc = allocate_tile_based(&m, &strategy, 4);
        let faults = FaultMap::ideal(&[4, 4], 1);
        let _ = repair_allocation(&mut alloc, &faults, &RepairPolicy::default());
    }
}
