//! Heterogeneous ReRAM accelerator model.
//!
//! This crate assembles the crossbar substrate (`autohet-xbar`) into the
//! paper's accelerator (Fig. 6, right): banks of tiles, four PEs per tile
//! by default, one logical crossbar per PE (eight physical 1-bit slices).
//! Crossbars within a tile are homogeneous; different tiles may carry
//! different crossbar shapes — that is the crossbar-level heterogeneity
//! AutoHet searches over.
//!
//! - [`hierarchy`]: accelerator configuration and tile bookkeeping.
//! - [`mapping`]: how a layer's unfolded weight matrix splits into
//!   crossbar-grid blocks (the geometry behind Eq. 4).
//! - [`alloc`]: the baseline *tile-based* allocator (one layer per tile,
//!   round-up — §2.2.2's wasteful scheme).
//! - [`tile_shared`]: the paper's Algorithm 1 — two-pointer tile
//!   combination that remaps multiple layers into shared tiles.
//! - [`metrics`]: whole-model evaluation: utilization, itemized energy,
//!   latency, area, and the paper's RUE metric.
//! - [`engine`]: memoized evaluation — per-(layer, shape) cost slices and
//!   a bounded strategy cache that make repeated search feedback cheap
//!   while staying bit-identical to [`metrics::evaluate`].
//! - [`controller`]: the global controller — programs weights into
//!   functional crossbars and runs *numerical* inference through them.
//! - [`repair`]: repair-aware remapping of an allocation onto faulted
//!   hardware (spares → remap → documented degradation), consumed by
//!   [`engine::EvalEngine::evaluate_faulted`].
//! - [`robustness`]: the accuracy-under-noise oracle — Monte-Carlo
//!   device-variation scoring per (layer, shape), surfaced through
//!   [`engine::EvalEngine::evaluate_noisy`].
//! - [`degradation`]: unified lifetime degradation (DESIGN.md §12) —
//!   hard faults + variation + drift resolved per epoch, the extended
//!   *recalibrate → remap → degrade* cascade, surfaced through
//!   [`engine::EvalEngine::evaluate_degraded`].

pub mod alloc;
pub mod controller;
pub mod degradation;
pub mod engine;
pub mod hierarchy;
pub mod mapping;
pub mod metrics;
pub mod noc;
pub mod par;
pub mod pipeline;
pub mod repair;
pub mod robustness;
pub mod tile_shared;

pub use alloc::{allocate_tile_based, allocation_from_placements, Allocation, LayerPlacement};
pub use controller::{MappedLayer, MappedModel};
pub use degradation::{DegradationState, DegradedEvalReport, DriftEvalConfig, RecoveryPolicy};
pub use engine::{EngineStats, EvalEngine, FaultedEvalReport, NoisyEvalReport};
pub use hierarchy::{AccelConfig, Tile};
pub use metrics::{evaluate, EvalReport, LayerCost, LayerReport};
pub use par::par_map;
pub use pipeline::{
    balance_replication, pipeline_report, replicated_stages, PipelineReport, ReplicationPlan,
};
pub use repair::{repair_allocation, DegradationMode, LayerDamage, RepairPolicy, RepairReport};
pub use robustness::{layer_noise, LayerNoise, NoiseEvalConfig, RobustnessReport};
pub use tile_shared::apply_tile_sharing;
