//! Geometry of the layer → crossbar-grid mapping.
//!
//! [`autohet_xbar::utilization::footprint`] counts how many crossbars a
//! layer occupies; this module produces the exact *block ranges*: which
//! rows/columns of the unfolded `Cin·k² × Cout` weight matrix land on each
//! crossbar of the grid. The functional controller uses these ranges both
//! to program crossbars and to slice im2col activations at inference time.
//!
//! Invariants (property-tested): row ranges are contiguous, disjoint,
//! cover exactly `Cin·k²` rows, and each fits its crossbar; ditto columns.

use autohet_dnn::Layer;
use autohet_xbar::XbarShape;
use std::ops::Range;

/// Row ranges of the weight matrix per crossbar-grid row.
///
/// With the kernel-per-column scheme each grid row holds `⌊r/k²⌋` whole
/// kernels' worth of rows; when a kernel is taller than the crossbar
/// (`k² > r`) it is split into `⌈k²/r⌉` vertical chunks.
pub fn row_ranges(layer: &Layer, shape: XbarShape) -> Vec<Range<usize>> {
    let k2 = layer.kernel_elems();
    let r = shape.rows as usize;
    let cin = layer.in_channels;
    let mut out = Vec::new();
    if k2 <= r {
        let kpc = r / k2;
        let mut ch = 0;
        while ch < cin {
            let end = (ch + kpc).min(cin);
            out.push(ch * k2..end * k2);
            ch = end;
        }
    } else {
        let span = k2.div_ceil(r);
        for ch in 0..cin {
            for part in 0..span {
                let start = ch * k2 + part * r;
                let end = (start + r).min((ch + 1) * k2);
                out.push(start..end);
            }
        }
    }
    out
}

/// Column ranges of the weight matrix per crossbar-grid column: plain
/// chunks of the crossbar width.
pub fn col_ranges(layer: &Layer, shape: XbarShape) -> Vec<Range<usize>> {
    let c = shape.cols as usize;
    let cout = layer.out_channels;
    let mut out = Vec::new();
    let mut start = 0;
    while start < cout {
        let end = (start + c).min(cout);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::Layer;
    use autohet_xbar::utilization::footprint;

    fn check_invariants(layer: &Layer, shape: XbarShape) {
        let rr = row_ranges(layer, shape);
        let cc = col_ranges(layer, shape);
        let fp = footprint(layer, shape);
        assert_eq!(rr.len(), fp.xb_rows as usize, "grid rows for {shape}");
        assert_eq!(cc.len(), fp.xb_cols as usize, "grid cols for {shape}");
        // Contiguous disjoint cover of the weight matrix rows.
        let mut cursor = 0;
        for r in &rr {
            assert_eq!(r.start, cursor);
            assert!(!r.is_empty() && r.len() <= shape.rows as usize);
            cursor = r.end;
        }
        assert_eq!(cursor, layer.weight_rows());
        let mut cursor = 0;
        for c in &cc {
            assert_eq!(c.start, cursor);
            assert!(!c.is_empty() && c.len() <= shape.cols as usize);
            cursor = c.end;
        }
        assert_eq!(cursor, layer.weight_cols());
    }

    #[test]
    fn ranges_cover_weight_matrix_for_all_candidates() {
        let layers = [
            Layer::conv(0, 3, 4, 3, 1, 1, 32),
            Layer::conv(0, 12, 128, 3, 1, 1, 16),
            Layer::conv(0, 128, 128, 3, 1, 1, 16),
            Layer::conv(0, 3, 64, 7, 2, 3, 224),
            Layer::fc(0, 4096, 1000),
            Layer::fc(0, 1000, 10),
        ];
        for l in &layers {
            for shape in autohet_xbar::geometry::all_candidates() {
                check_invariants(l, shape);
            }
        }
    }

    #[test]
    fn kernels_never_straddle_grid_rows_when_they_fit() {
        // Each range must hold whole kernels (multiples of k²) so one MVM's
        // partial sums stay kernel-aligned.
        let l = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        for r in row_ranges(&l, XbarShape::square(64)) {
            assert_eq!(r.start % 9, 0);
            assert_eq!(r.len() % 9, 0);
        }
    }

    #[test]
    fn fig5_grid_is_2x2_on_64() {
        let l = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        let rr = row_ranges(&l, XbarShape::square(64));
        assert_eq!(rr, vec![0..63, 63..108]); // 7 kernels then 5 kernels
        let cc = col_ranges(&l, XbarShape::square(64));
        assert_eq!(cc, vec![0..64, 64..128]);
    }

    #[test]
    fn split_kernel_chunks_by_crossbar_height() {
        // 7×7 kernel (49 rows) on 32-row crossbars → chunks 32 + 17.
        let l = Layer::conv(0, 2, 8, 7, 1, 3, 28);
        let rr = row_ranges(&l, XbarShape::square(32));
        assert_eq!(rr, vec![0..32, 32..49, 49..81, 81..98]);
    }
}
