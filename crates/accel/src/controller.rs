//! The global controller: programs DNN weights into functional crossbars
//! and drives numerical inference through them (paper Fig. 6's GC, which
//! "decodes CPU instructions and controls the heterogeneous DNN mapping
//! and inference").
//!
//! The data path per layer is exactly the hardware's: activations are
//! quantized to unsigned 8-bit, im2col'd so every output pixel is one MVM,
//! sliced into the crossbar grid's row ranges, pushed through each
//! programmed [`Crossbar`] bit-serially, partial sums accumulated by the
//! digital adder tree across grid rows, and results dequantized. The end
//! result must match the floating-point reference within quantization
//! error — the integration tests assert exactly that.

use crate::mapping::{col_ranges, row_ranges};
use autohet_dnn::ops::{self, im2col};
use autohet_dnn::quant::{quantize_matrix, Quantizer};
use autohet_dnn::{Layer, LayerKind, Model, Stage, Tensor};
use autohet_xbar::{Adc, CostParams, Crossbar, PackedInput, XbarScratch, XbarShape};
use std::cell::RefCell;
use std::ops::Range;

/// Reusable layer-level MVM buffers: the shared packed input (one pack per
/// grid-row slice, reused across every crossbar in that grid row) plus the
/// crossbar-level scratch.
#[derive(Debug, Default)]
struct LayerScratch {
    packed: PackedInput,
    /// Per-batch-element packed slices for [`MappedLayer::mvm_batch`]'s
    /// crossbar-outer walk (one pack per input, refilled per grid row).
    packs: Vec<PackedInput>,
    xbar: XbarScratch,
}

thread_local! {
    /// Per-thread scratch so [`MappedLayer::mvm`] stays allocation-free
    /// under the existing `&self` signature, including when one mapped
    /// model is shared across inference worker threads.
    static LAYER_SCRATCH: RefCell<LayerScratch> = RefCell::new(LayerScratch::default());
}

/// One layer programmed onto its crossbar grid.
#[derive(Debug, Clone)]
pub struct MappedLayer {
    /// Layer geometry.
    pub layer: Layer,
    /// Crossbar shape the strategy assigned.
    pub shape: XbarShape,
    /// Crossbars, `grid[row][col]`, each holding its weight block. For
    /// depthwise layers the grid is diagonal: `grid[i]` holds exactly one
    /// crossbar covering `row_ranges[i]` × `col_ranges[i]`.
    grid: Vec<Vec<Crossbar>>,
    row_ranges: Vec<Range<usize>>,
    col_ranges: Vec<Range<usize>>,
    /// Diagonal (depthwise) layout instead of the dense cartesian grid.
    diagonal: bool,
    /// Weight quantizer (for dequantizing results).
    pub w_quant: Quantizer,
}

impl MappedLayer {
    /// Quantize `weights` (the layer's kernel matrix — `Cin·k² × Cout`
    /// unfolded for dense layers, `k² × channels` for depthwise) and
    /// program them across a grid of `shape` crossbars.
    pub fn program(layer: &Layer, shape: XbarShape, weights: &Tensor, p: &CostParams) -> Self {
        let (er, ec) = layer.kernel_matrix_shape();
        assert_eq!(
            weights.shape(),
            &[er, ec],
            "weights must be the kernel matrix"
        );
        if layer.kind == LayerKind::DepthwiseConv {
            return Self::program_depthwise(layer, shape, weights, p);
        }
        let (wq, quant) = quantize_matrix(weights, p.weight_bits);
        let rr = row_ranges(layer, shape);
        let cc = col_ranges(layer, shape);
        let mut grid = Vec::with_capacity(rr.len());
        for r in &rr {
            let mut row = Vec::with_capacity(cc.len());
            for c in &cc {
                let block: Vec<Vec<i32>> = wq[r.clone()]
                    .iter()
                    .map(|full_row| full_row[c.clone()].to_vec())
                    .collect();
                row.push(Crossbar::program_with_cells(
                    shape,
                    &block,
                    p.weight_bits,
                    p.cell_bits,
                ));
            }
            grid.push(row);
        }
        MappedLayer {
            layer: *layer,
            shape,
            grid,
            row_ranges: rr,
            col_ranges: cc,
            diagonal: false,
            w_quant: quant,
        }
    }

    /// Depthwise programming: kernels pack block-diagonally — channel `c`
    /// of a crossbar's chunk occupies rows `[c·k², (c+1)·k²)` and column
    /// `c`, every other cell stays at zero conductance. This is exactly
    /// the diagonal footprint `autohet_xbar::utilization` counts.
    fn program_depthwise(
        layer: &Layer,
        shape: XbarShape,
        weights: &Tensor,
        p: &CostParams,
    ) -> Self {
        let (wq, quant) = quantize_matrix(weights, p.weight_bits);
        let k2 = layer.kernel_elems();
        let channels = layer.in_channels;
        let fp = autohet_xbar::utilization::footprint(layer, shape);
        let per_xb = fp.kernels_per_column as usize;
        assert!(
            per_xb >= 1,
            "kernel taller than crossbar: depthwise inference unsupported on {shape}"
        );

        let mut grid = Vec::new();
        let mut rr = Vec::new();
        let mut cc = Vec::new();
        let mut start = 0;
        while start < channels {
            let end = (start + per_xb).min(channels);
            let n = end - start;
            let mut block = vec![vec![0_i32; n]; n * k2];
            for local in 0..n {
                for e in 0..k2 {
                    block[local * k2 + e][local] = wq[e][start + local];
                }
            }
            grid.push(vec![Crossbar::program_with_cells(
                shape,
                &block,
                p.weight_bits,
                p.cell_bits,
            )]);
            rr.push(start * k2..end * k2);
            cc.push(start..end);
            start = end;
        }
        MappedLayer {
            layer: *layer,
            shape,
            grid,
            row_ranges: rr,
            col_ranges: cc,
            diagonal: true,
            w_quant: quant,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.grid.len(), self.grid.first().map_or(0, Vec::len))
    }

    /// Mutable access to the grid, for fault-injection studies.
    pub fn crossbars_mut(&mut self) -> impl Iterator<Item = &mut Crossbar> {
        self.grid.iter_mut().flatten()
    }

    /// One full weight-matrix MVM: slice the quantized input vector by
    /// grid-row ranges, run every crossbar, and merge partial sums across
    /// grid rows (the adder tree). Returns `Cout` integer accumulations.
    ///
    /// Each grid-row slice is bit-packed once and reused across every
    /// crossbar in that grid row (DESIGN.md §9); buffers come from a
    /// thread-local scratch, so repeated calls allocate only their result.
    pub fn mvm(&self, input_q: &[u8], adc: &Adc) -> Vec<i64> {
        LAYER_SCRATCH.with(|s| self.mvm_with_scratch(input_q, adc, &mut s.borrow_mut()))
    }

    fn mvm_with_scratch(&self, input_q: &[u8], adc: &Adc, s: &mut LayerScratch) -> Vec<i64> {
        assert_eq!(input_q.len(), self.layer.weight_rows());
        let mut out = vec![0_i64; self.layer.weight_cols()];
        if self.diagonal {
            // Depthwise: crossbar i independently produces the channels of
            // its chunk — no cross-crossbar partial sums.
            for (i, (rrange, crange)) in self.row_ranges.iter().zip(&self.col_ranges).enumerate() {
                s.packed.pack(&input_q[rrange.clone()]);
                self.grid[i][0].mvm_packed_into(
                    &s.packed,
                    adc,
                    &mut s.xbar,
                    &mut out[crange.clone()],
                );
            }
            return out;
        }
        // Each crossbar accumulates directly into its output-column window
        // (the adder tree) — no per-crossbar partial vector is allocated.
        for (ri, rrange) in self.row_ranges.iter().enumerate() {
            s.packed.pack(&input_q[rrange.clone()]);
            for (ci, crange) in self.col_ranges.iter().enumerate() {
                self.grid[ri][ci].mvm_packed_into(
                    &s.packed,
                    adc,
                    &mut s.xbar,
                    &mut out[crange.clone()],
                );
            }
        }
        out
    }

    /// Batched MVM: one output row per input vector, each bit-identical to
    /// a [`MappedLayer::mvm`] call on that input. The whole batch shares
    /// one scratch.
    ///
    /// The walk is crossbar-outer rather than input-outer: per grid row,
    /// every input's slice is packed once, then each crossbar runs the
    /// whole batch while its packed weight planes stay hot in cache —
    /// at batch `B` each crossbar's weights are streamed once instead of
    /// `B` times. Per-output accumulation order (grid rows ascending)
    /// matches the single-input path, and the i64 adder tree is exact,
    /// so outputs are bit-identical to `B` sequential [`MappedLayer::mvm`]
    /// calls.
    pub fn mvm_batch(&self, inputs: &[Vec<u8>], adc: &Adc) -> Vec<Vec<i64>> {
        LAYER_SCRATCH.with(|s| self.mvm_batch_with_scratch(inputs, adc, &mut s.borrow_mut()))
    }

    fn mvm_batch_with_scratch(
        &self,
        inputs: &[Vec<u8>],
        adc: &Adc,
        s: &mut LayerScratch,
    ) -> Vec<Vec<i64>> {
        let rows = self.layer.weight_rows();
        let mut out: Vec<Vec<i64>> = inputs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), rows);
                vec![0_i64; self.layer.weight_cols()]
            })
            .collect();
        if s.packs.len() < inputs.len() {
            s.packs.resize_with(inputs.len(), PackedInput::default);
        }
        for (ri, rrange) in self.row_ranges.iter().enumerate() {
            for (x, p) in inputs.iter().zip(&mut s.packs) {
                p.pack(&x[rrange.clone()]);
            }
            if self.diagonal {
                let crange = &self.col_ranges[ri];
                for (o, p) in out.iter_mut().zip(&s.packs) {
                    self.grid[ri][0].mvm_packed_into(p, adc, &mut s.xbar, &mut o[crange.clone()]);
                }
            } else {
                for (ci, crange) in self.col_ranges.iter().enumerate() {
                    for (o, p) in out.iter_mut().zip(&s.packs) {
                        self.grid[ri][ci].mvm_packed_into(
                            p,
                            adc,
                            &mut s.xbar,
                            &mut o[crange.clone()],
                        );
                    }
                }
            }
        }
        out
    }

    /// Parallel batched MVM via [`crate::par::par_map`]: inputs are split
    /// over worker threads (each with its own thread-local scratch) and
    /// results come back in input order, bit-identical to the serial
    /// [`MappedLayer::mvm_batch`].
    pub fn mvm_batch_par(&self, inputs: &[Vec<u8>], adc: &Adc) -> Vec<Vec<i64>> {
        crate::par::par_map(inputs, |x| self.mvm(x, adc))
    }
}

/// A whole model programmed onto a heterogeneous accelerator.
#[derive(Debug, Clone)]
pub struct MappedModel {
    /// The source model (must have a linear-chain `stages` pipeline for
    /// [`MappedModel::infer`]).
    pub model: Model,
    /// Programmed layers, indexed like `model.layers`.
    pub layers: Vec<MappedLayer>,
    /// Cost parameters the model was programmed with.
    pub params: CostParams,
    adc: Adc,
}

impl MappedModel {
    /// Program `model` with per-layer `weights` under `strategy`.
    pub fn program(
        model: &Model,
        strategy: &[XbarShape],
        weights: &[Tensor],
        params: CostParams,
    ) -> Self {
        assert_eq!(strategy.len(), model.layers.len());
        assert_eq!(weights.len(), model.layers.len());
        let layers = model
            .layers
            .iter()
            .zip(strategy.iter().zip(weights))
            .map(|(l, (&shape, w))| MappedLayer::program(l, shape, w, &params))
            .collect();
        MappedModel {
            model: model.clone(),
            layers,
            adc: Adc::new(params.adc_bits),
            params,
        }
    }

    /// Program with deterministic synthetic weights (DESIGN.md §1).
    pub fn program_synthetic(
        model: &Model,
        strategy: &[XbarShape],
        seed: u64,
        params: CostParams,
    ) -> Self {
        let weights: Vec<Tensor> = model
            .layers
            .iter()
            .map(|l| ops::synthetic_weights(l, seed))
            .collect();
        Self::program(model, strategy, &weights, params)
    }

    /// The ADC used at inference time.
    pub fn adc(&self) -> Adc {
        self.adc
    }

    /// Run one image through the mapped accelerator. Requires a
    /// linear-chain model (`model.stages` non-empty); returns the final
    /// layer's activations (logits — no ReLU on the last stage).
    pub fn infer(&self, image: &Tensor) -> Tensor {
        // Top-level single-image call: parallelize the conv-column batch
        // over crossbar workers.
        self.infer_inner(image, true)
    }

    fn infer_inner(&self, image: &Tensor, par: bool) -> Tensor {
        assert!(
            !self.model.stages.is_empty(),
            "model {} has no inference pipeline (mapping-only model)",
            self.model.name
        );
        let last_layer = self.model.layers.len() - 1;
        let mut act = image.clone();
        for stage in &self.model.stages {
            match *stage {
                Stage::Pool(w) => act = ops::max_pool(&act, w),
                Stage::Layer(i) => {
                    let ml = &self.layers[i];
                    act = self.run_layer(ml, &act, par);
                    if i != last_layer {
                        ops::relu(&mut act);
                    }
                }
            }
        }
        act
    }

    /// Run a batch of images; returns one logit tensor per image. Images
    /// are independent, so this parallelizes across worker threads with
    /// `crossbeam::scope` when the batch is large enough to pay for it.
    pub fn infer_batch(&self, images: &[Tensor]) -> Vec<Tensor> {
        const PAR_THRESHOLD: usize = 4;
        if images.len() < PAR_THRESHOLD {
            return images.iter().map(|img| self.infer(img)).collect();
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(images.len());
        let chunk = images.len().div_ceil(workers);
        let mut out: Vec<Option<Tensor>> = vec![None; images.len()];
        crossbeam::thread::scope(|s| {
            for (slot_chunk, img_chunk) in out.chunks_mut(chunk).zip(images.chunks(chunk)) {
                s.spawn(move |_| {
                    for (slot, img) in slot_chunk.iter_mut().zip(img_chunk) {
                        // Workers run serially inside — the batch already
                        // saturates the cores; nesting par_map would
                        // oversubscribe them.
                        *slot = Some(self.infer_inner(img, false));
                    }
                });
            }
        })
        .expect("inference worker panicked");
        out.into_iter()
            .map(|t| t.expect("all slots filled"))
            .collect()
    }

    /// Execute one mapped layer on an activation tensor. `par` fans the
    /// conv-column batch out over worker threads (top-level calls only —
    /// batch inference workers keep it off to avoid oversubscription).
    fn run_layer(&self, ml: &MappedLayer, act: &Tensor, par: bool) -> Tensor {
        // Below this many MVMs the fork-join overhead beats the win.
        const PAR_COLS: usize = 8;
        let layer = &ml.layer;
        // Unsigned activation quantizer: activations are non-negative
        // (input image in [0,1), ReLU after every hidden layer).
        let amax = act.max_abs();
        let xscale = if amax == 0.0 { 1.0 } else { amax / 255.0 };
        let rescale = ml.w_quant.scale * xscale;

        match layer.kind {
            // Depthwise shares the conv data path: im2col already stacks
            // per-channel patches in the row order the diagonal grid uses.
            LayerKind::Conv | LayerKind::DepthwiseConv => {
                let cols = im2col(layer, act);
                let o = layer.out_size();
                let rows = layer.weight_rows();
                let mut out = Tensor::zeros(vec![layer.out_channels, o, o]);
                // Quantize every output pixel's patch up front, then push
                // the whole batch through the grid in one call.
                let xqs: Vec<Vec<u8>> = (0..o * o)
                    .map(|pcol| {
                        (0..rows)
                            .map(|r| quantize_act(cols.at2(r, pcol), xscale))
                            .collect()
                    })
                    .collect();
                let ys = if par && xqs.len() >= PAR_COLS {
                    ml.mvm_batch_par(&xqs, &self.adc)
                } else {
                    ml.mvm_batch(&xqs, &self.adc)
                };
                for (pcol, y) in ys.iter().enumerate() {
                    for (oc, &v) in y.iter().enumerate() {
                        *out.at3_mut(oc, pcol / o, pcol % o) = v as f32 * rescale;
                    }
                }
                out
            }
            LayerKind::Fc => {
                assert_eq!(act.len(), layer.weight_rows(), "fc input size mismatch");
                let xq: Vec<u8> = act
                    .data()
                    .iter()
                    .map(|&v| quantize_act(v, xscale))
                    .collect();
                let y = ml.mvm(&xq, &self.adc);
                Tensor::from_vec(
                    vec![layer.out_channels],
                    y.into_iter().map(|v| v as f32 * rescale).collect(),
                )
            }
        }
    }
}

/// Quantize one non-negative activation to u8 with the given scale.
#[inline]
fn quantize_act(v: f32, scale: f32) -> u8 {
    debug_assert!(v >= 0.0, "activations must be non-negative, got {v}");
    ((v / scale).round() as i64).clamp(0, 255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::ops::{mvm_i32, synthetic_weights};
    use autohet_dnn::{zoo, Dataset};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn mapped_layer_mvm_is_exact_over_integers() {
        // The grid-merged MVM must equal the plain integer MVM on the
        // quantized weight matrix, for square and rectangle shapes.
        let layer = Layer::conv(0, 12, 40, 3, 1, 1, 8);
        let w = synthetic_weights(&layer, 11);
        let (wq, _) = quantize_matrix(&w, 8);
        let mut rng = SmallRng::seed_from_u64(4);
        let input: Vec<u8> = (0..layer.weight_rows()).map(|_| rng.gen()).collect();
        let expect: Vec<i64> = {
            let xi: Vec<i32> = input.iter().map(|&x| x as i32).collect();
            mvm_i32(&wq, &xi).into_iter().map(i64::from).collect()
        };
        for shape in [
            XbarShape::square(32),
            XbarShape::new(36, 32),
            XbarShape::square(128),
        ] {
            let ml = MappedLayer::program(&layer, shape, &w, &params());
            assert_eq!(ml.mvm(&input, &Adc::new(10)), expect, "shape {shape}");
        }
    }

    #[test]
    fn grid_dims_match_footprint() {
        let layer = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        let ml = MappedLayer::program(
            &layer,
            XbarShape::square(64),
            &synthetic_weights(&layer, 0),
            &params(),
        );
        assert_eq!(ml.grid_dims(), (2, 2));
    }

    #[test]
    fn inference_matches_float_reference_within_quant_error() {
        // End-to-end: the mapped accelerator's logits track the float
        // golden model closely on a small CNN.
        let m = zoo::test_cnn();
        let strategy = vec![XbarShape::new(72, 64); m.layers.len()];
        let mm = MappedModel::program_synthetic(&m, &strategy, 42, params());
        let img = Dataset::Cifar10.synthetic_image(1);

        // Float reference through the same pipeline.
        let weights: Vec<Tensor> = m.layers.iter().map(|l| synthetic_weights(l, 42)).collect();
        let mut act = img.clone();
        let last = m.layers.len() - 1;
        for stage in &m.stages {
            match *stage {
                Stage::Pool(w) => act = ops::max_pool(&act, w),
                Stage::Layer(i) => {
                    let l = &m.layers[i];
                    act = match l.kind {
                        LayerKind::DepthwiseConv => ops::depthwise_conv2d(l, &act, &weights[i]),
                        LayerKind::Conv => ops::conv2d(l, &act, &weights[i]),
                        LayerKind::Fc => Tensor::from_vec(
                            vec![l.out_channels],
                            ops::fully_connected(act.data(), &weights[i]),
                        ),
                    };
                    if i != last {
                        ops::relu(&mut act);
                    }
                }
            }
        }

        let logits = mm.infer(&img);
        assert_eq!(logits.shape(), act.shape());
        let scale = act.max_abs().max(1e-6);
        for (a, b) in logits.data().iter().zip(act.data()) {
            let rel = (a - b).abs() / scale;
            assert!(rel < 0.08, "crossbar {a} vs float {b} (rel {rel})");
        }
        // And the classification decision agrees.
        assert_eq!(logits.argmax(), act.argmax());
    }

    #[test]
    fn heterogeneous_strategies_give_identical_numerics() {
        // Crossbar shape is a layout choice; results must be bit-identical
        // across strategies (the ADC is wide enough everywhere).
        let m = zoo::micro_cnn();
        let img = Dataset::Mnist.synthetic_image(3);
        let a = MappedModel::program_synthetic(
            &m,
            &vec![XbarShape::square(32); m.layers.len()],
            7,
            params(),
        );
        let b = MappedModel::program_synthetic(
            &m,
            &[
                XbarShape::new(36, 32),
                XbarShape::square(128),
                XbarShape::new(72, 64),
                XbarShape::square(512),
            ],
            7,
            params(),
        );
        assert_eq!(a.infer(&img).data(), b.infer(&img).data());
    }

    #[test]
    #[should_panic]
    fn mapping_only_model_rejects_inference() {
        let m = zoo::resnet152();
        let strategy = vec![XbarShape::square(512); m.layers.len()];
        // Programming 156 ImageNet layers is heavy; use a fake tiny model
        // with empty stages instead.
        let tiny = Model {
            name: "no-stages".into(),
            dataset: Dataset::Mnist,
            layers: vec![m.layers[155]], // the FC head alone
            stages: vec![],
        };
        let mm = MappedModel::program_synthetic(&tiny, &strategy[..1], 0, params());
        let _ = mm.infer(&Dataset::Mnist.synthetic_image(0));
    }

    #[test]
    fn depthwise_mvm_is_exact_through_block_diagonal_crossbars() {
        let layer = Layer::depthwise(0, 10, 3, 1, 1, 8);
        let w = synthetic_weights(&layer, 15); // (9 x 10) kernel matrix
        let ml = MappedLayer::program(&layer, XbarShape::square(32), &w, &params());
        // 32 rows -> 3 kernels per crossbar -> 4 crossbars.
        assert_eq!(ml.grid_dims(), (4, 1));
        let (wq, _) = quantize_matrix(&w, 8);
        let mut rng = SmallRng::seed_from_u64(16);
        let input: Vec<u8> = (0..layer.weight_rows()).map(|_| rng.gen()).collect();
        let y = ml.mvm(&input, &Adc::new(10));
        // Reference: per-channel dot products.
        for c in 0..10 {
            let expect: i64 = (0..9)
                .map(|e| wq[e][c] as i64 * input[c * 9 + e] as i64)
                .sum();
            assert_eq!(y[c], expect, "channel {c}");
        }
    }

    #[test]
    fn depthwise_model_inference_matches_float_reference() {
        // A small depthwise-separable chain through real crossbars.
        let m = autohet_dnn::ModelBuilder::new("dw", Dataset::Cifar10)
            .conv(8, 3)
            .pool(2)
            .depthwise_spec(3, 1, 1)
            .conv(12, 1)
            .pool(2)
            .fc(10)
            .build();
        let strategy = vec![XbarShape::new(36, 32); m.layers.len()];
        let mm = MappedModel::program_synthetic(&m, &strategy, 21, params());
        let img = Dataset::Cifar10.synthetic_image(4);
        let analog = mm.infer(&img);

        let weights: Vec<Tensor> = m.layers.iter().map(|l| synthetic_weights(l, 21)).collect();
        let mut act = img.clone();
        let last = m.layers.len() - 1;
        for stage in &m.stages {
            match *stage {
                Stage::Pool(w) => act = ops::max_pool(&act, w),
                Stage::Layer(i) => {
                    let l = &m.layers[i];
                    act = match l.kind {
                        LayerKind::DepthwiseConv => ops::depthwise_conv2d(l, &act, &weights[i]),
                        LayerKind::Conv => ops::conv2d(l, &act, &weights[i]),
                        LayerKind::Fc => Tensor::from_vec(
                            vec![l.out_channels],
                            ops::fully_connected(act.data(), &weights[i]),
                        ),
                    };
                    if i != last {
                        ops::relu(&mut act);
                    }
                }
            }
        }
        assert_eq!(analog.argmax(), act.argmax());
        let scale = act.max_abs().max(1e-6);
        for (a, f) in analog.data().iter().zip(act.data()) {
            assert!((a - f).abs() / scale < 0.1, "{a} vs {f}");
        }
    }

    #[test]
    fn infer_batch_matches_sequential_inference() {
        let m = zoo::micro_cnn();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let mm = MappedModel::program_synthetic(&m, &strategy, 6, params());
        let images: Vec<Tensor> = (0..6).map(|i| Dataset::Mnist.synthetic_image(i)).collect();
        let batched = mm.infer_batch(&images);
        assert_eq!(batched.len(), 6);
        for (img, b) in images.iter().zip(&batched) {
            assert_eq!(mm.infer(img).data(), b.data());
        }
        // Small batches take the sequential path; results identical.
        let two = mm.infer_batch(&images[..2]);
        assert_eq!(two[1].data(), batched[1].data());
    }

    #[test]
    fn quantize_act_saturates() {
        assert_eq!(quantize_act(0.0, 1.0), 0);
        assert_eq!(quantize_act(300.0, 1.0), 255);
        assert_eq!(quantize_act(1.0, 1.0 / 255.0), 255);
    }
}
