//! Memoized strategy evaluation — the search drivers' hot path.
//!
//! The paper reports that ~97% of search time is simulator feedback
//! (§4.5), and every driver in `autohet` used to rebuild the entire
//! allocation + energy/latency pipeline from scratch per strategy. Two
//! observations make that redundant:
//!
//! 1. A layer's placement footprint, latency, and dynamic energy depend
//!    only on the `(layer, shape)` pair — there are only `L × C` distinct
//!    pairs (VGG16 × 5 candidates = 80), while a 300-episode search asks
//!    for `300 × L` of them. [`EvalEngine`] caches these slices and
//!    composes full [`EvalReport`]s from them, leaving only tile-sharing
//!    packing and global aggregation per call.
//! 2. Converged searches revisit identical whole strategies; a bounded
//!    strategy → report cache makes those repeats O(1).
//!
//! Results are bit-identical to [`evaluate`](crate::evaluate): both paths
//! build placements via [`crate::alloc::placement_for`] and aggregate via
//! `metrics::compose_report`, so the floats are accumulated in exactly the
//! same order. A shared engine is `Sync`; parallel sweep workers evaluate
//! concurrently against one memo table.

use crate::alloc::{allocation_from_placements, placement_for, LayerPlacement};
use crate::degradation::{DegradationState, DegradedEvalReport, DriftEvalConfig, RecoveryPolicy};
use crate::hierarchy::AccelConfig;
use crate::metrics::{compose_report, layer_cost, EvalReport, LayerCost};
use crate::repair::{repair_allocation, RepairPolicy, RepairReport};
use crate::robustness::{
    layer_noise, layer_noise_with_reference, LayerNoise, NoiseEvalConfig, RobustnessReport,
};
use crate::tile_shared::apply_tile_sharing;
use autohet_dnn::Model;
use autohet_xbar::energy::static_power;
use autohet_xbar::fault::{FaultMap, FaultRates};
use autohet_xbar::{area, XbarShape};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cached per-(layer, shape) evaluation slice.
#[derive(Debug, Clone, Copy)]
struct LayerSlice {
    placement: LayerPlacement,
    cost: LayerCost,
}

/// Bounded strategy → report map with insertion-order (FIFO) eviction.
#[derive(Debug, Clone, Default)]
struct StrategyCache {
    capacity: usize,
    map: HashMap<Vec<XbarShape>, EvalReport>,
    order: VecDeque<Vec<XbarShape>>,
}

impl StrategyCache {
    fn get(&self, key: &[XbarShape]) -> Option<EvalReport> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: Vec<XbarShape>, report: EvalReport) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, report);
    }
}

/// Cache hit/miss counters, snapshot via [`EvalEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Whole-strategy cache hits (O(1) repeated evaluations).
    pub strategy_hits: u64,
    /// Whole-strategy cache misses (full compositions performed).
    pub strategy_misses: u64,
    /// Per-(layer, shape) memo hits.
    pub layer_hits: u64,
    /// Per-(layer, shape) memo misses (full layer-slice computations —
    /// bounded by `L × C` distinct pairs, not by episodes × layers).
    pub layer_misses: u64,
}

impl EngineStats {
    /// Fraction of strategy evaluations served from the strategy cache.
    pub fn strategy_hit_rate(&self) -> f64 {
        let total = self.strategy_hits + self.strategy_misses;
        if total == 0 {
            return 0.0;
        }
        self.strategy_hits as f64 / total as f64
    }

    /// Fraction of layer-slice lookups served from the memo table.
    pub fn layer_hit_rate(&self) -> f64 {
        let total = self.layer_hits + self.layer_misses;
        if total == 0 {
            return 0.0;
        }
        self.layer_hits as f64 / total as f64
    }

    /// Full (uncached) strategy compositions performed.
    pub fn full_evaluations(&self) -> u64 {
        self.strategy_misses
    }

    /// Counter deltas since an earlier snapshot (saturating, so a snapshot
    /// taken around a shared engine's concurrent use never underflows).
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            strategy_hits: self.strategy_hits.saturating_sub(earlier.strategy_hits),
            strategy_misses: self.strategy_misses.saturating_sub(earlier.strategy_misses),
            layer_hits: self.layer_hits.saturating_sub(earlier.layer_hits),
            layer_misses: self.layer_misses.saturating_sub(earlier.layer_misses),
        }
    }

    /// Combined hit rate over both cache layers (strategy + layer-slice
    /// lookups); 0.0 when no lookups happened.
    pub fn combined_hit_rate(&self) -> f64 {
        let hits = self.strategy_hits + self.layer_hits;
        let total = hits + self.strategy_misses + self.layer_misses;
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }

    /// Mirror these counters into `registry` under `prefix` (e.g.
    /// `prefix = "engine"` publishes `engine.strategy_hits`, ...). Counters
    /// are cumulative, so publish cumulative snapshots — not deltas.
    pub fn publish(&self, registry: &autohet_obs::Registry, prefix: &str) {
        let set = |name: &str, v: u64| {
            let c = registry.counter(&format!("{prefix}.{name}"));
            c.add(v.saturating_sub(c.get()));
        };
        set("strategy_hits", self.strategy_hits);
        set("strategy_misses", self.strategy_misses);
        set("layer_hits", self.layer_hits);
        set("layer_misses", self.layer_misses);
    }
}

impl fmt::Display for EngineStats {
    /// One-line cache summary, e.g.
    /// `strategy 12/300 hits (4.0%), layer 4560/4800 hits (95.0%)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strategy {}/{} hits ({:.1}%), layer {}/{} hits ({:.1}%)",
            self.strategy_hits,
            self.strategy_hits + self.strategy_misses,
            100.0 * self.strategy_hit_rate(),
            self.layer_hits,
            self.layer_hits + self.layer_misses,
            100.0 * self.layer_hit_rate(),
        )
    }
}

/// Evaluation of a strategy on faulted hardware: the repaired mapping's
/// metrics plus the repair outcome that produced them. Produced by
/// [`EvalEngine::evaluate_faulted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedEvalReport {
    /// Metrics of the repaired allocation (latency factors, spare area,
    /// and spare leakage folded in).
    pub eval: EvalReport,
    /// What the repair did (spared / remapped / degraded, per-layer damage).
    pub repair: RepairReport,
    /// Seed the fault map was sampled with.
    pub seed: u64,
    /// Fault rates the map was sampled with.
    pub rates: FaultRates,
    /// Crossbar-weighted model fidelity proxy in `[0, 1]` (1 = exact).
    pub fidelity: f64,
}

/// Evaluation of a strategy under device variation: the ideal-device
/// metrics plus the Monte-Carlo robustness scores. Produced by
/// [`EvalEngine::evaluate_noisy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyEvalReport {
    /// Ideal-device metrics (identical to [`EvalEngine::evaluate`]).
    pub eval: EvalReport,
    /// Accuracy-under-noise scores (see [`crate::robustness`]).
    pub robustness: RobustnessReport,
}

/// Noise-evaluation state of an engine: the Monte-Carlo configuration
/// plus its own per-(layer, shape) memo — noise slices are far more
/// expensive than cost slices (they run the functional pipeline), and
/// just as reusable.
#[derive(Debug)]
struct NoiseState {
    cfg: NoiseEvalConfig,
    memo: Mutex<HashMap<(usize, XbarShape), LayerNoise>>,
}

/// Drift-evaluation state of an engine: the lifetime configuration plus
/// its own per-epoch memo. Keys carry the epoch (`f64` bits — epochs are
/// compared exactly, not approximately) and whether the slice was read
/// through recalibrated references, so stale and recalibrated
/// trajectories memoize side by side next to the static noise cache.
#[derive(Debug)]
struct DriftState {
    cfg: DriftEvalConfig,
    memo: Mutex<HashMap<(usize, XbarShape, u64, bool), LayerNoise>>,
}

/// Memoized evaluator for one `(model, config)` pair.
///
/// ```
/// use autohet_accel::{evaluate, AccelConfig, EvalEngine};
/// use autohet_xbar::XbarShape;
///
/// let model = autohet_dnn::zoo::micro_cnn();
/// let cfg = AccelConfig::default().with_tile_sharing();
/// let strategy = vec![XbarShape::square(64); model.layers.len()];
///
/// let engine = EvalEngine::new(model.clone(), cfg);
/// let cached = engine.evaluate(&strategy);
/// assert_eq!(cached, evaluate(&model, &strategy, &cfg));
/// assert_eq!(engine.stats().strategy_hits, 0);
/// engine.evaluate(&strategy);
/// assert_eq!(engine.stats().strategy_hits, 1);
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    model: Model,
    cfg: AccelConfig,
    layers: Mutex<HashMap<(usize, XbarShape), LayerSlice>>,
    strategies: Mutex<StrategyCache>,
    strategy_hits: AtomicU64,
    strategy_misses: AtomicU64,
    layer_hits: AtomicU64,
    layer_misses: AtomicU64,
    noise: Option<NoiseState>,
    drift: Option<DriftState>,
}

impl EvalEngine {
    /// Default bound on the strategy → report cache. Converged searches
    /// cycle through a handful of configurations; 512 comfortably covers a
    /// 300-episode search while bounding memory on exhaustive enumerations.
    pub const DEFAULT_STRATEGY_CAPACITY: usize = 512;

    /// Engine for `model` on an accelerator configured by `cfg`.
    pub fn new(model: Model, cfg: AccelConfig) -> Self {
        Self::with_strategy_capacity(model, cfg, Self::DEFAULT_STRATEGY_CAPACITY)
    }

    /// Engine with a custom strategy-cache bound (0 disables that layer of
    /// caching; the per-(layer, shape) memo is always on).
    pub fn with_strategy_capacity(model: Model, cfg: AccelConfig, capacity: usize) -> Self {
        EvalEngine {
            model,
            cfg,
            layers: Mutex::new(HashMap::new()),
            strategies: Mutex::new(StrategyCache {
                capacity,
                ..StrategyCache::default()
            }),
            strategy_hits: AtomicU64::new(0),
            strategy_misses: AtomicU64::new(0),
            layer_hits: AtomicU64::new(0),
            layer_misses: AtomicU64::new(0),
            noise: None,
            drift: None,
        }
    }

    /// This engine with accuracy-under-noise evaluation enabled:
    /// [`EvalEngine::evaluate_noisy`] becomes available, memoizing
    /// Monte-Carlo noise slices per `(layer, shape)` the same way cost
    /// slices are memoized.
    pub fn with_noise(mut self, cfg: NoiseEvalConfig) -> Self {
        self.noise = Some(NoiseState {
            cfg,
            memo: Mutex::new(HashMap::new()),
        });
        self
    }

    /// The noise-evaluation configuration, if enabled via
    /// [`EvalEngine::with_noise`].
    pub fn noise_config(&self) -> Option<&NoiseEvalConfig> {
        self.noise.as_ref().map(|n| &n.cfg)
    }

    /// This engine with lifetime-degradation evaluation enabled:
    /// [`EvalEngine::evaluate_degraded`] becomes available, memoizing
    /// per-epoch noise slices beside the static noise cache.
    pub fn with_drift(mut self, cfg: DriftEvalConfig) -> Self {
        self.drift = Some(DriftState {
            cfg,
            memo: Mutex::new(HashMap::new()),
        });
        self
    }

    /// The drift-evaluation configuration, if enabled via
    /// [`EvalEngine::with_drift`].
    pub fn drift_config(&self) -> Option<&DriftEvalConfig> {
        self.drift.as_ref().map(|d| &d.cfg)
    }

    /// The model this engine evaluates.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The accelerator configuration this engine evaluates against.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Evaluate `strategy`, serving repeats from the strategy cache.
    /// Bit-identical to `evaluate(model, strategy, cfg)`.
    pub fn evaluate(&self, strategy: &[XbarShape]) -> EvalReport {
        let _span = autohet_obs::trace::span("engine.evaluate");
        if let Some(hit) = self.strategies.lock().get(strategy) {
            self.strategy_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.strategy_misses.fetch_add(1, Ordering::Relaxed);
        let report = self.compose(strategy);
        let mut cache = self.strategies.lock();
        cache.insert(strategy.to_vec(), report.clone());
        report
    }

    /// Evaluate `strategy` through the per-(layer, shape) memo only,
    /// bypassing the strategy cache — for enumerations (exhaustive,
    /// homogeneous sweeps) that never revisit a strategy and should not
    /// churn the bounded cache.
    pub fn evaluate_fresh(&self, strategy: &[XbarShape]) -> EvalReport {
        self.compose(strategy)
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            strategy_hits: self.strategy_hits.load(Ordering::Relaxed),
            strategy_misses: self.strategy_misses.load(Ordering::Relaxed),
            layer_hits: self.layer_hits.load(Ordering::Relaxed),
            layer_misses: self.layer_misses.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&self) {
        self.layers.lock().clear();
        let mut s = self.strategies.lock();
        s.map.clear();
        s.order.clear();
        if let Some(n) = &self.noise {
            n.memo.lock().clear();
        }
        if let Some(d) = &self.drift {
            d.memo.lock().clear();
        }
    }

    fn slice(&self, position: usize, shape: XbarShape) -> LayerSlice {
        let key = (position, shape);
        if let Some(s) = self.layers.lock().get(&key) {
            self.layer_hits.fetch_add(1, Ordering::Relaxed);
            return *s;
        }
        self.layer_misses.fetch_add(1, Ordering::Relaxed);
        let layer = &self.model.layers[position];
        debug_assert_eq!(layer.index, position);
        let placement = placement_for(layer, shape, self.cfg.pes_per_tile);
        let s = LayerSlice {
            cost: layer_cost(layer, &placement.footprint, &self.cfg.cost),
            placement,
        };
        self.layers.lock().insert(key, s);
        s
    }

    /// Evaluate `strategy` under device variation: the ideal-device
    /// report (strategy-cached as usual) plus Monte-Carlo robustness
    /// scores from the functional pipeline (see [`crate::robustness`]).
    /// Noise slices are memoized per `(layer, shape)` and seeded
    /// per-pair, so results are deterministic and independent of
    /// evaluation order.
    ///
    /// Panics unless the engine was built with
    /// [`EvalEngine::with_noise`].
    pub fn evaluate_noisy(&self, strategy: &[XbarShape]) -> NoisyEvalReport {
        let _span = autohet_obs::trace::span("engine.evaluate_noisy");
        let state = self
            .noise
            .as_ref()
            .expect("noise evaluation requires EvalEngine::with_noise");
        let eval = self.evaluate(strategy);
        let per_layer: Vec<LayerNoise> = strategy
            .iter()
            .enumerate()
            .map(|(position, &shape)| self.noise_slice(state, position, shape))
            .collect();
        NoisyEvalReport {
            eval,
            robustness: RobustnessReport::aggregate(per_layer),
        }
    }

    fn noise_slice(&self, state: &NoiseState, position: usize, shape: XbarShape) -> LayerNoise {
        let key = (position, shape);
        if let Some(n) = state.memo.lock().get(&key) {
            return *n;
        }
        let n = layer_noise(
            &self.model.layers[position],
            shape,
            &self.cfg.cost,
            &state.cfg,
        );
        state.memo.lock().insert(key, n);
        n
    }

    /// Evaluate `strategy` on *faulted* hardware: build the allocation
    /// (sharing included per the config), sample a [`FaultMap`] for its
    /// tile array from `(seed, rates)`, repair it under `policy`, then
    /// re-evaluate the repaired mapping.
    ///
    /// The returned metrics account for the repair outcome:
    /// - re-serialized layers carry their latency factor (which also
    ///   lengthens the leakage window),
    /// - provisioned spares cost area whether or not they are used,
    /// - activated spares additionally leak for the whole inference,
    /// - dead components conservatively stay on the power rail.
    ///
    /// With `rates == FaultRates::ideal()` and zero spares the result's
    /// `eval` is bit-identical to [`EvalEngine::evaluate`]. The fault
    /// sampling is nested in the rate (see [`autohet_xbar::fault`]), so
    /// for one seed fidelity is antitone as rates rise, and latency is
    /// monotone while fidelity stays 1 (a fully lost layer stops
    /// computing: its latency contribution vanishes as fidelity
    /// collapses). Results are not cached: each call re-samples and
    /// re-repairs.
    pub fn evaluate_faulted(
        &self,
        strategy: &[XbarShape],
        seed: u64,
        rates: FaultRates,
        policy: &RepairPolicy,
    ) -> FaultedEvalReport {
        let _span = autohet_obs::trace::span("engine.evaluate_faulted");
        let (eval, repair, fidelity) = self.compose_repaired(strategy, policy, |capacities| {
            FaultMap::sample(seed, rates, capacities, policy.spares_per_tile)
        });
        FaultedEvalReport {
            eval,
            repair,
            seed,
            rates,
            fidelity,
        }
    }

    /// Evaluate `strategy` at lifetime epoch `t_hours` under `recovery`
    /// (DESIGN.md §12). The hard side samples the drift model's nested
    /// fault snapshot at `t` and repairs it under the recovery arm's
    /// cascade ([`DriftEvalConfig::repair_policy`]); the soft side scores
    /// Monte-Carlo robustness of the drifted device population read
    /// against the arm's reference model (stale vs recalibrated), with
    /// per-epoch slices memoized beside the static noise cache.
    ///
    /// At `t = 0` the drifted population is the base model bit for bit
    /// and no component has converted, so `eval` is bit-identical to
    /// [`EvalEngine::evaluate`] for every recovery arm. Results are
    /// deterministic and independent of evaluation order.
    ///
    /// Panics unless the engine was built with
    /// [`EvalEngine::with_drift`].
    pub fn evaluate_degraded(
        &self,
        strategy: &[XbarShape],
        t_hours: f64,
        recovery: RecoveryPolicy,
    ) -> DegradedEvalReport {
        let _span = autohet_obs::trace::span("engine.evaluate_degraded");
        let ds = self
            .drift
            .as_ref()
            .expect("drift evaluation requires EvalEngine::with_drift");
        let cfg = ds.cfg;
        let state = DegradationState::at(&cfg.drift, t_hours, recovery);
        let policy = cfg.repair_policy(recovery);
        let (eval, repair, fidelity) = self.compose_repaired(strategy, &policy, |capacities| {
            cfg.drift
                .snapshot_at(t_hours, capacities, policy.spares_per_tile)
        });
        let per_layer: Vec<LayerNoise> = strategy
            .iter()
            .enumerate()
            .map(|(position, &shape)| self.drift_slice(ds, &state, position, shape))
            .collect();
        let robustness = RobustnessReport::aggregate(per_layer);
        let accuracy_proxy = fidelity * robustness.accuracy_proxy;
        DegradedEvalReport {
            eval,
            repair,
            robustness,
            state,
            fidelity,
            accuracy_proxy,
        }
    }

    fn drift_slice(
        &self,
        ds: &DriftState,
        state: &DegradationState,
        position: usize,
        shape: XbarShape,
    ) -> LayerNoise {
        let key = (position, shape, state.t_hours.to_bits(), state.recalibrated);
        if let Some(n) = ds.memo.lock().get(&key) {
            return *n;
        }
        let ncfg = NoiseEvalConfig {
            variation: state.device,
            draws: ds.cfg.draws,
            probes: ds.cfg.probes,
            seed: ds.cfg.noise_seed,
        };
        let n = layer_noise_with_reference(
            &self.model.layers[position],
            shape,
            &self.cfg.cost,
            &ncfg,
            &state.device,
            &state.reference,
        );
        ds.memo.lock().insert(key, n);
        n
    }

    /// Shared hard-fault composition: slice the strategy, allocate (with
    /// sharing per the config), sample the fault map for the resulting
    /// tile array via `sample`, repair under `policy`, and price the
    /// repaired mapping (latency factors, spare area, spare leakage).
    fn compose_repaired<F>(
        &self,
        strategy: &[XbarShape],
        policy: &RepairPolicy,
        sample: F,
    ) -> (EvalReport, RepairReport, f64)
    where
        F: FnOnce(&[u32]) -> FaultMap,
    {
        assert_eq!(
            strategy.len(),
            self.model.layers.len(),
            "strategy length must match layer count"
        );
        let mut per_layer = Vec::with_capacity(strategy.len());
        let mut costs = Vec::with_capacity(strategy.len());
        for (position, &shape) in strategy.iter().enumerate() {
            let s = self.slice(position, shape);
            per_layer.push(s.placement);
            costs.push(s.cost);
        }
        let mut alloc = allocation_from_placements(per_layer, self.cfg.pes_per_tile);
        let sharing = self.cfg.tile_shared.then(|| apply_tile_sharing(&mut alloc));
        let capacities: Vec<u32> = alloc.tiles.iter().map(|t| t.capacity).collect();
        let faults = sample(&capacities);
        let repair = repair_allocation(&mut alloc, &faults, policy);
        for (pl, c) in alloc.per_layer.iter().zip(costs.iter_mut()) {
            c.latency_ns *= repair.latency_factor(pl.layer_index);
        }
        let mut eval = compose_report(&self.model, &alloc, sharing, &self.cfg, &costs);
        let p = &self.cfg.cost;
        for &(shape, n) in &repair.spares_by_shape {
            eval.area_um2 += area::crossbar_area(n, shape, p);
        }
        for &(shape, n) in &repair.activated_by_shape {
            eval.energy.leakage += static_power(n, shape, p) * eval.latency_ns * 1e-9;
        }
        let totals: Vec<u64> = alloc
            .per_layer
            .iter()
            .map(|pl| pl.footprint.total_xbars())
            .collect();
        let fidelity = repair.model_fidelity(&totals);
        (eval, repair, fidelity)
    }

    fn compose(&self, strategy: &[XbarShape]) -> EvalReport {
        let _span = autohet_obs::trace::span("engine.compose");
        assert_eq!(
            strategy.len(),
            self.model.layers.len(),
            "strategy length must match layer count"
        );
        let mut per_layer = Vec::with_capacity(strategy.len());
        let mut costs = Vec::with_capacity(strategy.len());
        for (position, &shape) in strategy.iter().enumerate() {
            let s = self.slice(position, shape);
            per_layer.push(s.placement);
            costs.push(s.cost);
        }
        let mut alloc = allocation_from_placements(per_layer, self.cfg.pes_per_tile);
        let sharing = self.cfg.tile_shared.then(|| apply_tile_sharing(&mut alloc));
        compose_report(&self.model, &alloc, sharing, &self.cfg, &costs)
    }
}

impl Clone for EvalEngine {
    /// Deep clone: the new engine starts with a copy of the current cache
    /// contents and counter values, then diverges independently.
    fn clone(&self) -> Self {
        EvalEngine {
            model: self.model.clone(),
            cfg: self.cfg,
            layers: Mutex::new(self.layers.lock().clone()),
            strategies: Mutex::new(self.strategies.lock().clone()),
            strategy_hits: AtomicU64::new(self.strategy_hits.load(Ordering::Relaxed)),
            strategy_misses: AtomicU64::new(self.strategy_misses.load(Ordering::Relaxed)),
            layer_hits: AtomicU64::new(self.layer_hits.load(Ordering::Relaxed)),
            layer_misses: AtomicU64::new(self.layer_misses.load(Ordering::Relaxed)),
            noise: self.noise.as_ref().map(|n| NoiseState {
                cfg: n.cfg,
                memo: Mutex::new(n.memo.lock().clone()),
            }),
            drift: self.drift.as_ref().map(|d| DriftState {
                cfg: d.cfg,
                memo: Mutex::new(d.memo.lock().clone()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn rotating_strategy(model: &Model, offset: usize) -> Vec<XbarShape> {
        let cands = paper_hybrid_candidates();
        (0..model.layers.len())
            .map(|i| cands[(i + offset) % cands.len()])
            .collect()
    }

    #[test]
    fn engine_matches_direct_evaluate_across_configs() {
        let m = zoo::alexnet();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
            AccelConfig::default().with_noc(),
            AccelConfig::default().with_tile_sharing().with_noc(),
            AccelConfig::default().with_pes_per_tile(16),
        ] {
            let engine = EvalEngine::new(m.clone(), cfg);
            for offset in 0..3 {
                let s = rotating_strategy(&m, offset);
                let direct = evaluate(&m, &s, &cfg);
                assert_eq!(engine.evaluate(&s), direct);
                // Second pass: strategy-cache hit, still identical.
                assert_eq!(engine.evaluate(&s), direct);
                assert_eq!(engine.evaluate_fresh(&s), direct);
            }
        }
    }

    #[test]
    fn layer_memo_is_bounded_by_distinct_pairs() {
        let m = zoo::vgg16();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let cands = paper_hybrid_candidates();
        for offset in 0..20 {
            engine.evaluate_fresh(&rotating_strategy(&m, offset));
        }
        let stats = engine.stats();
        let pairs = (m.layers.len() * cands.len()) as u64;
        assert!(
            stats.layer_misses <= pairs,
            "{} > {pairs}",
            stats.layer_misses
        );
        assert!(stats.layer_hits > 0);
        let lookups = 20 * m.layers.len() as u64;
        assert_eq!(stats.layer_hits + stats.layer_misses, lookups);
    }

    #[test]
    fn strategy_cache_hits_and_counts() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let s = rotating_strategy(&m, 0);
        engine.evaluate(&s);
        engine.evaluate(&s);
        engine.evaluate(&s);
        let stats = engine.stats();
        assert_eq!(stats.strategy_misses, 1);
        assert_eq!(stats.strategy_hits, 2);
        assert!((stats.strategy_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.full_evaluations(), 1);
    }

    #[test]
    fn strategy_cache_evicts_in_insertion_order() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::with_strategy_capacity(m.clone(), AccelConfig::default(), 2);
        let a = rotating_strategy(&m, 0);
        let b = rotating_strategy(&m, 1);
        let c = rotating_strategy(&m, 2);
        engine.evaluate(&a);
        engine.evaluate(&b);
        engine.evaluate(&c); // evicts a
        engine.evaluate(&b); // hit
        engine.evaluate(&a); // miss again (was evicted), evicts b
        let stats = engine.stats();
        assert_eq!(stats.strategy_misses, 4);
        assert_eq!(stats.strategy_hits, 1);
    }

    #[test]
    fn zero_capacity_disables_strategy_caching() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::with_strategy_capacity(m.clone(), AccelConfig::default(), 0);
        let s = rotating_strategy(&m, 0);
        let direct = evaluate(&m, &s, &AccelConfig::default());
        assert_eq!(engine.evaluate(&s), direct);
        assert_eq!(engine.evaluate(&s), direct);
        assert_eq!(engine.stats().strategy_hits, 0);
        assert_eq!(engine.stats().strategy_misses, 2);
    }

    #[test]
    fn clear_drops_caches_but_stays_correct() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let s = rotating_strategy(&m, 1);
        let before = engine.evaluate(&s);
        engine.clear();
        assert_eq!(engine.evaluate(&s), before);
    }

    #[test]
    fn cloned_engine_diverges_independently() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        engine.evaluate(&rotating_strategy(&m, 0));
        let fork = engine.clone();
        assert_eq!(fork.stats(), engine.stats());
        fork.evaluate(&rotating_strategy(&m, 0)); // hit from copied cache
        assert_eq!(fork.stats().strategy_hits, engine.stats().strategy_hits + 1);
    }

    #[test]
    fn ideal_faults_reproduce_the_healthy_evaluation_bit_for_bit() {
        let m = zoo::alexnet();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
        ] {
            let engine = EvalEngine::new(m.clone(), cfg);
            let s = rotating_strategy(&m, 0);
            let healthy = engine.evaluate(&s);
            let policy =
                crate::repair::RepairPolicy::no_spares(crate::repair::DegradationMode::Reserialize);
            let faulted = engine.evaluate_faulted(&s, 42, FaultRates::ideal(), &policy);
            assert_eq!(faulted.eval, healthy);
            assert!(faulted.repair.is_clean());
            assert_eq!(faulted.fidelity, 1.0);
        }
    }

    #[test]
    fn faulted_evaluation_is_deterministic_in_the_seed() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default().with_tile_sharing());
        let s = rotating_strategy(&m, 2);
        let policy = crate::repair::RepairPolicy::default();
        let a = engine.evaluate_faulted(&s, 9, FaultRates::dead(0.2), &policy);
        let b = engine.evaluate_faulted(&s, 9, FaultRates::dead(0.2), &policy);
        assert_eq!(a, b);
    }

    #[test]
    fn rising_fault_rates_never_improve_latency_or_fidelity() {
        // Nested sampling makes this exact per seed, not just expected.
        let m = zoo::alexnet();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
        ] {
            let engine = EvalEngine::new(m.clone(), cfg);
            let s = rotating_strategy(&m, 1);
            let policy = crate::repair::RepairPolicy::default();
            for seed in [1u64, 7, 23] {
                let mut prev_latency = 0.0f64;
                let mut prev_fidelity = 1.0f64;
                for rate in [0.0, 0.05, 0.15, 0.3] {
                    let r = engine.evaluate_faulted(&s, seed, FaultRates::dead(rate), &policy);
                    // Latency is monotone while every layer still computes;
                    // a fully lost layer drops out of the pipeline (its
                    // cost disappears but fidelity collapses), so gate the
                    // latency check on fidelity.
                    if r.fidelity == 1.0 {
                        assert!(
                            r.eval.latency_ns >= prev_latency,
                            "latency shrank at rate {rate}"
                        );
                        prev_latency = r.eval.latency_ns;
                    }
                    assert!(r.fidelity <= prev_fidelity, "fidelity rose at rate {rate}");
                    prev_fidelity = r.fidelity;
                }
            }
        }
    }

    #[test]
    fn provisioned_spares_cost_area_even_when_idle() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let s = rotating_strategy(&m, 0);
        let healthy = engine.evaluate(&s);
        let policy = crate::repair::RepairPolicy::default().with_spares(2);
        let faulted = engine.evaluate_faulted(&s, 0, FaultRates::ideal(), &policy);
        assert!(faulted.eval.area_um2 > healthy.area_um2);
        // Idle spares do not leak.
        assert_eq!(faulted.eval.energy_nj(), healthy.energy_nj());
    }

    #[test]
    fn noisy_evaluation_is_deterministic_and_memoized() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default())
            .with_noise(NoiseEvalConfig::default());
        let s = rotating_strategy(&m, 0);
        let a = engine.evaluate_noisy(&s);
        let b = engine.evaluate_noisy(&s);
        assert_eq!(a, b);
        // Ideal-device metrics are untouched by the noise path.
        assert_eq!(a.eval, evaluate(&m, &s, &AccelConfig::default()));
        assert_eq!(a.robustness.per_layer.len(), m.layers.len());
        assert!(a.robustness.mean_dev > 0.0);
        assert!(a.robustness.accuracy_proxy <= 1.0);
        // Memoized slices survive a clone and evaluation-order changes.
        let fork = engine.clone();
        assert_eq!(fork.evaluate_noisy(&s), a);
        let other = rotating_strategy(&m, 1);
        let engine2 = EvalEngine::new(m.clone(), AccelConfig::default())
            .with_noise(NoiseEvalConfig::default());
        engine2.evaluate_noisy(&other);
        assert_eq!(
            engine2.evaluate_noisy(&s),
            a,
            "order-dependent noise scores"
        );
    }

    #[test]
    fn exact_variation_gives_perfect_robustness() {
        let m = zoo::micro_cnn();
        let cfg = NoiseEvalConfig {
            variation: autohet_xbar::VariationModel::ideal(),
            ..NoiseEvalConfig::default()
        };
        let engine = EvalEngine::new(m.clone(), AccelConfig::default()).with_noise(cfg);
        let r = engine.evaluate_noisy(&rotating_strategy(&m, 0));
        assert_eq!(r.robustness.mean_dev, 0.0);
        assert_eq!(r.robustness.accuracy_proxy, 1.0);
    }

    #[test]
    #[should_panic]
    fn noisy_evaluation_requires_with_noise() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let _ = engine.evaluate_noisy(&rotating_strategy(&m, 0));
    }

    fn drift_engine(m: &Model, cfg: AccelConfig) -> EvalEngine {
        EvalEngine::new(m.clone(), cfg).with_drift(DriftEvalConfig {
            drift: autohet_xbar::DriftModel::fast(),
            draws: 2,
            probes: 2,
            ..DriftEvalConfig::default()
        })
    }

    #[test]
    fn epoch_zero_reproduces_the_healthy_evaluation_for_every_arm() {
        let m = zoo::micro_cnn();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
        ] {
            let engine = drift_engine(&m, cfg);
            let s = rotating_strategy(&m, 0);
            let healthy = engine.evaluate(&s);
            for arm in RecoveryPolicy::ALL {
                let d = engine.evaluate_degraded(&s, 0.0, arm);
                if !arm.repairs() {
                    // No spares provisioned: the epoch-0 report is the
                    // healthy evaluation bit for bit.
                    assert_eq!(d.eval, healthy, "{arm:?}");
                } else {
                    // Provisioned spares cost area; nothing else moves.
                    assert_eq!(d.eval.latency_ns, healthy.latency_ns, "{arm:?}");
                    assert_eq!(d.eval.energy_nj(), healthy.energy_nj(), "{arm:?}");
                }
                assert!(d.repair.is_clean(), "{arm:?}");
                assert_eq!(d.fidelity, 1.0);
                // Device == reference at t = 0, so the soft axis scores
                // an ordinary same-model draw for every arm.
                let no = engine.evaluate_degraded(&s, 0.0, RecoveryPolicy::NoRecovery);
                assert_eq!(d.robustness, no.robustness);
            }
        }
    }

    #[test]
    fn degraded_evaluation_is_deterministic_and_memoized() {
        let m = zoo::micro_cnn();
        let engine = drift_engine(&m, AccelConfig::default());
        let s = rotating_strategy(&m, 1);
        let a = engine.evaluate_degraded(&s, 3000.0, RecoveryPolicy::FullCascade);
        let b = engine.evaluate_degraded(&s, 3000.0, RecoveryPolicy::FullCascade);
        assert_eq!(a, b);
        // Memoized epoch slices survive a clone and a cache clear stays
        // correct.
        let fork = engine.clone();
        assert_eq!(
            fork.evaluate_degraded(&s, 3000.0, RecoveryPolicy::FullCascade),
            a
        );
        engine.clear();
        assert_eq!(
            engine.evaluate_degraded(&s, 3000.0, RecoveryPolicy::FullCascade),
            a
        );
    }

    #[test]
    fn recovery_arms_order_accuracy_at_late_epochs() {
        // The cascade's whole point: at a drifted epoch, recalibration
        // strictly beats the stale readout on the soft axis, and the full
        // cascade is at least as good again on the hard axis.
        let m = zoo::micro_cnn();
        let engine = drift_engine(&m, AccelConfig::default());
        let s = rotating_strategy(&m, 0);
        let t = 5_000.0;
        let no = engine.evaluate_degraded(&s, t, RecoveryPolicy::NoRecovery);
        let recal = engine.evaluate_degraded(&s, t, RecoveryPolicy::RecalibrateOnly);
        let full = engine.evaluate_degraded(&s, t, RecoveryPolicy::FullCascade);
        assert!(
            recal.robustness.mean_dev < no.robustness.mean_dev,
            "recalibration must cut the stale deviation ({} vs {})",
            recal.robustness.mean_dev,
            no.robustness.mean_dev
        );
        assert!(recal.accuracy_proxy > no.accuracy_proxy);
        assert!(full.accuracy_proxy >= recal.accuracy_proxy);
        assert!(full.fidelity >= no.fidelity);
        // Hard damage exists by hour 20k under the fast corner, and the
        // repairing arm re-homes at least some of it.
        assert!(no.repair.dead_occupied > 0, "fixture needs hard faults");
        assert_eq!(no.repair.spared + no.repair.remapped, 0);
        assert!(full.repair.spared + full.repair.remapped > 0);
    }

    #[test]
    fn degradation_is_monotone_along_the_trajectory() {
        let m = zoo::micro_cnn();
        let engine = drift_engine(&m, AccelConfig::default());
        let s = rotating_strategy(&m, 2);
        let mut prev_fid = 1.0f64;
        for t in [0.0, 1000.0, 10_000.0, 50_000.0] {
            let d = engine.evaluate_degraded(&s, t, RecoveryPolicy::NoRecovery);
            assert!(
                d.fidelity <= prev_fid + 1e-12,
                "hard fidelity rose at hour {t}"
            );
            prev_fid = d.fidelity;
            assert!((0.0..=1.0).contains(&d.accuracy_proxy));
        }
    }

    #[test]
    #[should_panic]
    fn degraded_evaluation_requires_with_drift() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let _ =
            engine.evaluate_degraded(&rotating_strategy(&m, 0), 1.0, RecoveryPolicy::FullCascade);
    }

    #[test]
    fn stats_display_and_registry_publish() {
        let stats = EngineStats {
            strategy_hits: 1,
            strategy_misses: 3,
            layer_hits: 9,
            layer_misses: 1,
        };
        assert_eq!(
            stats.to_string(),
            "strategy 1/4 hits (25.0%), layer 9/10 hits (90.0%)"
        );
        assert!((stats.combined_hit_rate() - 10.0 / 14.0).abs() < 1e-12);
        let reg = autohet_obs::Registry::new();
        stats.publish(&reg, "engine");
        // Publishing the same cumulative snapshot twice is idempotent.
        stats.publish(&reg, "engine");
        assert_eq!(reg.counter("engine.strategy_hits").get(), 1);
        assert_eq!(reg.counter("engine.layer_hits").get(), 9);
        assert_eq!(reg.counter("engine.layer_misses").get(), 1);
    }

    #[test]
    fn shared_engine_is_consistent_across_threads() {
        let m = zoo::alexnet();
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let expected: Vec<EvalReport> = (0..8)
            .map(|o| evaluate(&m, &rotating_strategy(&m, o), &cfg))
            .collect();
        let mut got: Vec<Option<EvalReport>> = vec![None; 8];
        crossbeam::thread::scope(|sc| {
            for (o, slot) in got.iter_mut().enumerate() {
                let engine = &engine;
                let m = &m;
                sc.spawn(move |_| {
                    *slot = Some(engine.evaluate(&rotating_strategy(m, o)));
                });
            }
        })
        .expect("evaluation worker panicked");
        for (g, e) in got.into_iter().zip(expected) {
            assert_eq!(g.unwrap(), e);
        }
    }
}
