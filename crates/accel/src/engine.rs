//! Memoized strategy evaluation — the search drivers' hot path.
//!
//! The paper reports that ~97% of search time is simulator feedback
//! (§4.5), and every driver in `autohet` used to rebuild the entire
//! allocation + energy/latency pipeline from scratch per strategy. Two
//! observations make that redundant:
//!
//! 1. A layer's placement footprint, latency, and dynamic energy depend
//!    only on the `(layer, shape)` pair — there are only `L × C` distinct
//!    pairs (VGG16 × 5 candidates = 80), while a 300-episode search asks
//!    for `300 × L` of them. [`EvalEngine`] caches these slices and
//!    composes full [`EvalReport`]s from them, leaving only tile-sharing
//!    packing and global aggregation per call.
//! 2. Converged searches revisit identical whole strategies; a bounded
//!    strategy → report cache makes those repeats O(1).
//!
//! Results are bit-identical to [`evaluate`](crate::evaluate): both paths
//! build placements via [`crate::alloc::placement_for`] and aggregate via
//! `metrics::compose_report`, so the floats are accumulated in exactly the
//! same order. A shared engine is `Sync`; parallel sweep workers evaluate
//! concurrently against one memo table.

use crate::alloc::{allocation_from_placements, placement_for, LayerPlacement};
use crate::hierarchy::AccelConfig;
use crate::metrics::{compose_report, layer_cost, EvalReport, LayerCost};
use crate::tile_shared::apply_tile_sharing;
use autohet_dnn::Model;
use autohet_xbar::XbarShape;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cached per-(layer, shape) evaluation slice.
#[derive(Debug, Clone, Copy)]
struct LayerSlice {
    placement: LayerPlacement,
    cost: LayerCost,
}

/// Bounded strategy → report map with insertion-order (FIFO) eviction.
#[derive(Debug, Clone, Default)]
struct StrategyCache {
    capacity: usize,
    map: HashMap<Vec<XbarShape>, EvalReport>,
    order: VecDeque<Vec<XbarShape>>,
}

impl StrategyCache {
    fn get(&self, key: &[XbarShape]) -> Option<EvalReport> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: Vec<XbarShape>, report: EvalReport) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, report);
    }
}

/// Cache hit/miss counters, snapshot via [`EvalEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Whole-strategy cache hits (O(1) repeated evaluations).
    pub strategy_hits: u64,
    /// Whole-strategy cache misses (full compositions performed).
    pub strategy_misses: u64,
    /// Per-(layer, shape) memo hits.
    pub layer_hits: u64,
    /// Per-(layer, shape) memo misses (full layer-slice computations —
    /// bounded by `L × C` distinct pairs, not by episodes × layers).
    pub layer_misses: u64,
}

impl EngineStats {
    /// Fraction of strategy evaluations served from the strategy cache.
    pub fn strategy_hit_rate(&self) -> f64 {
        let total = self.strategy_hits + self.strategy_misses;
        if total == 0 {
            return 0.0;
        }
        self.strategy_hits as f64 / total as f64
    }

    /// Fraction of layer-slice lookups served from the memo table.
    pub fn layer_hit_rate(&self) -> f64 {
        let total = self.layer_hits + self.layer_misses;
        if total == 0 {
            return 0.0;
        }
        self.layer_hits as f64 / total as f64
    }

    /// Full (uncached) strategy compositions performed.
    pub fn full_evaluations(&self) -> u64 {
        self.strategy_misses
    }

    /// Counter deltas since an earlier snapshot (saturating, so a snapshot
    /// taken around a shared engine's concurrent use never underflows).
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            strategy_hits: self.strategy_hits.saturating_sub(earlier.strategy_hits),
            strategy_misses: self.strategy_misses.saturating_sub(earlier.strategy_misses),
            layer_hits: self.layer_hits.saturating_sub(earlier.layer_hits),
            layer_misses: self.layer_misses.saturating_sub(earlier.layer_misses),
        }
    }
}

/// Memoized evaluator for one `(model, config)` pair.
///
/// ```
/// use autohet_accel::{evaluate, AccelConfig, EvalEngine};
/// use autohet_xbar::XbarShape;
///
/// let model = autohet_dnn::zoo::micro_cnn();
/// let cfg = AccelConfig::default().with_tile_sharing();
/// let strategy = vec![XbarShape::square(64); model.layers.len()];
///
/// let engine = EvalEngine::new(model.clone(), cfg);
/// let cached = engine.evaluate(&strategy);
/// assert_eq!(cached, evaluate(&model, &strategy, &cfg));
/// assert_eq!(engine.stats().strategy_hits, 0);
/// engine.evaluate(&strategy);
/// assert_eq!(engine.stats().strategy_hits, 1);
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    model: Model,
    cfg: AccelConfig,
    layers: Mutex<HashMap<(usize, XbarShape), LayerSlice>>,
    strategies: Mutex<StrategyCache>,
    strategy_hits: AtomicU64,
    strategy_misses: AtomicU64,
    layer_hits: AtomicU64,
    layer_misses: AtomicU64,
}

impl EvalEngine {
    /// Default bound on the strategy → report cache. Converged searches
    /// cycle through a handful of configurations; 512 comfortably covers a
    /// 300-episode search while bounding memory on exhaustive enumerations.
    pub const DEFAULT_STRATEGY_CAPACITY: usize = 512;

    /// Engine for `model` on an accelerator configured by `cfg`.
    pub fn new(model: Model, cfg: AccelConfig) -> Self {
        Self::with_strategy_capacity(model, cfg, Self::DEFAULT_STRATEGY_CAPACITY)
    }

    /// Engine with a custom strategy-cache bound (0 disables that layer of
    /// caching; the per-(layer, shape) memo is always on).
    pub fn with_strategy_capacity(model: Model, cfg: AccelConfig, capacity: usize) -> Self {
        EvalEngine {
            model,
            cfg,
            layers: Mutex::new(HashMap::new()),
            strategies: Mutex::new(StrategyCache {
                capacity,
                ..StrategyCache::default()
            }),
            strategy_hits: AtomicU64::new(0),
            strategy_misses: AtomicU64::new(0),
            layer_hits: AtomicU64::new(0),
            layer_misses: AtomicU64::new(0),
        }
    }

    /// The model this engine evaluates.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The accelerator configuration this engine evaluates against.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Evaluate `strategy`, serving repeats from the strategy cache.
    /// Bit-identical to `evaluate(model, strategy, cfg)`.
    pub fn evaluate(&self, strategy: &[XbarShape]) -> EvalReport {
        if let Some(hit) = self.strategies.lock().get(strategy) {
            self.strategy_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.strategy_misses.fetch_add(1, Ordering::Relaxed);
        let report = self.compose(strategy);
        let mut cache = self.strategies.lock();
        cache.insert(strategy.to_vec(), report.clone());
        report
    }

    /// Evaluate `strategy` through the per-(layer, shape) memo only,
    /// bypassing the strategy cache — for enumerations (exhaustive,
    /// homogeneous sweeps) that never revisit a strategy and should not
    /// churn the bounded cache.
    pub fn evaluate_fresh(&self, strategy: &[XbarShape]) -> EvalReport {
        self.compose(strategy)
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            strategy_hits: self.strategy_hits.load(Ordering::Relaxed),
            strategy_misses: self.strategy_misses.load(Ordering::Relaxed),
            layer_hits: self.layer_hits.load(Ordering::Relaxed),
            layer_misses: self.layer_misses.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&self) {
        self.layers.lock().clear();
        let mut s = self.strategies.lock();
        s.map.clear();
        s.order.clear();
    }

    fn slice(&self, position: usize, shape: XbarShape) -> LayerSlice {
        let key = (position, shape);
        if let Some(s) = self.layers.lock().get(&key) {
            self.layer_hits.fetch_add(1, Ordering::Relaxed);
            return *s;
        }
        self.layer_misses.fetch_add(1, Ordering::Relaxed);
        let layer = &self.model.layers[position];
        debug_assert_eq!(layer.index, position);
        let placement = placement_for(layer, shape, self.cfg.pes_per_tile);
        let s = LayerSlice {
            cost: layer_cost(layer, &placement.footprint, &self.cfg.cost),
            placement,
        };
        self.layers.lock().insert(key, s);
        s
    }

    fn compose(&self, strategy: &[XbarShape]) -> EvalReport {
        assert_eq!(
            strategy.len(),
            self.model.layers.len(),
            "strategy length must match layer count"
        );
        let mut per_layer = Vec::with_capacity(strategy.len());
        let mut costs = Vec::with_capacity(strategy.len());
        for (position, &shape) in strategy.iter().enumerate() {
            let s = self.slice(position, shape);
            per_layer.push(s.placement);
            costs.push(s.cost);
        }
        let mut alloc = allocation_from_placements(per_layer, self.cfg.pes_per_tile);
        let sharing = self.cfg.tile_shared.then(|| apply_tile_sharing(&mut alloc));
        compose_report(&self.model, &alloc, sharing, &self.cfg, &costs)
    }
}

impl Clone for EvalEngine {
    /// Deep clone: the new engine starts with a copy of the current cache
    /// contents and counter values, then diverges independently.
    fn clone(&self) -> Self {
        EvalEngine {
            model: self.model.clone(),
            cfg: self.cfg,
            layers: Mutex::new(self.layers.lock().clone()),
            strategies: Mutex::new(self.strategies.lock().clone()),
            strategy_hits: AtomicU64::new(self.strategy_hits.load(Ordering::Relaxed)),
            strategy_misses: AtomicU64::new(self.strategy_misses.load(Ordering::Relaxed)),
            layer_hits: AtomicU64::new(self.layer_hits.load(Ordering::Relaxed)),
            layer_misses: AtomicU64::new(self.layer_misses.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::paper_hybrid_candidates;

    fn rotating_strategy(model: &Model, offset: usize) -> Vec<XbarShape> {
        let cands = paper_hybrid_candidates();
        (0..model.layers.len())
            .map(|i| cands[(i + offset) % cands.len()])
            .collect()
    }

    #[test]
    fn engine_matches_direct_evaluate_across_configs() {
        let m = zoo::alexnet();
        for cfg in [
            AccelConfig::default(),
            AccelConfig::default().with_tile_sharing(),
            AccelConfig::default().with_noc(),
            AccelConfig::default().with_tile_sharing().with_noc(),
            AccelConfig::default().with_pes_per_tile(16),
        ] {
            let engine = EvalEngine::new(m.clone(), cfg);
            for offset in 0..3 {
                let s = rotating_strategy(&m, offset);
                let direct = evaluate(&m, &s, &cfg);
                assert_eq!(engine.evaluate(&s), direct);
                // Second pass: strategy-cache hit, still identical.
                assert_eq!(engine.evaluate(&s), direct);
                assert_eq!(engine.evaluate_fresh(&s), direct);
            }
        }
    }

    #[test]
    fn layer_memo_is_bounded_by_distinct_pairs() {
        let m = zoo::vgg16();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let cands = paper_hybrid_candidates();
        for offset in 0..20 {
            engine.evaluate_fresh(&rotating_strategy(&m, offset));
        }
        let stats = engine.stats();
        let pairs = (m.layers.len() * cands.len()) as u64;
        assert!(stats.layer_misses <= pairs, "{} > {pairs}", stats.layer_misses);
        assert!(stats.layer_hits > 0);
        let lookups = 20 * m.layers.len() as u64;
        assert_eq!(stats.layer_hits + stats.layer_misses, lookups);
    }

    #[test]
    fn strategy_cache_hits_and_counts() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        let s = rotating_strategy(&m, 0);
        engine.evaluate(&s);
        engine.evaluate(&s);
        engine.evaluate(&s);
        let stats = engine.stats();
        assert_eq!(stats.strategy_misses, 1);
        assert_eq!(stats.strategy_hits, 2);
        assert!((stats.strategy_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.full_evaluations(), 1);
    }

    #[test]
    fn strategy_cache_evicts_in_insertion_order() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::with_strategy_capacity(m.clone(), AccelConfig::default(), 2);
        let a = rotating_strategy(&m, 0);
        let b = rotating_strategy(&m, 1);
        let c = rotating_strategy(&m, 2);
        engine.evaluate(&a);
        engine.evaluate(&b);
        engine.evaluate(&c); // evicts a
        engine.evaluate(&b); // hit
        engine.evaluate(&a); // miss again (was evicted), evicts b
        let stats = engine.stats();
        assert_eq!(stats.strategy_misses, 4);
        assert_eq!(stats.strategy_hits, 1);
    }

    #[test]
    fn zero_capacity_disables_strategy_caching() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::with_strategy_capacity(m.clone(), AccelConfig::default(), 0);
        let s = rotating_strategy(&m, 0);
        let direct = evaluate(&m, &s, &AccelConfig::default());
        assert_eq!(engine.evaluate(&s), direct);
        assert_eq!(engine.evaluate(&s), direct);
        assert_eq!(engine.stats().strategy_hits, 0);
        assert_eq!(engine.stats().strategy_misses, 2);
    }

    #[test]
    fn clear_drops_caches_but_stays_correct() {
        let m = zoo::micro_cnn();
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let s = rotating_strategy(&m, 1);
        let before = engine.evaluate(&s);
        engine.clear();
        assert_eq!(engine.evaluate(&s), before);
    }

    #[test]
    fn cloned_engine_diverges_independently() {
        let m = zoo::micro_cnn();
        let engine = EvalEngine::new(m.clone(), AccelConfig::default());
        engine.evaluate(&rotating_strategy(&m, 0));
        let fork = engine.clone();
        assert_eq!(fork.stats(), engine.stats());
        fork.evaluate(&rotating_strategy(&m, 0)); // hit from copied cache
        assert_eq!(fork.stats().strategy_hits, engine.stats().strategy_hits + 1);
    }

    #[test]
    fn shared_engine_is_consistent_across_threads() {
        let m = zoo::alexnet();
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let expected: Vec<EvalReport> = (0..8)
            .map(|o| evaluate(&m, &rotating_strategy(&m, o), &cfg))
            .collect();
        let mut got: Vec<Option<EvalReport>> = vec![None; 8];
        crossbeam::thread::scope(|sc| {
            for (o, slot) in got.iter_mut().enumerate() {
                let engine = &engine;
                let m = &m;
                sc.spawn(move |_| {
                    *slot = Some(engine.evaluate(&rotating_strategy(m, o)));
                });
            }
        })
        .expect("evaluation worker panicked");
        for (g, e) in got.into_iter().zip(expected) {
            assert_eq!(g.unwrap(), e);
        }
    }
}
