//! Accelerator configuration and tile bookkeeping.
//!
//! The paper's hierarchy (Fig. 1 / §4.1): a bank holds many tiles, each
//! tile holds `pes_per_tile` PEs (default 4), and each PE gangs eight
//! 1-bit crossbar slices into one *logical* crossbar. Allocation therefore
//! deals in logical crossbars, `pes_per_tile` of them per tile; the cost
//! model expands to physical slices internally.

use autohet_xbar::{CostParams, XbarShape};
use serde::{Deserialize, Serialize};

/// Global accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Component cost model.
    pub cost: CostParams,
    /// Logical crossbars per tile (= PEs per tile; paper default 4, the
    /// §4.4 sensitivity sweep uses 8/16/32, Fig. 4 uses 4–32).
    pub pes_per_tile: u32,
    /// Enable the paper's tile-shared allocation scheme (Algorithm 1).
    pub tile_shared: bool,
    /// Model inter-tile NoC traffic (energy + latency). Off by default,
    /// matching the paper's evaluation; see [`crate::noc`].
    pub model_noc: bool,
    /// NoC cost parameters (used when `model_noc` is set).
    pub noc: crate::noc::NocParams,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            cost: CostParams::default(),
            pes_per_tile: 4,
            tile_shared: false,
            model_noc: false,
            noc: crate::noc::NocParams::default(),
        }
    }
}

impl AccelConfig {
    /// Configuration with the tile-shared scheme enabled.
    pub fn with_tile_sharing(mut self) -> Self {
        self.tile_shared = true;
        self
    }

    /// Configuration with a custom PE count per tile.
    pub fn with_pes_per_tile(mut self, pes: u32) -> Self {
        assert!(pes >= 1);
        self.pes_per_tile = pes;
        self
    }

    /// Configuration with the NoC model enabled.
    pub fn with_noc(mut self) -> Self {
        self.model_noc = true;
        self
    }
}

/// One occupant entry in a tile: a layer holding some of its crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileSlot {
    /// Index of the occupying layer within its model.
    pub layer_index: usize,
    /// Logical crossbars of the tile this layer occupies.
    pub xbars: u32,
}

/// An allocated tile: homogeneous crossbars of one shape, shared by one or
/// more layers (more than one only after tile sharing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    /// Identifier unique within an [`crate::Allocation`].
    pub id: usize,
    /// Crossbar shape of every PE in this tile.
    pub shape: XbarShape,
    /// Logical crossbar capacity (= PEs per tile).
    pub capacity: u32,
    /// Occupying layers and their crossbar counts.
    pub occupants: Vec<TileSlot>,
}

impl Tile {
    /// New empty tile.
    pub fn new(id: usize, shape: XbarShape, capacity: u32) -> Self {
        Tile {
            id,
            shape,
            capacity,
            occupants: Vec::new(),
        }
    }

    /// Crossbars currently occupied.
    pub fn occupied(&self) -> u32 {
        self.occupants.iter().map(|s| s.xbars).sum()
    }

    /// Empty crossbar slots (`emptyXBNum` in Algorithm 1).
    pub fn empty(&self) -> u32 {
        self.capacity - self.occupied()
    }

    /// Place `xbars` crossbars of `layer_index` into this tile.
    /// Panics if capacity would be exceeded.
    pub fn place(&mut self, layer_index: usize, xbars: u32) {
        assert!(
            xbars <= self.empty(),
            "tile {} overflow: placing {} into {} empty",
            self.id,
            xbars,
            self.empty()
        );
        if xbars > 0 {
            self.occupants.push(TileSlot { layer_index, xbars });
        }
    }

    /// Distinct layers sharing this tile.
    pub fn distinct_layers(&self) -> usize {
        let mut ids: Vec<usize> = self.occupants.iter().map(|s| s.layer_index).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = AccelConfig::default();
        assert_eq!(c.pes_per_tile, 4);
        assert!(!c.tile_shared);
        assert_eq!(c.cost.weight_bits, 8);
    }

    #[test]
    fn builders_chain() {
        let c = AccelConfig::default()
            .with_tile_sharing()
            .with_pes_per_tile(16);
        assert!(c.tile_shared);
        assert_eq!(c.pes_per_tile, 16);
    }

    #[test]
    fn tile_occupancy_accounting() {
        let mut t = Tile::new(0, XbarShape::square(64), 4);
        assert_eq!(t.empty(), 4);
        t.place(3, 3);
        assert_eq!(t.occupied(), 3);
        assert_eq!(t.empty(), 1);
        t.place(5, 1);
        assert_eq!(t.empty(), 0);
        assert_eq!(t.distinct_layers(), 2);
    }

    #[test]
    fn zero_placement_is_a_noop() {
        let mut t = Tile::new(0, XbarShape::square(64), 4);
        t.place(0, 0);
        assert!(t.occupants.is_empty());
    }

    #[test]
    #[should_panic]
    fn overflow_is_rejected() {
        let mut t = Tile::new(0, XbarShape::square(64), 4);
        t.place(0, 5);
    }
}
