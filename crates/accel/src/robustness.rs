//! Accuracy-under-noise oracle: Monte-Carlo device-variation evaluation
//! of a layer → crossbar-shape assignment (DESIGN.md §11).
//!
//! Energy/latency/area come from the analytic cost models; *robustness*
//! needs the functional pipeline. For each `(layer, shape)` pair this
//! module programs the layer's representative crossbar block (the first
//! grid block of the kernel-per-column mapping, quantized synthetic
//! weights), then compares ideal bit-serial MVMs against `K` seeded
//! lognormal variation draws ([`autohet_xbar::variation`]) over a few
//! probe activations:
//!
//! - **mean/worst output deviation**, normalized by the block's ideal
//!   output scale (so layers of very different magnitude are comparable);
//! - **classification-accuracy proxy**: the fraction of probes whose
//!   argmax decision survives the noise, multiplied across layers — a
//!   cheap stand-in for end-to-end accuracy that still ranks mappings.
//!
//! Every draw is seeded from `(seed, layer, shape, draw)`, so scores are
//! deterministic and independent of evaluation order — a prerequisite
//! for the memoized [`EvalEngine`](crate::engine::EvalEngine) noise
//! slices and for reproducible NSGA-II searches on top.

use crate::mapping::{col_ranges, row_ranges};
use autohet_dnn::metrics::{argmax_i64, max_abs_dev_i64};
use autohet_dnn::ops::synthetic_weights;
use autohet_dnn::quant::quantize_matrix;
use autohet_dnn::Layer;
use autohet_xbar::variation::{VariationModel, VariedCrossbar};
use autohet_xbar::{Adc, CostParams, Crossbar, XbarShape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Monte-Carlo noise-evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseEvalConfig {
    /// Device-variation model sampled per draw.
    pub variation: VariationModel,
    /// Monte-Carlo draws (`K` independent device samplings per pair).
    pub draws: u32,
    /// Probe activation vectors pushed through each draw.
    pub probes: u32,
    /// Base seed; per-draw seeds are mixed from
    /// `(seed, layer, shape, draw)` so scores do not depend on
    /// evaluation order.
    pub seed: u64,
}

impl Default for NoiseEvalConfig {
    /// HyperMetric corner, 3 draws × 4 probes — small enough for search
    /// loops, large enough to rank mappings stably.
    fn default() -> Self {
        NoiseEvalConfig {
            variation: VariationModel::hypermetric(),
            draws: 3,
            probes: 4,
            seed: 7,
        }
    }
}

/// Noise statistics of one `(layer, shape)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerNoise {
    /// Mean absolute output deviation over all draws/probes/outputs,
    /// normalized by the block's ideal output scale.
    pub mean_dev: f64,
    /// Worst single-output deviation (same normalization).
    pub worst_dev: f64,
    /// Fraction of outputs that stayed bit-exact under noise.
    pub exact_rate: f64,
    /// Fraction of (draw, probe) pairs whose argmax decision survived.
    pub argmax_rate: f64,
}

impl LayerNoise {
    /// The noise-free pair: zero deviation, everything exact.
    pub fn exact() -> Self {
        LayerNoise {
            mean_dev: 0.0,
            worst_dev: 0.0,
            exact_rate: 1.0,
            argmax_rate: 1.0,
        }
    }
}

/// Whole-strategy robustness: per-layer noise statistics plus the
/// aggregates the multi-objective search optimizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// One entry per layer, in layer order.
    pub per_layer: Vec<LayerNoise>,
    /// Mean of the per-layer mean deviations (the noise objective).
    pub mean_dev: f64,
    /// Largest per-layer worst-case deviation.
    pub worst_dev: f64,
    /// Product of per-layer argmax survival rates — the probability that
    /// a decision survives every layer, treating layers independently.
    pub accuracy_proxy: f64,
}

impl RobustnessReport {
    /// Aggregate per-layer statistics into strategy objectives.
    pub fn aggregate(per_layer: Vec<LayerNoise>) -> Self {
        let n = per_layer.len().max(1) as f64;
        let mean_dev = per_layer.iter().map(|l| l.mean_dev).sum::<f64>() / n;
        let worst_dev = per_layer.iter().map(|l| l.worst_dev).fold(0.0, f64::max);
        let accuracy_proxy = per_layer.iter().map(|l| l.argmax_rate).product();
        RobustnessReport {
            per_layer,
            mean_dev,
            worst_dev,
            accuracy_proxy,
        }
    }
}

/// SplitMix64 finalizer — decorrelates the structured per-draw seed
/// tuples before they reach the xoshiro seeding path.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pair_seed(seed: u64, layer: usize, shape: XbarShape) -> u64 {
    splitmix(
        seed ^ splitmix(((layer as u64) << 1) | 1)
            ^ splitmix(((shape.rows as u64) << 32) | shape.cols as u64),
    )
}

/// Monte-Carlo noise statistics for one `(layer, shape)` pair.
///
/// Deterministic in `(layer, shape, cost, cfg)`; with an exact variation
/// model ([`VariationModel::is_exact`]) the result is
/// [`LayerNoise::exact`] without sampling anything.
pub fn layer_noise(
    layer: &Layer,
    shape: XbarShape,
    cost: &CostParams,
    cfg: &NoiseEvalConfig,
) -> LayerNoise {
    layer_noise_with_reference(layer, shape, cost, cfg, &cfg.variation, &cfg.variation)
}

/// [`layer_noise`] with the device population and readout reference
/// decoupled: currents are drawn from `device`, per-unit counts resolve
/// against `reference`'s thresholds
/// ([`VariedCrossbar::sample_with_reference`]).
///
/// This is the soft half of lifetime degradation (DESIGN.md §12): under
/// conductance drift the population follows
/// [`DriftModel::variation_at`](autohet_xbar::drift::DriftModel::variation_at)
/// while a *stale* readout still references the factory model — high
/// deviation — whereas a *recalibrated* readout references the drifted
/// model itself and recovers. `cfg.variation` is ignored here; draws,
/// probes, and seeding come from `cfg` so drift slices stay comparable
/// to static noise slices. With `device == reference` this is exactly
/// [`layer_noise`], bit for bit.
pub fn layer_noise_with_reference(
    layer: &Layer,
    shape: XbarShape,
    cost: &CostParams,
    cfg: &NoiseEvalConfig,
    device: &VariationModel,
    reference: &VariationModel,
) -> LayerNoise {
    let exact = device == reference && device.is_exact();
    if exact || cfg.draws == 0 || cfg.probes == 0 {
        return LayerNoise::exact();
    }
    // Representative block: the first grid block of the mapping — the
    // only block whose row range is always full-height, so it sees the
    // largest bitline sums (worst case for readout error).
    let rows = row_ranges(layer, shape)
        .into_iter()
        .next()
        .expect("layer maps to at least one grid row");
    let cols = col_ranges(layer, shape)
        .into_iter()
        .next()
        .expect("layer maps to at least one grid column");
    let weights = synthetic_weights(layer, cfg.seed);
    let (qw, _) = quantize_matrix(&weights, cost.weight_bits);
    let block: Vec<Vec<i32>> = qw[rows.clone()]
        .iter()
        .map(|row| row[cols.clone()].to_vec())
        .collect();
    let xb = Crossbar::program(shape, &block, cost.weight_bits);
    let adc = Adc::new(cost.adc_bits);

    let base = pair_seed(cfg.seed, layer.index, shape);
    let mut probe_rng = SmallRng::seed_from_u64(base);
    let probes: Vec<Vec<u8>> = (0..cfg.probes)
        .map(|_| (0..rows.len()).map(|_| probe_rng.gen()).collect())
        .collect();
    let ideal: Vec<Vec<i64>> = probes.iter().map(|p| xb.mvm(p, &adc)).collect();
    let scale = ideal
        .iter()
        .flat_map(|o| o.iter().map(|&v| v.abs() as f64))
        .fold(1.0, f64::max);

    let outputs = cols.len();
    let mut abs_sum = 0.0f64;
    let mut worst = 0_i64;
    let mut exact = 0_u64;
    let mut argmax_hits = 0_u64;
    for d in 0..cfg.draws {
        let vc = VariedCrossbar::sample_with_reference(
            &xb,
            device,
            reference,
            splitmix(base ^ ((d as u64) << 8)),
        );
        for (probe, ideal) in probes.iter().zip(&ideal) {
            let noisy = vc.mvm(probe, &adc);
            for (&a, &b) in ideal.iter().zip(&noisy) {
                let dev = (a - b).abs();
                abs_sum += dev as f64;
                if dev == 0 {
                    exact += 1;
                }
            }
            worst = worst.max(max_abs_dev_i64(ideal, &noisy));
            if argmax_i64(ideal) == argmax_i64(&noisy) {
                argmax_hits += 1;
            }
        }
    }
    let samples = (cfg.draws as u64 * cfg.probes as u64 * outputs as u64).max(1);
    let trials = (cfg.draws as u64 * cfg.probes as u64).max(1);
    LayerNoise {
        mean_dev: abs_sum / samples as f64 / scale,
        worst_dev: worst as f64 / scale,
        exact_rate: exact as f64 / samples as f64,
        argmax_rate: argmax_hits as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::Layer;

    fn cost() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn exact_model_short_circuits() {
        let l = Layer::conv(0, 12, 64, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig {
            variation: VariationModel::ideal(),
            ..NoiseEvalConfig::default()
        };
        let n = layer_noise(&l, XbarShape::square(64), &cost(), &cfg);
        assert_eq!(n, LayerNoise::exact());
    }

    #[test]
    fn noise_is_deterministic_and_order_free() {
        let l = Layer::conv(2, 12, 64, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig::default();
        let a = layer_noise(&l, XbarShape::square(64), &cost(), &cfg);
        let b = layer_noise(&l, XbarShape::square(64), &cost(), &cfg);
        assert_eq!(a, b);
        // Sanity: the HyperMetric corner does perturb a 63-row block.
        assert!(a.mean_dev > 0.0);
        assert!(a.worst_dev >= a.mean_dev);
        assert!(a.exact_rate < 1.0);
    }

    #[test]
    fn different_shapes_see_different_noise() {
        let l = Layer::conv(1, 12, 64, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig::default();
        let small = layer_noise(&l, XbarShape::square(32), &cost(), &cfg);
        let large = layer_noise(&l, XbarShape::new(288, 256), &cost(), &cfg);
        assert_ne!(small, large);
    }

    #[test]
    fn reference_equal_to_device_matches_layer_noise() {
        let l = Layer::conv(3, 12, 64, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig::default();
        let a = layer_noise(&l, XbarShape::square(64), &cost(), &cfg);
        let b = layer_noise_with_reference(
            &l,
            XbarShape::square(64),
            &cost(),
            &cfg,
            &cfg.variation,
            &cfg.variation,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn stale_reference_degrades_and_recalibration_recovers() {
        let l = Layer::conv(1, 12, 64, 3, 1, 1, 8);
        let cfg = NoiseEvalConfig::default();
        let factory = VariationModel::hypermetric();
        let drifted = VariationModel {
            r_on: factory.r_on * 1.5,
            r_off: factory.r_off * 1.5,
            ..factory
        };
        let shape = XbarShape::square(64);
        let stale = layer_noise_with_reference(&l, shape, &cost(), &cfg, &drifted, &factory);
        let recal = layer_noise_with_reference(&l, shape, &cost(), &cfg, &drifted, &drifted);
        assert!(
            stale.mean_dev > 2.0 * recal.mean_dev,
            "stale {} vs recalibrated {}",
            stale.mean_dev,
            recal.mean_dev
        );
        assert!(stale.argmax_rate <= recal.argmax_rate);
    }

    #[test]
    fn aggregate_combines_layers() {
        let a = LayerNoise {
            mean_dev: 0.1,
            worst_dev: 0.5,
            exact_rate: 0.2,
            argmax_rate: 0.9,
        };
        let b = LayerNoise {
            mean_dev: 0.3,
            worst_dev: 0.2,
            exact_rate: 0.4,
            argmax_rate: 0.5,
        };
        let r = RobustnessReport::aggregate(vec![a, b]);
        assert!((r.mean_dev - 0.2).abs() < 1e-12);
        assert_eq!(r.worst_dev, 0.5);
        assert!((r.accuracy_proxy - 0.45).abs() < 1e-12);
        let empty = RobustnessReport::aggregate(vec![]);
        assert_eq!(empty.mean_dev, 0.0);
        assert_eq!(empty.accuracy_proxy, 1.0);
    }
}
