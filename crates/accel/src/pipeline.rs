//! Layer-pipelined execution model (beyond the paper's sequential
//! latency; DESIGN.md §6).
//!
//! ReRAM accelerators in the paper's lineage (PipeLayer [21], ISAAC [19])
//! stream batches: every layer works on a different sample concurrently,
//! so steady-state throughput is set by the *slowest stage*, not the sum.
//! This module computes
//!
//! - the per-stage (per-sample) latencies under a strategy,
//! - batch latency `fill + (N−1) × bottleneck` and throughput,
//! - ISAAC-style *weight replication*: duplicating a slow layer's
//!   crossbars lets it process several presentations in parallel, cutting
//!   its stage time proportionally — at a crossbar/area cost this module
//!   quantifies.

use crate::hierarchy::AccelConfig;
use autohet_dnn::Model;
use autohet_xbar::latency::layer_latency_ns;
use autohet_xbar::utilization::footprint;
use autohet_xbar::XbarShape;
use serde::{Deserialize, Serialize};

/// Pipeline analysis of one (model, strategy) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-layer stage latency for one sample [ns].
    pub stage_ns: Vec<f64>,
    /// Index of the slowest stage.
    pub bottleneck_layer: usize,
    /// Slowest stage latency [ns].
    pub bottleneck_ns: f64,
    /// Pipeline fill latency (= sequential single-sample latency) [ns].
    pub fill_ns: f64,
}

impl PipelineReport {
    /// Latency to finish a batch of `n` samples [ns].
    pub fn batch_latency_ns(&self, n: usize) -> f64 {
        assert!(n >= 1);
        self.fill_ns + (n as f64 - 1.0) * self.bottleneck_ns
    }

    /// Integer batch service time for discrete-event serving [ns].
    ///
    /// Rounds [`Self::batch_latency_ns`] up to a whole nanosecond and
    /// floors it at 1 ns so event timestamps in downstream simulators
    /// stay strictly increasing per replica.
    pub fn batch_service_ns(&self, n: usize) -> u64 {
        (self.batch_latency_ns(n).ceil() as u64).max(1)
    }

    /// Steady-state throughput [samples per second].
    pub fn throughput_sps(&self) -> f64 {
        1e9 / self.bottleneck_ns
    }

    /// Speedup of pipelined over sequential execution for a batch of `n`.
    pub fn speedup(&self, n: usize) -> f64 {
        (self.fill_ns * n as f64) / self.batch_latency_ns(n)
    }
}

/// Analyze pipelined execution of `model` under `strategy`.
pub fn pipeline_report(model: &Model, strategy: &[XbarShape], cfg: &AccelConfig) -> PipelineReport {
    assert_eq!(strategy.len(), model.layers.len());
    let stage_ns: Vec<f64> = model
        .layers
        .iter()
        .zip(strategy)
        .map(|(l, &s)| layer_latency_ns(l, &footprint(l, s), &cfg.cost))
        .collect();
    let (bottleneck_layer, &bottleneck_ns) = stage_ns
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("non-empty model");
    PipelineReport {
        fill_ns: stage_ns.iter().sum(),
        bottleneck_layer,
        bottleneck_ns,
        stage_ns,
    }
}

/// A replication plan: per-layer crossbar-duplication factors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationPlan {
    /// Duplication factor per layer (≥ 1).
    pub factors: Vec<u32>,
}

impl ReplicationPlan {
    /// Extra logical crossbars the plan costs beyond the unreplicated
    /// mapping.
    pub fn extra_xbars(&self, model: &Model, strategy: &[XbarShape]) -> u64 {
        self.factors
            .iter()
            .zip(model.layers.iter().zip(strategy))
            .map(|(&f, (l, &s))| (f as u64 - 1) * footprint(l, s).total_xbars())
            .sum()
    }
}

/// ISAAC-style balancing: replicate each layer enough that its stage time
/// sinks to (roughly) the `target_ratio` × slowest-stage level, capped at
/// `max_factor`. `target_ratio = 1.0` balances everything to the current
/// fastest stage; smaller ratios are cheaper.
pub fn balance_replication(
    report: &PipelineReport,
    target_ratio: f64,
    max_factor: u32,
) -> ReplicationPlan {
    assert!(target_ratio > 0.0 && max_factor >= 1);
    let target = report.bottleneck_ns * target_ratio / max_factor as f64;
    let factors = report
        .stage_ns
        .iter()
        .map(|&s| ((s / target.max(1e-9)).ceil() as u32).clamp(1, max_factor))
        .collect();
    ReplicationPlan { factors }
}

/// Stage times after applying a replication plan (a stage replicated `f`×
/// processes `f` presentations in parallel).
pub fn replicated_stages(report: &PipelineReport, plan: &ReplicationPlan) -> Vec<f64> {
    report
        .stage_ns
        .iter()
        .zip(&plan.factors)
        .map(|(&s, &f)| s / f as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;

    fn vgg_report() -> (autohet_dnn::Model, Vec<XbarShape>, PipelineReport) {
        let m = zoo::vgg16();
        let strategy = vec![XbarShape::new(72, 64); m.layers.len()];
        let r = pipeline_report(&m, &strategy, &AccelConfig::default());
        (m, strategy, r)
    }

    #[test]
    fn fill_is_sum_and_bottleneck_is_max() {
        let (_, _, r) = vgg_report();
        let sum: f64 = r.stage_ns.iter().sum();
        assert!((r.fill_ns - sum).abs() < 1e-6);
        let max = r.stage_ns.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(r.bottleneck_ns, max);
        assert_eq!(r.stage_ns[r.bottleneck_layer], max);
        // VGG16's bottleneck is an early, large-feature-map layer.
        assert!(r.bottleneck_layer <= 1);
    }

    #[test]
    fn pipelining_pays_off_for_batches() {
        let (_, _, r) = vgg_report();
        assert!((r.speedup(1) - 1.0).abs() < 1e-9);
        assert!(r.speedup(16) > 2.0, "speedup {}", r.speedup(16));
        assert!(r.speedup(256) > r.speedup(16));
        // Asymptote: fill / bottleneck.
        assert!(r.speedup(100_000) <= r.fill_ns / r.bottleneck_ns + 1e-6);
    }

    #[test]
    fn batch_latency_is_affine_in_n() {
        let (_, _, r) = vgg_report();
        let d1 = r.batch_latency_ns(2) - r.batch_latency_ns(1);
        let d2 = r.batch_latency_ns(3) - r.batch_latency_ns(2);
        assert!((d1 - d2).abs() < 1e-6);
        assert!((d1 - r.bottleneck_ns).abs() < 1e-6);
    }

    #[test]
    fn batch_service_rounds_up_and_stays_positive() {
        let (_, _, r) = vgg_report();
        for n in [1usize, 2, 7, 64] {
            let svc = r.batch_service_ns(n);
            assert!(svc >= 1);
            assert!(svc as f64 >= r.batch_latency_ns(n));
            assert!((svc as f64) < r.batch_latency_ns(n) + 1.0);
        }
        // Degenerate sub-nanosecond stages still yield a nonzero tick.
        let tiny = PipelineReport {
            stage_ns: vec![0.1],
            bottleneck_layer: 0,
            bottleneck_ns: 0.1,
            fill_ns: 0.1,
        };
        assert_eq!(tiny.batch_service_ns(1), 1);
    }

    #[test]
    fn replication_shrinks_the_bottleneck_at_a_crossbar_cost() {
        let (m, strategy, r) = vgg_report();
        let plan = balance_replication(&r, 1.0, 8);
        assert!(plan.factors.iter().all(|&f| (1..=8).contains(&f)));
        assert_eq!(plan.factors[r.bottleneck_layer], 8);
        let after = replicated_stages(&r, &plan);
        let new_max = after.iter().cloned().fold(f64::MIN, f64::max);
        assert!(new_max < r.bottleneck_ns / 2.0);
        assert!(plan.extra_xbars(&m, &strategy) > 0);
    }

    #[test]
    fn no_replication_when_max_factor_is_one() {
        let (m, strategy, r) = vgg_report();
        let plan = balance_replication(&r, 1.0, 1);
        assert!(plan.factors.iter().all(|&f| f == 1));
        assert_eq!(plan.extra_xbars(&m, &strategy), 0);
        assert_eq!(replicated_stages(&r, &plan), r.stage_ns);
    }

    #[test]
    fn fc_only_model_is_trivially_balanced() {
        let m = autohet_dnn::ModelBuilder::new("fc", autohet_dnn::Dataset::Mnist)
            .fc(64)
            .fc(10)
            .build();
        let r = pipeline_report(
            &m,
            &[XbarShape::square(64), XbarShape::square(64)],
            &AccelConfig::default(),
        );
        // FC stages are single presentations; times differ only via
        // crossbar-grid geometry.
        assert!(r.bottleneck_ns / r.stage_ns.iter().cloned().fold(f64::MAX, f64::min) < 1.5);
    }
}
