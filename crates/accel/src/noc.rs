//! Network-on-chip (inter-tile interconnect) model.
//!
//! The paper's platform (MNSIM) and the architectures it builds on (ISAAC,
//! PRIME) connect tiles with a 2-D mesh NoC; activations produced by layer
//! `k`'s tiles must travel to layer `k+1`'s tiles every inference. This
//! module adds that substrate:
//!
//! - tiles are placed on a square mesh in allocation order (row-major),
//! - traffic between consecutive layers is the output feature map
//!   (`Cout · out²` bytes at 8-bit activations), fanned out from each
//!   producer tile to every consumer tile,
//! - routes are XY (dimension-ordered); cost is hops × bytes.
//!
//! The evaluator folds the resulting energy and latency into the report
//! when [`crate::AccelConfig::model_noc`] is enabled. Communication is a
//! second-order term next to ADC leakage — which is why the paper (and
//! our default) can omit it — but it penalizes strategies that scatter a
//! layer across many tiles, and the tests pin that behaviour.

use crate::alloc::Allocation;
use autohet_dnn::Model;
use serde::{Deserialize, Serialize};

/// NoC cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocParams {
    /// Energy per byte per hop [nJ].
    pub e_hop_byte: f64,
    /// Router+link traversal time per hop [ns] (per flit, fully pipelined
    /// per transfer: latency counts worst-case route hops once per layer
    /// transfer plus a per-byte serialization term).
    pub t_hop: f64,
    /// Link bandwidth [bytes/ns].
    pub bytes_per_ns: f64,
}

impl Default for NocParams {
    fn default() -> Self {
        NocParams {
            e_hop_byte: 1.0e-3,
            t_hop: 1.0,
            bytes_per_ns: 32.0,
        }
    }
}

/// Mesh placement of an allocation's tiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshPlacement {
    /// Mesh side length (⌈√tiles⌉).
    pub side: usize,
    /// `(x, y)` per tile, indexed like `Allocation::tiles`.
    pub coords: Vec<(usize, usize)>,
}

/// Place tiles row-major on the smallest square mesh that fits them.
pub fn place_row_major(n_tiles: usize) -> MeshPlacement {
    let side = (n_tiles as f64).sqrt().ceil() as usize;
    let coords = (0..n_tiles)
        .map(|i| (i % side.max(1), i / side.max(1)))
        .collect();
    MeshPlacement { side, coords }
}

/// Manhattan (XY-route) hop count between two mesh coordinates.
pub fn hops(a: (usize, usize), b: (usize, usize)) -> usize {
    a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
}

/// Aggregate NoC traffic report for one inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocReport {
    /// Total byte-hops moved.
    pub byte_hops: f64,
    /// NoC energy [nJ].
    pub energy_nj: f64,
    /// NoC latency added to the inference [ns].
    pub latency_ns: f64,
}

/// Evaluate inter-layer traffic for `model` under `alloc`.
///
/// Layer `k`'s activations (`Cout · out²` bytes) leave its tiles and enter
/// layer `k+1`'s tiles; bytes are split evenly among producer tiles and
/// broadcast to every consumer tile (each consumer holds a slice of the
/// next layer's weights and needs the full activation vector).
pub fn evaluate_noc(model: &Model, alloc: &Allocation, p: &NocParams) -> NocReport {
    let placement = place_row_major(alloc.tiles.len());
    // Tiles per layer (post-sharing, a tile may host several layers).
    let mut tiles_of_layer: Vec<Vec<usize>> = vec![Vec::new(); model.layers.len()];
    for (ti, t) in alloc.tiles.iter().enumerate() {
        for s in &t.occupants {
            tiles_of_layer[s.layer_index].push(ti);
        }
    }

    let mut byte_hops = 0.0;
    let mut latency_ns = 0.0;
    for k in 0..model.layers.len().saturating_sub(1) {
        let producers = &tiles_of_layer[k];
        let consumers = &tiles_of_layer[k + 1];
        if producers.is_empty() || consumers.is_empty() {
            continue;
        }
        let layer = &model.layers[k];
        let bytes = (layer.out_channels * layer.presentations()) as f64;
        let per_producer = bytes / producers.len() as f64;
        let mut worst_hops = 0usize;
        for &pt in producers {
            for &ct in consumers {
                let h = hops(placement.coords[pt], placement.coords[ct]);
                byte_hops += per_producer * h as f64;
                worst_hops = worst_hops.max(h);
            }
        }
        // Transfer latency: route setup over the longest path plus
        // serialization of the full activation map over the link.
        latency_ns += worst_hops as f64 * p.t_hop + bytes / p.bytes_per_ns;
    }

    NocReport {
        byte_hops,
        energy_nj: byte_hops * p.e_hop_byte,
        latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate_tile_based;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    #[test]
    fn placement_is_compact_and_unique() {
        let p = place_row_major(10);
        assert_eq!(p.side, 4);
        assert_eq!(p.coords.len(), 10);
        let mut seen = std::collections::HashSet::new();
        for &c in &p.coords {
            assert!(c.0 < p.side && c.1 < p.side);
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn hops_is_manhattan() {
        assert_eq!(hops((0, 0), (0, 0)), 0);
        assert_eq!(hops((0, 0), (3, 2)), 5);
        assert_eq!(hops((3, 2), (0, 0)), 5);
    }

    #[test]
    fn scattering_a_model_over_small_crossbars_costs_more_noc() {
        // More tiles ⇒ longer routes ⇒ more byte-hops for the same model.
        let m = zoo::alexnet();
        let p = NocParams::default();
        let small = allocate_tile_based(&m, &vec![XbarShape::square(32); m.layers.len()], 4);
        let large = allocate_tile_based(&m, &vec![XbarShape::square(512); m.layers.len()], 4);
        let rs = evaluate_noc(&m, &small, &p);
        let rl = evaluate_noc(&m, &large, &p);
        assert!(
            rs.byte_hops > rl.byte_hops,
            "{} vs {}",
            rs.byte_hops,
            rl.byte_hops
        );
        assert!(rs.energy_nj > rl.energy_nj);
    }

    #[test]
    fn traffic_scales_with_feature_map_bytes() {
        // LeNet (tiny maps) moves far fewer bytes than VGG16.
        let p = NocParams::default();
        let lenet = zoo::lenet5();
        let vgg = zoo::vgg16();
        let shape = XbarShape::square(128);
        let al = allocate_tile_based(&lenet, &vec![shape; lenet.layers.len()], 4);
        let av = allocate_tile_based(&vgg, &vec![shape; vgg.layers.len()], 4);
        let rl = evaluate_noc(&lenet, &al, &p);
        let rv = evaluate_noc(&vgg, &av, &p);
        assert!(rv.byte_hops > 10.0 * rl.byte_hops);
    }

    #[test]
    fn single_tile_model_has_zero_hops_but_serialization_latency() {
        let m = zoo::micro_cnn();
        let alloc = allocate_tile_based(&m, &vec![XbarShape::square(512); m.layers.len()], 32);
        // Everything fits one tile per layer; co-located tiles still pay
        // serialization but some routes may be zero-hop.
        let r = evaluate_noc(&m, &alloc, &NocParams::default());
        assert!(r.latency_ns > 0.0);
        assert!(r.byte_hops >= 0.0);
    }

    #[test]
    fn noc_energy_is_linear_in_hop_cost() {
        let m = zoo::micro_cnn();
        let alloc = allocate_tile_based(&m, &vec![XbarShape::square(64); m.layers.len()], 4);
        let mut p = NocParams::default();
        let e1 = evaluate_noc(&m, &alloc, &p).energy_nj;
        p.e_hop_byte *= 3.0;
        let e3 = evaluate_noc(&m, &alloc, &p).energy_nj;
        assert!((e3 / e1 - 3.0).abs() < 1e-9);
    }
}
