//! Whole-model evaluation: the hardware feedback loop of Fig. 6.
//!
//! Given a model and a per-layer crossbar strategy, [`evaluate`] performs
//! allocation (tile-based, optionally followed by Algorithm 1 sharing) and
//! produces every metric the paper reports:
//!
//! - **Crossbar utilization** `U`: weight-holding cells over *allocated*
//!   cells (so tile round-up waste and tile-sharing gains both show up, as
//!   in Figs. 4, 9b, 10).
//! - **Energy** `E` [nJ]: per-layer dynamic activity plus provisioned-
//!   hardware leakage over the inference (Fig. 9c, 10).
//! - **Latency** [ns] and **area** [µm²] (Table 5).
//! - **RUE** `= U[%] / E[nJ]` — the paper's joint metric (§2.2.1).

use crate::alloc::{allocate_tile_based, Allocation, LayerPlacement};
use crate::hierarchy::AccelConfig;
use crate::tile_shared::{apply_tile_sharing, SharingReport};
use autohet_dnn::{Layer, Model};
use autohet_xbar::energy::{layer_energy, static_power, LayerEnergy};
use autohet_xbar::latency::layer_latency_ns;
use autohet_xbar::utilization::Footprint;
use autohet_xbar::{area, CostParams, XbarShape};
use serde::{Deserialize, Serialize};

/// Per-layer slice of an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer index within the model.
    pub layer_index: usize,
    /// Assigned crossbar shape.
    pub shape: XbarShape,
    /// Crossbars occupied by the layer.
    pub occupied_xbars: u64,
    /// Tiles granted before sharing.
    pub tiles: u64,
    /// Eq. 4 crossbar-level utilization.
    pub mapping_utilization: f64,
    /// Latency of this layer [ns].
    pub latency_ns: f64,
    /// Dynamic energy of this layer [nJ] (leakage is accounted globally).
    pub dynamic_nj: f64,
}

/// Aggregated evaluation of one (model, strategy) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Model name.
    pub model_name: String,
    /// Per-layer details.
    pub layers: Vec<LayerReport>,
    /// Total crossbars occupied by weights.
    pub occupied_xbars: u64,
    /// Total crossbars allocated (after sharing, if enabled).
    pub allocated_xbars: u64,
    /// Total tiles allocated (after sharing, if enabled).
    pub tiles: u64,
    /// Tile-sharing outcome (None when sharing is disabled).
    pub sharing: Option<SharingReport>,
    /// Global crossbar utilization over allocated cells, in [0, 1].
    pub utilization: f64,
    /// Eq. 4 utilization over *occupied* crossbars only (no tile effects).
    pub mapping_utilization: f64,
    /// Itemized energy [nJ].
    pub energy: LayerEnergy,
    /// Total inference latency [ns] (includes NoC latency when modeled).
    pub latency_ns: f64,
    /// Total silicon area [µm²].
    pub area_um2: f64,
    /// Inter-tile traffic report (Some iff `AccelConfig::model_noc`).
    pub noc: Option<crate::noc::NocReport>,
}

impl EvalReport {
    /// Total energy [nJ], including NoC energy when modeled.
    pub fn energy_nj(&self) -> f64 {
        self.energy.total() + self.noc.map_or(0.0, |n| n.energy_nj)
    }

    /// Utilization as the percentage the paper plots.
    pub fn utilization_pct(&self) -> f64 {
        self.utilization * 100.0
    }

    /// The paper's Ratio of Utilization and Energy: `U[%] / E[nJ]`.
    pub fn rue(&self) -> f64 {
        self.utilization_pct() / self.energy_nj()
    }
}

/// Evaluate `model` under `strategy` on an accelerator configured by `cfg`.
///
/// ```
/// use autohet_accel::{evaluate, AccelConfig};
/// use autohet_xbar::XbarShape;
///
/// let model = autohet_dnn::zoo::vgg16();
/// let strategy = vec![XbarShape::new(576, 512); model.layers.len()];
/// let report = evaluate(&model, &strategy, &AccelConfig::default().with_tile_sharing());
/// assert!(report.utilization > 0.0 && report.utilization <= 1.0);
/// assert!(report.rue() > 0.0);
/// ```
pub fn evaluate(model: &Model, strategy: &[XbarShape], cfg: &AccelConfig) -> EvalReport {
    let mut alloc = allocate_tile_based(model, strategy, cfg.pes_per_tile);
    let sharing = cfg.tile_shared.then(|| apply_tile_sharing(&mut alloc));
    evaluate_allocation(model, &alloc, sharing, cfg)
}

/// Per-(layer, shape) cost slice: the quantities that depend only on the
/// layer and its assigned crossbar shape, independent of the rest of the
/// strategy — the memoizable core of [`evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Latency of one inference through the layer [ns].
    pub latency_ns: f64,
    /// Dynamic energy of the layer [nJ] (leakage is charged globally).
    pub dynamic: LayerEnergy,
}

/// Compute the cost slice of one layer mapped as `fp`. Pure in
/// `(layer, fp, p)`, so [`crate::engine::EvalEngine`] caches it per
/// `(layer, shape)` pair.
pub fn layer_cost(layer: &Layer, fp: &Footprint, p: &CostParams) -> LayerCost {
    LayerCost {
        latency_ns: layer_latency_ns(layer, fp, p),
        // Leakage handled globally in [`compose_report`]: charge zero
        // allocation here.
        dynamic: layer_energy(layer, fp, 0, 0.0, p),
    }
}

/// Assemble a full [`EvalReport`] from an allocation plus per-layer cost
/// slices (`costs` indexed like `alloc.per_layer`). Both the direct
/// [`evaluate`] path and the memoized [`crate::engine::EvalEngine`] run
/// through this single aggregation, which accumulates floats in a fixed
/// order — cached evaluation is therefore bit-identical to uncached by
/// construction.
pub(crate) fn compose_report(
    model: &Model,
    alloc: &Allocation,
    sharing: Option<SharingReport>,
    cfg: &AccelConfig,
    costs: &[LayerCost],
) -> EvalReport {
    debug_assert_eq!(costs.len(), alloc.per_layer.len());
    let p = &cfg.cost;

    // Latency first: leakage charges hardware for the whole inference.
    let mut latency_ns = 0.0;
    for c in costs {
        latency_ns += c.latency_ns;
    }

    // Inter-tile traffic (optional): its latency extends the window the
    // provisioned hardware leaks over.
    let noc = cfg
        .model_noc
        .then(|| crate::noc::evaluate_noc(model, alloc, &cfg.noc));
    if let Some(n) = &noc {
        latency_ns += n.latency_ns;
    }

    // Dynamic energy per layer.
    let mut energy = LayerEnergy::default();
    let mut reports = Vec::with_capacity(costs.len());
    for (pl, c) in alloc.per_layer.iter().zip(costs) {
        energy.accumulate(&c.dynamic);
        reports.push(LayerReport {
            layer_index: pl.layer_index,
            shape: pl.shape,
            occupied_xbars: pl.footprint.total_xbars(),
            tiles: pl.tiles,
            mapping_utilization: pl.footprint.utilization(),
            latency_ns: c.latency_ns,
            dynamic_nj: c.dynamic.total(),
        });
    }

    // Leakage and area from the (possibly shared) tile population.
    let mut area_um2 = area::tile_overhead_area(alloc.tiles.len() as u64, p);
    for (shape, n_tiles) in alloc.tiles_by_shape() {
        let allocated = n_tiles * cfg.pes_per_tile as u64;
        energy.leakage += static_power(allocated, shape, p) * latency_ns * 1e-9;
        area_um2 += area::crossbar_area(allocated, shape, p);
    }

    // Utilizations.
    let used_cells: u64 = alloc
        .per_layer
        .iter()
        .map(|pl| pl.footprint.used_cells)
        .sum();
    let provisioned: u64 = alloc
        .per_layer
        .iter()
        .map(|pl| pl.footprint.provisioned_cells())
        .sum();
    let allocated_cells = alloc.allocated_cells();

    EvalReport {
        model_name: model.name.clone(),
        layers: reports,
        occupied_xbars: alloc.occupied_xbars(),
        allocated_xbars: alloc.allocated_xbars(),
        tiles: alloc.tiles.len() as u64,
        sharing,
        utilization: used_cells as f64 / allocated_cells as f64,
        mapping_utilization: used_cells as f64 / provisioned as f64,
        energy,
        latency_ns,
        area_um2,
        noc,
    }
}

fn evaluate_allocation(
    model: &Model,
    alloc: &Allocation,
    sharing: Option<SharingReport>,
    cfg: &AccelConfig,
) -> EvalReport {
    let costs: Vec<LayerCost> = alloc
        .per_layer
        .iter()
        .map(|pl| layer_cost(&model.layers[pl.layer_index], &pl.footprint, &cfg.cost))
        .collect();
    compose_report(model, alloc, sharing, cfg, &costs)
}

/// Convenience: evaluate a homogeneous accelerator (every layer on the
/// same crossbar shape) — the paper's baselines.
pub fn evaluate_homogeneous(model: &Model, shape: XbarShape, cfg: &AccelConfig) -> EvalReport {
    evaluate(model, &vec![shape; model.layers.len()], cfg)
}

/// Re-export used by sweeps that need direct placement access.
pub fn placements(model: &Model, strategy: &[XbarShape], capacity: u32) -> Vec<LayerPlacement> {
    allocate_tile_based(model, strategy, capacity).per_layer
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;
    use autohet_xbar::geometry::SQUARE_CANDIDATES;

    fn cfg() -> AccelConfig {
        AccelConfig::default()
    }

    #[test]
    fn utilization_bounds_and_ordering() {
        let m = zoo::vgg16();
        for shape in SQUARE_CANDIDATES {
            let r = evaluate_homogeneous(&m, shape, &cfg());
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            // Allocation utilization can never beat mapping utilization.
            assert!(r.utilization <= r.mapping_utilization + 1e-12);
        }
    }

    #[test]
    fn small_crossbars_use_better_but_burn_more_energy() {
        // The paper's central tension (§2.2.3 / Fig. 9): 32×32 wins
        // utilization, 512×512 wins energy.
        let m = zoo::vgg16();
        let small = evaluate_homogeneous(&m, XbarShape::square(32), &cfg());
        let large = evaluate_homogeneous(&m, XbarShape::square(512), &cfg());
        assert!(small.mapping_utilization > large.mapping_utilization);
        assert!(small.energy_nj() > large.energy_nj());
        assert!(small.area_um2 > large.area_um2);
    }

    #[test]
    fn tile_sharing_improves_utilization_and_never_energy_hurts() {
        let m = zoo::alexnet();
        let strategy = vec![XbarShape::square(64); m.layers.len()];
        let base = evaluate(&m, &strategy, &cfg());
        let shared = evaluate(&m, &strategy, &cfg().with_tile_sharing());
        assert!(shared.tiles <= base.tiles);
        assert!(shared.utilization >= base.utilization - 1e-12);
        assert!(shared.energy_nj() <= base.energy_nj() + 1e-9);
        assert!(shared.rue() >= base.rue() - 1e-15);
        assert!(shared.sharing.is_some());
        assert!(base.sharing.is_none());
    }

    #[test]
    fn latency_is_sum_of_layers() {
        let m = zoo::alexnet();
        let r = evaluate_homogeneous(&m, XbarShape::square(128), &cfg());
        let s: f64 = r.layers.iter().map(|l| l.latency_ns).sum();
        assert!((r.latency_ns - s).abs() < 1e-6);
    }

    #[test]
    fn rue_is_percent_over_nj() {
        let m = zoo::micro_cnn();
        let r = evaluate_homogeneous(&m, XbarShape::square(64), &cfg());
        assert!((r.rue() - r.utilization * 100.0 / r.energy.total()).abs() < 1e-12);
    }

    #[test]
    fn paper_fig5_tile_level_utilization_is_27_over_128() {
        // Fig. 5: the 108×128 weight block on a 128×128 crossbar in a
        // 4-crossbar tile utilizes 27/128 of the granted cells.
        let m = autohet_dnn::ModelBuilder::new("fig5", autohet_dnn::Dataset::Cifar10)
            .conv_spec(12, 3, 1, 1) // feeder layer to set Cin=12
            .conv_spec(128, 3, 1, 1)
            .build();
        let r = evaluate(
            &m,
            &[XbarShape::square(128), XbarShape::square(128)],
            &cfg(),
        );
        let l1 = &r.layers[1];
        assert_eq!(l1.occupied_xbars, 1);
        assert_eq!(l1.tiles, 1);
        // Allocation-level utilization for that layer alone:
        let pl = placements(&m, &[XbarShape::square(128), XbarShape::square(128)], 4);
        let u = pl[1].footprint.utilization_over(pl[1].tiles * 4);
        assert!((u - 27.0 / 128.0).abs() < 1e-12, "got {u}");
    }

    #[test]
    fn vgg16_magnitudes_are_in_paper_range() {
        // Shape calibration (EXPERIMENTS.md): VGG16 latency ~2-3e6 ns and
        // RUE within a few orders of the paper's 1e-5 scale.
        let m = zoo::vgg16();
        let r = evaluate_homogeneous(&m, XbarShape::square(512), &cfg());
        assert!(
            r.latency_ns > 1e6 && r.latency_ns < 1e7,
            "latency {}",
            r.latency_ns
        );
        assert!(
            r.energy_nj() > 1e5 && r.energy_nj() < 1e9,
            "energy {}",
            r.energy_nj()
        );
    }

    #[test]
    fn resnet152_evaluates() {
        let m = zoo::resnet152();
        let r = evaluate_homogeneous(&m, XbarShape::square(256), &cfg());
        assert_eq!(r.layers.len(), 156);
        assert!(r.energy_nj() > 0.0 && r.latency_ns > 0.0 && r.area_um2 > 0.0);
    }

    #[test]
    fn heterogeneous_strategy_mixes_shapes() {
        let m = zoo::micro_cnn();
        let strategy = vec![
            XbarShape::square(32),
            XbarShape::new(36, 32),
            XbarShape::square(64),
            XbarShape::new(72, 64),
        ];
        let r = evaluate(&m, &strategy, &cfg());
        let shapes: Vec<XbarShape> = r.layers.iter().map(|l| l.shape).collect();
        assert_eq!(shapes, strategy);
    }
}
