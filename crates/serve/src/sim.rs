//! The discrete-event serving core and its single-threaded driver.
//!
//! The simulation is expressed as a recurrence rather than an explicit
//! event heap: [`SimCore::next_batch`] is called with the free time of
//! the earliest-free replica and returns the next dispatched batch,
//! internally ingesting every arrival (admission or shedding) that
//! precedes the dispatch. Because free times are non-decreasing across
//! calls, candidate dispatch times only improve as arrivals are ingested,
//! and ingestion is gated by the current best candidate, the resulting
//! event order is causally consistent — and identical no matter whether
//! the recurrence is evaluated by one thread ([`run_serving`]) or by one
//! worker per replica ([`run_serving_parallel`](crate::parallel)).

use crate::failure::FailurePlan;
use crate::ready::ReplicaPool;
use crate::report::{assemble_report, ServingReport};
use crate::workload::{merge_arrivals, Arrival, TenantSpec, Workload};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Online replica-health monitoring and drift recovery — the serving half
/// of the lifetime-resilience layer (DESIGN.md §12).
///
/// With a `HealthSpec` configured, every replica carries a drift clock:
/// the probability that a served request returns a corrupted result grows
/// linearly with the time since the replica was last recalibrated
/// (`err_ppm_per_ms`, capped at `err_cap_ppm`). Per-request error
/// decisions are keyed, order-free rolls on `(seed, replica, batch index,
/// position)`, so both execution drivers agree bit for bit.
///
/// The monitor folds each completed batch's error fraction into a
/// per-replica EWMA (`ewma_alpha_milli`); when the EWMA reaches
/// `trip_milli` the circuit breaker trips and the replica goes through
/// the online recovery cascade *while serving sheds to the healthy
/// replicas*: up to `max_retries` recalibration attempts (each pausing
/// the replica `recalibrate_ns` plus an exponentially growing backoff),
/// then — if `remap` is set — a remap escalation (`remap_ns`) that always
/// succeeds. A successful recovery resets the drift clock and the EWMA; a
/// failed one (recalibrate-only arm out of retries) only re-arms the
/// breaker, so drift keeps eroding accuracy.
///
/// All fields are integers so [`ServeConfig`] stays `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSpec {
    /// Per-request error probability growth: ppm per millisecond since
    /// the replica's last successful recalibration.
    pub err_ppm_per_ms: u64,
    /// Ceiling on the per-request error probability [ppm].
    pub err_cap_ppm: u64,
    /// EWMA weight on the newest batch's error fraction (1..=1000).
    pub ewma_alpha_milli: u64,
    /// Circuit-breaker threshold on the EWMA [milli]; a value above 1000
    /// can never be reached, disabling recovery entirely.
    pub trip_milli: u64,
    /// Replica pause per recalibration attempt [ns].
    pub recalibrate_ns: u64,
    /// Per-attempt recalibration success probability [milli].
    pub recal_success_milli: u64,
    /// Bounded recalibration attempts per trip.
    pub max_retries: u32,
    /// Extra pause before each attempt [ns], doubling per attempt.
    pub backoff_base_ns: u64,
    /// Replica pause for the remap escalation [ns].
    pub remap_ns: u64,
    /// Escalate to a remap (always succeeds) when retries are exhausted.
    pub remap: bool,
    /// Seed of the error/recovery rolls (independent of workload seed).
    pub seed: u64,
}

impl Default for HealthSpec {
    fn default() -> Self {
        HealthSpec {
            err_ppm_per_ms: 2_000,
            err_cap_ppm: 500_000,
            ewma_alpha_milli: 250,
            trip_milli: 60,
            recalibrate_ns: 300_000,
            recal_success_milli: 800,
            max_retries: 3,
            backoff_base_ns: 100_000,
            remap_ns: 1_500_000,
            remap: true,
            seed: 0x4EA1,
        }
    }
}

impl HealthSpec {
    pub(crate) fn validate(&self) {
        assert!(
            (1..=1000).contains(&self.ewma_alpha_milli),
            "EWMA weight must be in 1..=1000 milli"
        );
        assert!(
            self.recal_success_milli <= 1000,
            "success probability above 1"
        );
        assert!(self.err_cap_ppm <= 1_000_000, "error cap above 1");
    }
}

/// Per-replica online health state (all integer, recurrence-ordered, so
/// both execution drivers evolve it identically).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ReplicaHealth {
    /// Instant of the last successful recalibration/remap [ns].
    pub last_recal_ns: u64,
    /// Error-rate EWMA [milli].
    pub ewma_milli: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Successful recalibrations.
    pub recals: u64,
    /// Remap escalations.
    pub remaps: u64,
    /// Total time spent paused in recovery [ns].
    pub recovery_ns: u64,
}

/// What happened in one replica-health transition (see [`HealthEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthEventKind {
    /// The error-EWMA circuit breaker tripped.
    Trip,
    /// An online recalibration attempt succeeded.
    Recal,
    /// Recovery escalated to a remap (always succeeds).
    Remap,
    /// Recalibration ran out of retries with no remap escalation.
    RecoveryFailed,
}

impl HealthEventKind {
    /// Lower-case label used by exporters and alert annotations.
    pub fn label(&self) -> &'static str {
        match self {
            HealthEventKind::Trip => "trip",
            HealthEventKind::Recal => "recal",
            HealthEventKind::Remap => "remap",
            HealthEventKind::RecoveryFailed => "recovery_failed",
        }
    }
}

/// One timestamped replica-health transition. Recorded inside
/// [`SimCore::apply_health`] — which both execution drivers call at the
/// same point of the scheduling recurrence, under the lock — so the
/// event sequence is bit-identical across the single-threaded and
/// parallel drivers. Trips carry the batch completion instant; recovery
/// outcomes carry the instant the replica came back (or gave up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Simulated instant of the transition [ns].
    pub t_ns: u64,
    /// Replica the transition happened on.
    pub replica: usize,
    /// Transition kind.
    pub kind: HealthEventKind,
}

/// Keyed order-free roll (splitmix64-style), the same discipline as the
/// crossbar fault sampler: a pure function of its keys, so error and
/// recovery decisions do not depend on evaluation order.
fn health_roll(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scheduler knobs for one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of identical accelerator instances.
    pub replicas: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before its tenant
    /// becomes dispatchable regardless of batch fill [ns].
    pub batch_window_ns: u64,
    /// Per-tenant bound on waiting requests; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Instance failure/recovery process; `None` models ideal replicas.
    pub failures: Option<crate::failure::FailureSpec>,
    /// A request interrupted by an instance failure is retried on a
    /// surviving replica only while its age is within this deadline;
    /// older interrupted requests are dropped as failed [ns].
    pub retry_deadline_ns: u64,
    /// Number of equal time windows over `[0, horizon)` to aggregate
    /// per-window telemetry into ([`WindowStats`] on the report); 0
    /// disables window telemetry. The windows are part of the simulated
    /// accounting (not the tracer), so the rest of the report is
    /// unaffected by this knob.
    ///
    /// [`WindowStats`]: crate::report::WindowStats
    #[serde(default)]
    pub telemetry_windows: usize,
    /// Online replica-health monitoring and drift recovery; `None`
    /// models drift-free replicas (no errors, no breaker).
    #[serde(default)]
    pub health: Option<HealthSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 1,
            max_batch: 8,
            batch_window_ns: 1_000_000,
            queue_depth: 64,
            failures: None,
            retry_deadline_ns: 100_000_000,
            telemetry_windows: 0,
            health: None,
        }
    }
}

impl ServeConfig {
    pub(crate) fn validate(&self) {
        assert!(self.replicas >= 1, "need at least one replica");
        assert!(self.max_batch >= 1, "need at least one request per batch");
        assert!(self.queue_depth >= 1, "need queue space for one request");
        if let Some(f) = &self.failures {
            f.validate();
        }
        if let Some(h) = &self.health {
            h.validate();
        }
    }

    /// The outage schedule this configuration implies for `wl`.
    pub(crate) fn failure_plan(&self, wl: &Workload) -> FailurePlan {
        match &self.failures {
            Some(spec) => FailurePlan::generate(spec, self.replicas, wl.horizon_ns),
            None => FailurePlan::none(self.replicas),
        }
    }
}

/// One queued (or in-flight) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Req {
    /// Original arrival timestamp [ns] — latency and retry deadlines are
    /// always measured from here, across any number of retries.
    pub arrival_ns: u64,
    /// Times this request was returned to its queue by a killed batch.
    pub retries: u32,
}

/// A batch the scheduler decided to dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BatchJob {
    /// Dispatch sequence number (0-based, gap-free).
    pub index: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Dispatch timestamp [ns].
    pub start_ns: u64,
    /// Requests in the batch, FIFO order by arrival.
    pub requests: Vec<Req>,
}

/// A completed batch with everything report assembly needs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BatchResult {
    pub index: usize,
    pub tenant: usize,
    pub completion_ns: u64,
    pub requests: Vec<Req>,
    /// Per-request drift-error flags, parallel to `requests`; empty when
    /// no request in the batch errored (the canonical all-clean encoding,
    /// so reports are identical whether health modeling is off or merely
    /// produced no errors).
    pub errored: Vec<bool>,
    pub energy_nj: f64,
    /// Busy replica-time the batch consumed (dispatch → completion) —
    /// the "attained service" the fairness index aggregates.
    pub service_ns: u64,
}

/// Queue/admission state shared by both execution modes.
pub(crate) struct SimCore {
    arrivals: Vec<Arrival>,
    cursor: usize,
    window_ns: u64,
    max_batch: usize,
    depth_bound: usize,
    queues: Vec<VecDeque<Req>>,
    next_index: usize,
    pub submitted: Vec<u64>,
    pub rejected: Vec<u64>,
    pub retried: Vec<u64>,
    pub failed: Vec<u64>,
    pub killed_batches: Vec<u64>,
    pub peak_depth: Vec<usize>,
    depth_area: Vec<u128>,
    last_event: Vec<u64>,
    // Per-window telemetry (empty when cfg.telemetry_windows == 0). The
    // accumulators are maintained inside the scheduling recurrence, so
    // both execution modes produce identical window accounting.
    win_len: u64,
    total_queued: usize,
    pub win_submitted: Vec<u64>,
    pub win_rejected: Vec<u64>,
    pub win_depth_area: Vec<u128>,
    pub win_peak_depth: Vec<usize>,
    // Online health monitoring (inert when `health_spec` is `None`). The
    // state is per replica but lives here so both execution modes mutate
    // it at the same point of the scheduling recurrence, under the lock.
    health_spec: Option<HealthSpec>,
    pub health: Vec<ReplicaHealth>,
    /// Timestamped health transitions in recurrence order (empty without
    /// a `HealthSpec` or when the breaker never trips).
    pub health_events: Vec<HealthEvent>,
}

impl SimCore {
    pub fn new(
        n_tenants: usize,
        arrivals: Vec<Arrival>,
        cfg: &ServeConfig,
        horizon_ns: u64,
    ) -> Self {
        let n_win = cfg.telemetry_windows;
        SimCore {
            arrivals,
            cursor: 0,
            window_ns: cfg.batch_window_ns,
            max_batch: cfg.max_batch,
            depth_bound: cfg.queue_depth,
            queues: vec![VecDeque::new(); n_tenants],
            next_index: 0,
            submitted: vec![0; n_tenants],
            rejected: vec![0; n_tenants],
            retried: vec![0; n_tenants],
            failed: vec![0; n_tenants],
            killed_batches: vec![0; n_tenants],
            peak_depth: vec![0; n_tenants],
            depth_area: vec![0; n_tenants],
            last_event: vec![0; n_tenants],
            win_len: if n_win == 0 {
                0
            } else {
                (horizon_ns / n_win as u64).max(1)
            },
            total_queued: 0,
            win_submitted: vec![0; n_win],
            win_rejected: vec![0; n_win],
            win_depth_area: vec![0; n_win],
            win_peak_depth: vec![0; n_win],
            health_spec: cfg.health,
            health: vec![ReplicaHealth::default(); cfg.replicas],
            health_events: Vec::new(),
        }
    }

    /// Health bookkeeping for a batch completing on `replica` at
    /// `completion_ns`: decide the per-request drift errors, fold the
    /// batch error fraction into the replica's EWMA, and — if the circuit
    /// breaker trips — run the bounded recalibrate → remap recovery.
    /// Returns the per-request error flags (empty when all clean) and the
    /// instant the replica is next free (≥ `completion_ns`; recovery
    /// pauses extend it, shedding load to the healthy replicas).
    ///
    /// Everything here is a pure function of the spec and this replica's
    /// own completion sequence (error rolls are keyed on batch index and
    /// position, recovery rolls on the trip count), so both execution
    /// drivers evolve identical health state.
    pub fn apply_health(
        &mut self,
        replica: usize,
        job: &BatchJob,
        completion_ns: u64,
    ) -> (Vec<bool>, u64) {
        let Some(spec) = self.health_spec else {
            return (Vec::new(), completion_ns);
        };
        let h = &mut self.health[replica];
        let elapsed_ns = job.start_ns.saturating_sub(h.last_recal_ns);
        let p_ppm = ((spec.err_ppm_per_ms as u128 * elapsed_ns as u128) / 1_000_000)
            .min(spec.err_cap_ppm as u128) as u64;
        let mut errored = vec![false; job.requests.len()];
        let mut errors = 0u64;
        if p_ppm > 0 {
            for (i, e) in errored.iter_mut().enumerate() {
                if health_roll(spec.seed, replica as u64, job.index as u64, i as u64) % 1_000_000
                    < p_ppm
                {
                    *e = true;
                    errors += 1;
                }
            }
        }
        if errors == 0 {
            errored = Vec::new();
        }
        let batch_milli = errors * 1000 / job.requests.len().max(1) as u64;
        h.ewma_milli = (spec.ewma_alpha_milli * batch_milli
            + (1000 - spec.ewma_alpha_milli) * h.ewma_milli)
            / 1000;
        if h.ewma_milli < spec.trip_milli {
            return (errored, completion_ns);
        }
        // Circuit breaker: take the replica out of service and recover.
        h.trips += 1;
        self.health_events.push(HealthEvent {
            t_ns: completion_ns,
            replica,
            kind: HealthEventKind::Trip,
        });
        let mut t = completion_ns;
        for attempt in 0..spec.max_retries {
            t += spec.recalibrate_ns + (spec.backoff_base_ns << attempt.min(20));
            let roll = health_roll(
                spec.seed ^ 0x5EA1ED,
                replica as u64,
                h.trips,
                attempt as u64,
            ) % 1000;
            if roll < spec.recal_success_milli {
                h.recals += 1;
                h.last_recal_ns = t;
                h.ewma_milli = 0;
                h.recovery_ns += t - completion_ns;
                self.health_events.push(HealthEvent {
                    t_ns: t,
                    replica,
                    kind: HealthEventKind::Recal,
                });
                return (errored, t);
            }
        }
        if spec.remap {
            t += spec.remap_ns;
            h.remaps += 1;
            h.last_recal_ns = t;
            h.ewma_milli = 0;
            h.recovery_ns += t - completion_ns;
            self.health_events.push(HealthEvent {
                t_ns: t,
                replica,
                kind: HealthEventKind::Remap,
            });
            return (errored, t);
        }
        // Out of retries with no remap escalation: the breaker re-arms
        // but the drift clock keeps running — accuracy keeps eroding.
        h.ewma_milli = 0;
        h.recovery_ns += t - completion_ns;
        self.health_events.push(HealthEvent {
            t_ns: t,
            replica,
            kind: HealthEventKind::RecoveryFailed,
        });
        (errored, t)
    }

    /// Telemetry window containing instant `t` (the last window absorbs
    /// everything past the nominal horizon — the drain tail).
    pub fn window_of(&self, t_ns: u64) -> usize {
        debug_assert!(self.win_len > 0);
        ((t_ns / self.win_len) as usize).min(self.win_submitted.len() - 1)
    }

    /// Nominal length of one telemetry window [ns] (0 when disabled).
    pub fn window_len_ns(&self) -> u64 {
        self.win_len
    }

    /// Add `depth × dt` of aggregate queue depth over `[from, to)` to the
    /// per-window depth integrals, splitting across window boundaries.
    fn add_depth_span(&mut self, depth: u128, from: u64, to: u64) {
        if self.win_submitted.is_empty() || to <= from {
            return;
        }
        let last = self.win_submitted.len() - 1;
        let mut t = from;
        while t < to {
            let w = self.window_of(t);
            let end = if w == last {
                to
            } else {
                ((w as u64 + 1) * self.win_len).min(to)
            };
            self.win_depth_area[w] += depth * (end - t) as u128;
            t = end;
        }
    }

    /// Record that the aggregate queued-request count changed at `t`.
    fn note_total_depth(&mut self, t_ns: u64) {
        if self.win_submitted.is_empty() {
            return;
        }
        let w = self.window_of(t_ns);
        if self.total_queued > self.win_peak_depth[w] {
            self.win_peak_depth[w] = self.total_queued;
        }
    }

    /// Earliest dispatch `(at, head_arrival, tenant)` for tenant `t`
    /// given the earliest replica free time, if `t` has queued work.
    fn candidate(&self, t: usize, free_ns: u64) -> Option<(u64, u64, usize)> {
        let q = &self.queues[t];
        let head = q.front()?.arrival_ns;
        let mut ready = head.saturating_add(self.window_ns);
        if q.len() >= self.max_batch {
            // The batch filled when its max_batch-th request arrived.
            ready = ready.min(q[self.max_batch - 1].arrival_ns);
        }
        Some((ready.max(free_ns), head, t))
    }

    /// Best dispatch over all tenants: min (time, head age, tenant id).
    fn best_candidate(&self, free_ns: u64) -> Option<(u64, u64, usize)> {
        (0..self.queues.len())
            .filter_map(|t| self.candidate(t, free_ns))
            .min()
    }

    /// Advance the time-weighted queue-depth integral for tenant `t` up
    /// to `now` (per-tenant event times are monotone).
    fn track_depth(&mut self, t: usize, now: u64) {
        let dt = now.saturating_sub(self.last_event[t]);
        let depth = self.queues[t].len() as u128;
        self.depth_area[t] += depth * dt as u128;
        let (from, to) = (self.last_event[t], now);
        self.add_depth_span(depth, from, to);
        self.last_event[t] = now;
    }

    /// Admit or shed one arrival.
    fn ingest(&mut self, a: Arrival) {
        self.submitted[a.tenant] += 1;
        if !self.win_submitted.is_empty() {
            let w = self.window_of(a.time_ns);
            self.win_submitted[w] += 1;
            if self.queues[a.tenant].len() >= self.depth_bound {
                self.win_rejected[w] += 1;
            }
        }
        if self.queues[a.tenant].len() >= self.depth_bound {
            self.rejected[a.tenant] += 1;
            return;
        }
        self.track_depth(a.tenant, a.time_ns);
        self.queues[a.tenant].push_back(Req {
            arrival_ns: a.time_ns,
            retries: 0,
        });
        self.total_queued += 1;
        self.note_total_depth(a.time_ns);
        let depth = self.queues[a.tenant].len();
        if depth > self.peak_depth[a.tenant] {
            self.peak_depth[a.tenant] = depth;
        }
    }

    /// Ingest arrivals up to the next dispatch and return its time without
    /// draining any queue — the failure-aware drivers use this to check
    /// replica availability *at the dispatch instant* before committing.
    /// A subsequent [`next_batch`](Self::next_batch) with the same
    /// `free_ns` returns exactly the peeked batch. Idempotent at
    /// exhaustion.
    pub fn peek_dispatch(&mut self, free_ns: u64) -> Option<u64> {
        loop {
            let best = self.best_candidate(free_ns);
            let next = self.arrivals.get(self.cursor).copied();
            match (best, next) {
                (None, None) => return None,
                (None, Some(a)) => {
                    self.cursor += 1;
                    self.ingest(a);
                }
                (Some((at, _, _)), next) => {
                    if let Some(a) = next {
                        // Arrivals at the dispatch instant join first.
                        if a.time_ns <= at {
                            self.cursor += 1;
                            self.ingest(a);
                            continue;
                        }
                    }
                    return Some(at);
                }
            }
        }
    }

    /// The scheduling recurrence: given the minimum replica free time,
    /// ingest arrivals up to the next dispatch and return that batch, or
    /// `None` once the workload is drained. Idempotent at exhaustion.
    pub fn next_batch(&mut self, free_ns: u64) -> Option<BatchJob> {
        self.peek_dispatch(free_ns)?;
        let (at, _, t) = self
            .best_candidate(free_ns)
            .expect("peeked dispatch vanished");
        let n = self.queues[t].len().min(self.max_batch);
        self.track_depth(t, at);
        let requests: Vec<Req> = self.queues[t].drain(..n).collect();
        self.total_queued -= n;
        let index = self.next_index;
        self.next_index += 1;
        Some(BatchJob {
            index,
            tenant: t,
            start_ns: at,
            requests,
        })
    }

    /// Return a killed batch's requests to the head of their queue (they
    /// are the oldest outstanding requests, so FIFO order by arrival is
    /// preserved): a request is retried while its age at `killed_ns` is
    /// within `deadline_ns`, and dropped as failed otherwise. Retried
    /// requests keep their original arrival time, so their eventual
    /// latency spans the failure.
    pub fn requeue(&mut self, job: BatchJob, killed_ns: u64, deadline_ns: u64) {
        let t = job.tenant;
        self.killed_batches[t] += 1;
        self.track_depth(t, killed_ns);
        for req in job.requests.into_iter().rev() {
            if killed_ns.saturating_sub(req.arrival_ns) <= deadline_ns {
                self.retried[t] += 1;
                self.queues[t].push_front(Req {
                    arrival_ns: req.arrival_ns,
                    retries: req.retries + 1,
                });
                self.total_queued += 1;
            } else {
                self.failed[t] += 1;
            }
        }
        self.note_total_depth(killed_ns);
        let depth = self.queues[t].len();
        if depth > self.peak_depth[t] {
            self.peak_depth[t] = depth;
        }
    }

    /// Mean waiting-queue depth for tenant `t` over `[0, makespan_ns]`.
    pub fn mean_depth(&self, t: usize, makespan_ns: u64) -> f64 {
        if makespan_ns == 0 {
            return 0.0;
        }
        self.depth_area[t] as f64 / makespan_ns as f64
    }
}

/// Turn a dispatched batch into its completed result.
pub(crate) fn finish_batch(
    spec: &TenantSpec,
    job: BatchJob,
    completion_ns: u64,
    errored: Vec<bool>,
) -> BatchResult {
    let n = job.requests.len();
    BatchResult {
        index: job.index,
        tenant: job.tenant,
        completion_ns,
        service_ns: completion_ns.saturating_sub(job.start_ns),
        requests: job.requests,
        errored,
        energy_nj: n as f64 * spec.deployment.energy_per_request_nj(),
    }
}

/// Run the serving simulation on a single thread.
///
/// Same (tenants, workload, config) ⇒ bit-identical [`ServingReport`].
///
/// With `cfg.failures` set, the loop additionally consults the replica
/// outage schedule at every step: a replica that is down at its would-be
/// dispatch instant fails over (its free time jumps to the recovery edge
/// and the turn passes to survivors), and a batch whose service window an
/// outage cuts short is killed at the failure edge, its requests retried
/// within the deadline or dropped as failed. Outages and service times
/// are both known at dispatch, so every batch's fate is resolved
/// synchronously — which is what keeps the multi-worker driver
/// bit-identical.
pub fn run_serving(tenants: &[TenantSpec], wl: &Workload, cfg: &ServeConfig) -> ServingReport {
    let _span = autohet_obs::trace::span("serve.run");
    cfg.validate();
    let plan = cfg.failure_plan(wl);
    let mut core = SimCore::new(
        tenants.len(),
        merge_arrivals(tenants, wl),
        cfg,
        wl.horizon_ns,
    );
    // Heap-backed replica free-list: O(log R) per update instead of the
    // old `argmin_replica` O(R) scan, with the scan's exact lowest-id
    // tie-break — decisions are unchanged bit for bit.
    let mut pool = ReplicaPool::new(cfg.replicas);
    let mut batches = Vec::new();
    loop {
        let (f, r) = pool.peek_min().expect("at least one replica");
        // Down at the earliest free instant: wait out the outage.
        if let Some(up) = plan.down_until(r, f) {
            pool.set_free(r, up);
            continue;
        }
        let Some(at) = core.peek_dispatch(f) else {
            break;
        };
        // Down at the dispatch instant: fail over without touching queues.
        if let Some(up) = plan.down_until(r, at) {
            pool.set_free(r, up);
            continue;
        }
        let job = core.next_batch(f).expect("peeked batch vanished");
        let spec = &tenants[job.tenant];
        let completion = job.start_ns + spec.deployment.service_ns(job.requests.len());
        match plan.outage_in(r, job.start_ns, completion) {
            Some(o) => {
                pool.set_free(r, o.up_ns);
                core.requeue(job, o.down_ns, cfg.retry_deadline_ns);
            }
            None => {
                let (errored, next_free) = core.apply_health(r, &job, completion);
                pool.set_free(r, next_free);
                batches.push(finish_batch(spec, job, completion, errored));
            }
        }
    }
    assemble_report(tenants, wl, cfg, &core, &batches, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn lenet_deployment() -> Deployment {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        Deployment::compile("lenet", &m, &strategy, &AccelConfig::default())
    }

    /// One tenant at `load` × single-replica capacity.
    fn tenant_at_load(load: f64, slo_mult: f64) -> TenantSpec {
        let d = lenet_deployment();
        let rate = load * d.max_rate_rps();
        let slo = (slo_mult * d.pipeline.fill_ns) as u64;
        TenantSpec::new("lenet", d, rate, slo.max(1))
    }

    fn wl(seed: u64, n_requests: f64, rate_rps: f64) -> Workload {
        Workload {
            seed,
            horizon_ns: (n_requests / rate_rps * 1e9) as u64,
        }
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(42, 2_000.0, t[0].rate_rps);
        let cfg = ServeConfig::default();
        assert_eq!(run_serving(&t, &w, &cfg), run_serving(&t, &w, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let rate = t[0].rate_rps;
        let a = run_serving(&t, &wl(1, 1_000.0, rate), &ServeConfig::default());
        let b = run_serving(&t, &wl(2, 1_000.0, rate), &ServeConfig::default());
        assert_ne!(a, b);
    }

    #[test]
    fn conservation_completed_plus_rejected_is_submitted() {
        // Overload so shedding actually happens.
        let t = vec![tenant_at_load(3.0, 10.0)];
        let w = wl(9, 3_000.0, t[0].rate_rps);
        let cfg = ServeConfig {
            queue_depth: 16,
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        let s = &r.tenants[0];
        assert!(s.rejected > 0, "overload should shed");
        assert_eq!(s.completed + s.rejected, s.submitted);
        assert_eq!(r.total_completed + r.total_rejected, s.submitted);
        assert_eq!(s.histogram.count(), s.completed);
    }

    #[test]
    fn max_batch_one_disables_batching() {
        let t = vec![tenant_at_load(0.5, 10.0)];
        let w = wl(4, 500.0, t[0].rate_rps);
        let cfg = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        assert_eq!(r.batches, r.total_completed);
        assert!((r.mean_batch_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overload_forms_larger_batches_than_light_load() {
        let make = |load: f64| {
            let t = vec![tenant_at_load(load, 10.0)];
            let w = wl(8, 2_000.0, t[0].rate_rps);
            run_serving(&t, &w, &ServeConfig::default())
        };
        let light = make(0.05);
        let heavy = make(2.0);
        assert!(heavy.mean_batch_size > light.mean_batch_size);
        assert!(heavy.mean_batch_size > 2.0, "{}", heavy.mean_batch_size);
    }

    #[test]
    fn latency_stats_are_ordered_and_bounded_below_by_service() {
        let t = vec![tenant_at_load(0.7, 10.0)];
        let w = wl(13, 2_000.0, t[0].rate_rps);
        let r = run_serving(&t, &w, &ServeConfig::default());
        let s = &r.tenants[0];
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        // A request can't finish faster than a single-sample service.
        assert!(s.p50_ns >= t[0].deployment.service_ns(1));
        assert!(s.mean_ns > 0.0);
        assert!(s.peak_queue_depth >= 1);
        assert!(s.mean_queue_depth >= 0.0);
    }

    #[test]
    fn second_replica_relieves_an_overloaded_tenant() {
        let t = vec![tenant_at_load(1.5, 4.0)];
        let w = wl(21, 3_000.0, t[0].rate_rps);
        let one = run_serving(&t, &w, &ServeConfig::default());
        let two = run_serving(
            &t,
            &w,
            &ServeConfig {
                replicas: 2,
                ..ServeConfig::default()
            },
        );
        assert!(two.tenants[0].p99_ns < one.tenants[0].p99_ns);
        assert!(two.tenants[0].slo_attainment > one.tenants[0].slo_attainment);
        assert!(two.makespan_ns <= one.makespan_ns);
    }

    #[test]
    fn generous_slo_is_met_under_light_load() {
        let t = vec![tenant_at_load(0.1, 1_000.0)];
        let w = wl(2, 300.0, t[0].rate_rps);
        let r = run_serving(&t, &w, &ServeConfig::default());
        assert_eq!(r.tenants[0].rejected, 0);
        assert!((r.tenants[0].slo_attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let mut spec = tenant_at_load(0.5, 10.0);
        spec.rate_rps = 0.0;
        let w = Workload {
            seed: 0,
            horizon_ns: 1_000_000,
        };
        let r = run_serving(&[spec], &w, &ServeConfig::default());
        assert_eq!(r.total_completed, 0);
        assert_eq!(r.batches, 0);
        assert_eq!(r.tenants[0].p99_ns, 0);
        assert_eq!(r.makespan_ns, w.horizon_ns);
        assert!((r.tenants[0].slo_attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_tenants_share_capacity_fairly_by_arrival_order() {
        let a = tenant_at_load(0.4, 10.0);
        let b = tenant_at_load(0.4, 10.0);
        let w = wl(31, 2_000.0, a.rate_rps + b.rate_rps);
        let r = run_serving(&[a, b], &w, &ServeConfig::default());
        assert_eq!(r.tenants.len(), 2);
        // Symmetric tenants under a shared replica: both make progress.
        assert!(r.tenants[0].completed > 0);
        assert!(r.tenants[1].completed > 0);
    }

    /// A failure spec aggressive enough to kill batches mid-service.
    fn flaky(seed: u64) -> crate::failure::FailureSpec {
        crate::failure::FailureSpec {
            mtbf_ns: 2_000_000,
            mttr_ns: 400_000,
            seed,
        }
    }

    #[test]
    fn failure_free_runs_report_zero_failure_accounting() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(42, 1_000.0, t[0].rate_rps);
        let r = run_serving(&t, &w, &ServeConfig::default());
        let s = &r.tenants[0];
        assert_eq!(s.failed, 0);
        assert_eq!(s.retried, 0);
        assert_eq!(s.degraded_completed, 0);
        assert_eq!(s.killed_batches, 0);
        assert_eq!(r.total_failed, 0);
        assert_eq!(r.total_retried, 0);
        assert!(r.replica_downtime_ns.iter().all(|&d| d == 0));
    }

    #[test]
    fn failures_cause_kills_retries_and_conserve_requests() {
        let t = vec![tenant_at_load(0.7, 10.0), tenant_at_load(0.3, 10.0)];
        let w = wl(5, 2_000.0, t[0].rate_rps + t[1].rate_rps);
        let cfg = ServeConfig {
            replicas: 2,
            failures: Some(flaky(17)),
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        let killed: u64 = r.tenants.iter().map(|s| s.killed_batches).sum();
        assert!(killed > 0, "aggressive failures should kill batches");
        assert!(r.total_retried > 0);
        assert!(r.replica_downtime_ns.iter().any(|&d| d > 0));
        for s in &r.tenants {
            assert_eq!(
                s.completed + s.rejected + s.failed,
                s.submitted,
                "request conservation for {}",
                s.name
            );
            assert!(s.degraded_completed <= s.completed);
        }
        // Retried-but-completed requests surface as degraded service.
        let degraded: u64 = r.tenants.iter().map(|s| s.degraded_completed).sum();
        assert!(degraded > 0);
    }

    #[test]
    fn zero_retry_deadline_drops_every_killed_request() {
        let t = vec![tenant_at_load(0.7, 10.0)];
        let w = wl(5, 1_500.0, t[0].rate_rps);
        let cfg = ServeConfig {
            failures: Some(flaky(17)),
            retry_deadline_ns: 0,
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        let s = &r.tenants[0];
        assert!(s.killed_batches > 0);
        assert!(s.failed > 0, "no deadline headroom: kills become failures");
        assert_eq!(s.retried, 0);
        assert_eq!(s.degraded_completed, 0);
        assert_eq!(s.completed + s.rejected + s.failed, s.submitted);
    }

    #[test]
    fn failure_runs_are_deterministic_and_seed_sensitive() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(8, 1_000.0, t[0].rate_rps);
        let mk = |seed| ServeConfig {
            replicas: 2,
            failures: Some(flaky(seed)),
            ..ServeConfig::default()
        };
        let a = run_serving(&t, &w, &mk(1));
        let b = run_serving(&t, &w, &mk(1));
        let c = run_serving(&t, &w, &mk(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// A drift spec strong enough to corrupt results within the short
    /// test horizons (serving horizons are tens of milliseconds, so the
    /// per-ms growth must be steep to matter).
    fn drifting(trip_milli: u64, remap: bool) -> HealthSpec {
        HealthSpec {
            err_ppm_per_ms: 30_000,
            trip_milli,
            remap,
            ..HealthSpec::default()
        }
    }

    #[test]
    fn zero_drift_health_is_indistinguishable_from_disabled() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(42, 1_500.0, t[0].rate_rps);
        let off = run_serving(&t, &w, &ServeConfig::default());
        let on = run_serving(
            &t,
            &w,
            &ServeConfig {
                health: Some(HealthSpec {
                    err_ppm_per_ms: 0,
                    ..HealthSpec::default()
                }),
                ..ServeConfig::default()
            },
        );
        assert_eq!(off, on, "a drift-free monitor must not perturb the run");
    }

    #[test]
    fn unchecked_drift_erodes_accuracy_and_slo_attainment() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(7, 2_000.0, t[0].rate_rps);
        let clean = run_serving(&t, &w, &ServeConfig::default());
        let r = run_serving(
            &t,
            &w,
            &ServeConfig {
                // Breaker threshold above 1000 milli: can never trip.
                health: Some(drifting(1001, false)),
                ..ServeConfig::default()
            },
        );
        let s = &r.tenants[0];
        assert!(s.errored > 0, "steep drift must corrupt results");
        assert!(s.errored <= s.completed);
        assert_eq!(s.completed + s.rejected, s.submitted);
        assert!(s.slo_attainment < clean.tenants[0].slo_attainment);
        assert!(r.clean_fraction() < 1.0);
        assert!(r.replica_trips.iter().all(|&n| n == 0));
        assert_eq!(r.total_errored, s.errored);
    }

    #[test]
    fn recovery_trips_the_breaker_and_restores_accuracy() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(7, 2_000.0, t[0].rate_rps);
        let cfg = |spec| ServeConfig {
            health: Some(spec),
            ..ServeConfig::default()
        };
        let unchecked = run_serving(&t, &w, &cfg(drifting(1001, false)));
        let recovered = run_serving(&t, &w, &cfg(drifting(60, true)));
        assert!(
            recovered.replica_trips.iter().sum::<u64>() > 0,
            "the breaker must trip under steep drift"
        );
        let repairs: u64 = recovered.replica_recals.iter().sum::<u64>()
            + recovered.replica_remaps.iter().sum::<u64>();
        assert!(repairs > 0, "trips must lead to recoveries");
        assert!(recovered.replica_recovery_ns.iter().sum::<u64>() > 0);
        assert!(recovered.total_errored < unchecked.total_errored);
        assert!(recovered.clean_fraction() > unchecked.clean_fraction());
        assert!(
            recovered.tenants[0].slo_attainment > unchecked.tenants[0].slo_attainment,
            "recovery pauses must cost less than unchecked corruption"
        );
    }

    #[test]
    fn hopeless_recalibration_escalates_to_remap() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(7, 1_500.0, t[0].rate_rps);
        let r = run_serving(
            &t,
            &w,
            &ServeConfig {
                health: Some(HealthSpec {
                    recal_success_milli: 0,
                    max_retries: 2,
                    ..drifting(60, true)
                }),
                ..ServeConfig::default()
            },
        );
        let trips: u64 = r.replica_trips.iter().sum();
        assert!(trips > 0);
        assert_eq!(r.replica_recals.iter().sum::<u64>(), 0);
        assert_eq!(r.replica_remaps.iter().sum::<u64>(), trips);
    }

    #[test]
    fn health_runs_are_deterministic_and_seed_sensitive() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(8, 1_000.0, t[0].rate_rps);
        let mk = |seed| ServeConfig {
            health: Some(HealthSpec {
                seed,
                ..drifting(60, true)
            }),
            ..ServeConfig::default()
        };
        let a = run_serving(&t, &w, &mk(1));
        let b = run_serving(&t, &w, &mk(1));
        let c = run_serving(&t, &w, &mk(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn failures_never_improve_service() {
        let t = vec![tenant_at_load(0.8, 6.0)];
        let w = wl(3, 2_000.0, t[0].rate_rps);
        let healthy = run_serving(&t, &w, &ServeConfig::default());
        let failing = run_serving(
            &t,
            &w,
            &ServeConfig {
                failures: Some(flaky(9)),
                ..ServeConfig::default()
            },
        );
        assert!(failing.tenants[0].slo_attainment <= healthy.tenants[0].slo_attainment);
        assert!(failing.makespan_ns >= healthy.makespan_ns);
        assert!(failing.total_completed <= healthy.total_completed);
    }
}
