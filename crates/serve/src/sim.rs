//! The discrete-event serving core and its single-threaded driver.
//!
//! The simulation is expressed as a recurrence rather than an explicit
//! event heap: [`SimCore::next_batch`] is called with the free time of
//! the earliest-free replica and returns the next dispatched batch,
//! internally ingesting every arrival (admission or shedding) that
//! precedes the dispatch. Because free times are non-decreasing across
//! calls, candidate dispatch times only improve as arrivals are ingested,
//! and ingestion is gated by the current best candidate, the resulting
//! event order is causally consistent — and identical no matter whether
//! the recurrence is evaluated by one thread ([`run_serving`]) or by one
//! worker per replica ([`run_serving_parallel`](crate::parallel)).

use crate::report::{assemble_report, ServingReport};
use crate::workload::{merge_arrivals, Arrival, TenantSpec, Workload};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Scheduler knobs for one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of identical accelerator instances.
    pub replicas: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before its tenant
    /// becomes dispatchable regardless of batch fill [ns].
    pub batch_window_ns: u64,
    /// Per-tenant bound on waiting requests; arrivals beyond it are shed.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 1,
            max_batch: 8,
            batch_window_ns: 1_000_000,
            queue_depth: 64,
        }
    }
}

impl ServeConfig {
    pub(crate) fn validate(&self) {
        assert!(self.replicas >= 1, "need at least one replica");
        assert!(self.max_batch >= 1, "need at least one request per batch");
        assert!(self.queue_depth >= 1, "need queue space for one request");
    }
}

/// A batch the scheduler decided to dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BatchJob {
    /// Dispatch sequence number (0-based, gap-free).
    pub index: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Dispatch timestamp [ns].
    pub start_ns: u64,
    /// Arrival timestamp of each request in the batch, FIFO order.
    pub arrivals: Vec<u64>,
}

/// A completed batch with everything report assembly needs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BatchResult {
    pub index: usize,
    pub tenant: usize,
    pub completion_ns: u64,
    pub arrivals: Vec<u64>,
    pub energy_nj: f64,
}

/// Queue/admission state shared by both execution modes.
pub(crate) struct SimCore {
    arrivals: Vec<Arrival>,
    cursor: usize,
    window_ns: u64,
    max_batch: usize,
    depth_bound: usize,
    queues: Vec<VecDeque<u64>>,
    next_index: usize,
    pub submitted: Vec<u64>,
    pub rejected: Vec<u64>,
    pub peak_depth: Vec<usize>,
    depth_area: Vec<u128>,
    last_event: Vec<u64>,
}

impl SimCore {
    pub fn new(n_tenants: usize, arrivals: Vec<Arrival>, cfg: &ServeConfig) -> Self {
        SimCore {
            arrivals,
            cursor: 0,
            window_ns: cfg.batch_window_ns,
            max_batch: cfg.max_batch,
            depth_bound: cfg.queue_depth,
            queues: vec![VecDeque::new(); n_tenants],
            next_index: 0,
            submitted: vec![0; n_tenants],
            rejected: vec![0; n_tenants],
            peak_depth: vec![0; n_tenants],
            depth_area: vec![0; n_tenants],
            last_event: vec![0; n_tenants],
        }
    }

    /// Earliest dispatch `(at, head_arrival, tenant)` for tenant `t`
    /// given the earliest replica free time, if `t` has queued work.
    fn candidate(&self, t: usize, free_ns: u64) -> Option<(u64, u64, usize)> {
        let q = &self.queues[t];
        let head = *q.front()?;
        let mut ready = head.saturating_add(self.window_ns);
        if q.len() >= self.max_batch {
            // The batch filled when its max_batch-th request arrived.
            ready = ready.min(q[self.max_batch - 1]);
        }
        Some((ready.max(free_ns), head, t))
    }

    /// Best dispatch over all tenants: min (time, head age, tenant id).
    fn best_candidate(&self, free_ns: u64) -> Option<(u64, u64, usize)> {
        (0..self.queues.len())
            .filter_map(|t| self.candidate(t, free_ns))
            .min()
    }

    /// Advance the time-weighted queue-depth integral for tenant `t` up
    /// to `now` (per-tenant event times are monotone).
    fn track_depth(&mut self, t: usize, now: u64) {
        let dt = now.saturating_sub(self.last_event[t]);
        self.depth_area[t] += self.queues[t].len() as u128 * dt as u128;
        self.last_event[t] = now;
    }

    /// Admit or shed one arrival.
    fn ingest(&mut self, a: Arrival) {
        self.submitted[a.tenant] += 1;
        if self.queues[a.tenant].len() >= self.depth_bound {
            self.rejected[a.tenant] += 1;
            return;
        }
        self.track_depth(a.tenant, a.time_ns);
        self.queues[a.tenant].push_back(a.time_ns);
        let depth = self.queues[a.tenant].len();
        if depth > self.peak_depth[a.tenant] {
            self.peak_depth[a.tenant] = depth;
        }
    }

    /// The scheduling recurrence: given the minimum replica free time,
    /// ingest arrivals up to the next dispatch and return that batch, or
    /// `None` once the workload is drained. Idempotent at exhaustion.
    pub fn next_batch(&mut self, free_ns: u64) -> Option<BatchJob> {
        loop {
            let best = self.best_candidate(free_ns);
            let next = self.arrivals.get(self.cursor).copied();
            match (best, next) {
                (None, None) => return None,
                (None, Some(a)) => {
                    self.cursor += 1;
                    self.ingest(a);
                }
                (Some((at, _, t)), next) => {
                    if let Some(a) = next {
                        // Arrivals at the dispatch instant join first.
                        if a.time_ns <= at {
                            self.cursor += 1;
                            self.ingest(a);
                            continue;
                        }
                    }
                    let n = self.queues[t].len().min(self.max_batch);
                    self.track_depth(t, at);
                    let arrivals: Vec<u64> = self.queues[t].drain(..n).collect();
                    let index = self.next_index;
                    self.next_index += 1;
                    return Some(BatchJob {
                        index,
                        tenant: t,
                        start_ns: at,
                        arrivals,
                    });
                }
            }
        }
    }

    /// Mean waiting-queue depth for tenant `t` over `[0, makespan_ns]`.
    pub fn mean_depth(&self, t: usize, makespan_ns: u64) -> f64 {
        if makespan_ns == 0 {
            return 0.0;
        }
        self.depth_area[t] as f64 / makespan_ns as f64
    }
}

/// The earliest-free replica (ties: lowest id).
pub(crate) fn argmin_replica(free: &[u64]) -> usize {
    let mut best = 0;
    for (r, &f) in free.iter().enumerate().skip(1) {
        if f < free[best] {
            best = r;
        }
    }
    best
}

/// Turn a dispatched batch into its completed result.
pub(crate) fn finish_batch(spec: &TenantSpec, job: BatchJob, completion_ns: u64) -> BatchResult {
    let n = job.arrivals.len();
    BatchResult {
        index: job.index,
        tenant: job.tenant,
        completion_ns,
        arrivals: job.arrivals,
        energy_nj: n as f64 * spec.deployment.energy_per_request_nj(),
    }
}

/// Run the serving simulation on a single thread.
///
/// Same (tenants, workload, config) ⇒ bit-identical [`ServingReport`].
pub fn run_serving(tenants: &[TenantSpec], wl: &Workload, cfg: &ServeConfig) -> ServingReport {
    cfg.validate();
    let mut core = SimCore::new(tenants.len(), merge_arrivals(tenants, wl), cfg);
    let mut free = vec![0u64; cfg.replicas];
    let mut batches = Vec::new();
    loop {
        let r = argmin_replica(&free);
        let Some(job) = core.next_batch(free[r]) else {
            break;
        };
        let spec = &tenants[job.tenant];
        let completion = job.start_ns + spec.deployment.service_ns(job.arrivals.len());
        free[r] = completion;
        batches.push(finish_batch(spec, job, completion));
    }
    assemble_report(tenants, wl, cfg, &core, &batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn lenet_deployment() -> Deployment {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        Deployment::compile("lenet", &m, &strategy, &AccelConfig::default())
    }

    /// One tenant at `load` × single-replica capacity.
    fn tenant_at_load(load: f64, slo_mult: f64) -> TenantSpec {
        let d = lenet_deployment();
        let rate = load * d.max_rate_rps();
        let slo = (slo_mult * d.pipeline.fill_ns) as u64;
        TenantSpec::new("lenet", d, rate, slo.max(1))
    }

    fn wl(seed: u64, n_requests: f64, rate_rps: f64) -> Workload {
        Workload {
            seed,
            horizon_ns: (n_requests / rate_rps * 1e9) as u64,
        }
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let w = wl(42, 2_000.0, t[0].rate_rps);
        let cfg = ServeConfig::default();
        assert_eq!(run_serving(&t, &w, &cfg), run_serving(&t, &w, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let t = vec![tenant_at_load(0.6, 10.0)];
        let rate = t[0].rate_rps;
        let a = run_serving(&t, &wl(1, 1_000.0, rate), &ServeConfig::default());
        let b = run_serving(&t, &wl(2, 1_000.0, rate), &ServeConfig::default());
        assert_ne!(a, b);
    }

    #[test]
    fn conservation_completed_plus_rejected_is_submitted() {
        // Overload so shedding actually happens.
        let t = vec![tenant_at_load(3.0, 10.0)];
        let w = wl(9, 3_000.0, t[0].rate_rps);
        let cfg = ServeConfig {
            queue_depth: 16,
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        let s = &r.tenants[0];
        assert!(s.rejected > 0, "overload should shed");
        assert_eq!(s.completed + s.rejected, s.submitted);
        assert_eq!(r.total_completed + r.total_rejected, s.submitted);
        assert_eq!(s.histogram.count(), s.completed);
    }

    #[test]
    fn max_batch_one_disables_batching() {
        let t = vec![tenant_at_load(0.5, 10.0)];
        let w = wl(4, 500.0, t[0].rate_rps);
        let cfg = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let r = run_serving(&t, &w, &cfg);
        assert_eq!(r.batches, r.total_completed);
        assert!((r.mean_batch_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overload_forms_larger_batches_than_light_load() {
        let make = |load: f64| {
            let t = vec![tenant_at_load(load, 10.0)];
            let w = wl(8, 2_000.0, t[0].rate_rps);
            run_serving(&t, &w, &ServeConfig::default())
        };
        let light = make(0.05);
        let heavy = make(2.0);
        assert!(heavy.mean_batch_size > light.mean_batch_size);
        assert!(heavy.mean_batch_size > 2.0, "{}", heavy.mean_batch_size);
    }

    #[test]
    fn latency_stats_are_ordered_and_bounded_below_by_service() {
        let t = vec![tenant_at_load(0.7, 10.0)];
        let w = wl(13, 2_000.0, t[0].rate_rps);
        let r = run_serving(&t, &w, &ServeConfig::default());
        let s = &r.tenants[0];
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        // A request can't finish faster than a single-sample service.
        assert!(s.p50_ns >= t[0].deployment.service_ns(1));
        assert!(s.mean_ns > 0.0);
        assert!(s.peak_queue_depth >= 1);
        assert!(s.mean_queue_depth >= 0.0);
    }

    #[test]
    fn second_replica_relieves_an_overloaded_tenant() {
        let t = vec![tenant_at_load(1.5, 4.0)];
        let w = wl(21, 3_000.0, t[0].rate_rps);
        let one = run_serving(&t, &w, &ServeConfig::default());
        let two = run_serving(
            &t,
            &w,
            &ServeConfig {
                replicas: 2,
                ..ServeConfig::default()
            },
        );
        assert!(two.tenants[0].p99_ns < one.tenants[0].p99_ns);
        assert!(two.tenants[0].slo_attainment > one.tenants[0].slo_attainment);
        assert!(two.makespan_ns <= one.makespan_ns);
    }

    #[test]
    fn generous_slo_is_met_under_light_load() {
        let t = vec![tenant_at_load(0.1, 1_000.0)];
        let w = wl(2, 300.0, t[0].rate_rps);
        let r = run_serving(&t, &w, &ServeConfig::default());
        assert_eq!(r.tenants[0].rejected, 0);
        assert!((r.tenants[0].slo_attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let mut spec = tenant_at_load(0.5, 10.0);
        spec.rate_rps = 0.0;
        let w = Workload {
            seed: 0,
            horizon_ns: 1_000_000,
        };
        let r = run_serving(&[spec], &w, &ServeConfig::default());
        assert_eq!(r.total_completed, 0);
        assert_eq!(r.batches, 0);
        assert_eq!(r.tenants[0].p99_ns, 0);
        assert_eq!(r.makespan_ns, w.horizon_ns);
        assert!((r.tenants[0].slo_attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_tenants_share_capacity_fairly_by_arrival_order() {
        let a = tenant_at_load(0.4, 10.0);
        let b = tenant_at_load(0.4, 10.0);
        let w = wl(31, 2_000.0, a.rate_rps + b.rate_rps);
        let r = run_serving(&[a, b], &w, &ServeConfig::default());
        assert_eq!(r.tenants.len(), 2);
        // Symmetric tenants under a shared replica: both make progress.
        assert!(r.tenants[0].completed > 0);
        assert!(r.tenants[1].completed > 0);
    }
}
