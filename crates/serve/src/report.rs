//! Serving observability: per-tenant latency/SLO/energy statistics and
//! the aggregate [`ServingReport`] both execution modes assemble from the
//! same batch stream.

use crate::failure::FailurePlan;
use crate::sim::{BatchResult, HealthEvent, ServeConfig, SimCore};
use crate::workload::{TenantSpec, Workload};
use serde::{Deserialize, Serialize};

/// Number of power-of-two latency bins (covers the full `u64` range).
const HIST_BINS: usize = 64;

/// Fixed log₂-binned latency histogram: bin `i` counts latencies in
/// `[2^i, 2^(i+1))` ns (bin 0 also absorbs 0 ns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bin request counts.
    pub bins: Vec<u64>,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            bins: vec![0; HIST_BINS],
        }
    }

    /// Record one request latency [ns].
    pub fn record(&mut self, latency_ns: u64) {
        let bin = if latency_ns <= 1 {
            0
        } else {
            (latency_ns.ilog2() as usize).min(HIST_BINS - 1)
        };
        self.bins[bin] += 1;
    }

    /// Total recorded requests.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fold another histogram's counts into this one (bin-wise sum) —
    /// how per-window telemetry aggregates into run-level distributions.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    /// Nearest-rank quantile estimate: the inclusive upper bound of the
    /// bin holding the rank-⌈q·n⌉ latency (so the true latency is ≤ the
    /// returned value). Returns 0 for an empty histogram; `q` is clamped
    /// to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        autohet_obs::metrics::quantile_from_bins(&self.bins, q)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Serving statistics for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant label (from [`TenantSpec`]).
    pub name: String,
    /// Arrivals generated for this tenant (admitted + shed).
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Requests dropped because an instance failure interrupted them past
    /// their retry deadline.
    pub failed: u64,
    /// Retry events: requests returned to the queue by killed batches
    /// (one request can retry more than once).
    pub retried: u64,
    /// Completed requests that survived at least one instance failure —
    /// served, but through the degraded (retry) path.
    pub degraded_completed: u64,
    /// Completed requests whose result was corrupted by conductance
    /// drift (see [`HealthSpec`](crate::sim::HealthSpec)); they count as
    /// SLO violations.
    #[serde(default)]
    pub errored: u64,
    /// Batches killed mid-service by an instance failure.
    pub killed_batches: u64,
    /// Batches dispatched for this tenant (completed ones only).
    pub batches: u64,
    /// Nearest-rank latency percentiles over completed requests [ns].
    pub p50_ns: u64,
    /// 95th percentile latency [ns].
    pub p95_ns: u64,
    /// 99th percentile latency [ns].
    pub p99_ns: u64,
    /// Worst completed-request latency [ns].
    pub max_ns: u64,
    /// Mean latency over completed requests [ns].
    pub mean_ns: f64,
    /// The tenant's latency objective [ns].
    pub slo_ns: u64,
    /// Fraction of *submitted* requests completed within the SLO (shed,
    /// failed, and drift-errored requests count as violations); 1.0 for
    /// an idle tenant.
    pub slo_attainment: f64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Total inference energy charged to this tenant [nJ].
    pub energy_nj: f64,
    /// Largest waiting-queue depth observed.
    pub peak_queue_depth: u64,
    /// Time-weighted mean waiting-queue depth over the run.
    pub mean_queue_depth: f64,
    /// DRR fair-share weight from the spec (1 for FIFO runs, which
    /// ignore it).
    #[serde(default)]
    pub weight: u64,
    /// Busy replica-time this tenant's completed batches consumed [ns]
    /// — the "attained service" the fairness index is computed over.
    #[serde(default)]
    pub attained_service_ns: u64,
    /// Log₂-binned latency distribution.
    pub histogram: LatencyHistogram,
}

/// Telemetry aggregated over one time window of a serving run (see
/// [`ServeConfig::telemetry_windows`]). Windows tile `[0, horizon)`
/// equally; the last window additionally absorbs the drain tail past the
/// horizon. Submission-side columns (`submitted`, `rejected`,
/// `peak_queue_depth`) bucket by arrival time; completion-side columns
/// (`completed`, `batches`, latency, SLO) bucket by batch completion
/// time.
///
/// [`ServeConfig::telemetry_windows`]: crate::sim::ServeConfig::telemetry_windows
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index (0-based).
    pub index: usize,
    /// Window start [ns].
    pub start_ns: u64,
    /// Nominal window end [ns] (exclusive; the last window also covers
    /// the drain past this instant).
    pub end_ns: u64,
    /// Arrivals generated in the window, all tenants.
    pub submitted: u64,
    /// Arrivals shed by admission control in the window.
    pub rejected: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Batches completed in the window.
    pub batches: u64,
    /// Mean requests per completed batch (0.0 for an idle window).
    pub mean_batch_size: f64,
    /// Mean batch fill as a fraction of `max_batch`.
    pub batch_occupancy: f64,
    /// Fraction of the window's completed requests that met their
    /// tenant's SLO; 1.0 for a window with no completions.
    pub slo_attainment: f64,
    /// Time-weighted aggregate queue depth (all tenants) over the window.
    pub mean_queue_depth: f64,
    /// Largest aggregate queued-request count observed in the window.
    pub peak_queue_depth: u64,
    /// Replica downtime overlapping the window, summed over replicas [ns].
    pub downtime_ns: u64,
    /// Jain's fairness index over per-tenant attained service per unit
    /// weight within the window (tenants idle in the window are
    /// excluded; 1.0 when at most one tenant was active).
    #[serde(default)]
    pub fairness_index: f64,
    /// Latency distribution of the window's completed requests.
    pub histogram: LatencyHistogram,
}

/// Aggregate outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Workload master seed.
    pub seed: u64,
    /// Arrival-generation horizon [ns].
    pub horizon_ns: u64,
    /// Virtual time at which the last batch completed (≥ horizon).
    pub makespan_ns: u64,
    /// Replicas simulated.
    pub replicas: usize,
    /// Total batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Completed requests across all tenants.
    pub total_completed: u64,
    /// Shed requests across all tenants.
    pub total_rejected: u64,
    /// Failure-dropped requests across all tenants.
    pub total_failed: u64,
    /// Retry events across all tenants.
    pub total_retried: u64,
    /// Drift-errored completions across all tenants.
    #[serde(default)]
    pub total_errored: u64,
    /// Per-replica downtime within `[0, makespan_ns)` [ns].
    pub replica_downtime_ns: Vec<u64>,
    /// Per-replica circuit-breaker trips (health monitoring).
    #[serde(default)]
    pub replica_trips: Vec<u64>,
    /// Per-replica successful online recalibrations.
    #[serde(default)]
    pub replica_recals: Vec<u64>,
    /// Per-replica remap escalations.
    #[serde(default)]
    pub replica_remaps: Vec<u64>,
    /// Per-replica time spent paused in drift recovery [ns].
    #[serde(default)]
    pub replica_recovery_ns: Vec<u64>,
    /// Total inference energy [nJ].
    pub total_energy_nj: f64,
    /// Completed requests per second of virtual time, all tenants.
    pub aggregate_throughput_rps: f64,
    /// Jain's fairness index over per-tenant attained service per unit
    /// weight (idle tenants excluded; 1.0 = perfectly proportional).
    #[serde(default)]
    pub fairness_index: f64,
    /// Per-tenant breakdown, in tenant declaration order.
    pub tenants: Vec<TenantStats>,
    /// Per-window telemetry; empty unless `telemetry_windows > 0` was
    /// configured.
    #[serde(default)]
    pub windows: Vec<WindowStats>,
    /// Timestamped replica-health transitions (trips, recals, remaps,
    /// failed recoveries) in recurrence order — the raw material of the
    /// alert timeline. Empty without a
    /// [`HealthSpec`](crate::sim::HealthSpec).
    #[serde(default)]
    pub health_events: Vec<HealthEvent>,
}

impl ServingReport {
    /// Fraction of completed requests whose results were clean (not
    /// drift-errored); 1.0 when nothing completed. The serving factor of
    /// the lifetime campaign's accuracy axis.
    pub fn clean_fraction(&self) -> f64 {
        if self.total_completed == 0 {
            1.0
        } else {
            (self.total_completed - self.total_errored) as f64 / self.total_completed as f64
        }
    }

    /// The whole run's latency distribution: every tenant's histogram
    /// merged into one.
    pub fn overall_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for t in &self.tenants {
            h.merge(&t.histogram);
        }
        h
    }
}

/// Jain's fairness index `J = (Σx)² / (n·Σx²)` over the non-zero
/// allocation samples `x`: 1.0 when every sample is equal (perfect
/// proportional fairness), approaching `1/n` when one sample dominates.
/// Returns 1.0 for an empty or all-zero input (nothing to be unfair
/// about).
pub fn jain_index<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0f64;
    let mut sq = 0.0f64;
    for x in xs {
        n += 1;
        sum += x;
        sq += x * x;
    }
    if n == 0 || sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Fold an index-ordered batch stream plus the core's admission counters
/// into the final report. Both execution modes call this with the same
/// inputs, so their reports are bit-identical.
pub(crate) fn assemble_report(
    tenants: &[TenantSpec],
    wl: &Workload,
    cfg: &ServeConfig,
    core: &SimCore,
    batches: &[BatchResult],
    plan: &FailurePlan,
) -> ServingReport {
    let _span = autohet_obs::trace::span("serve.assemble_report");
    let n = tenants.len();
    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut hist = vec![LatencyHistogram::new(); n];
    let mut energy = vec![0.0f64; n];
    let mut tenant_batches = vec![0u64; n];
    let mut degraded = vec![0u64; n];
    let mut errored = vec![0u64; n];
    let mut met = vec![0u64; n];
    let mut attained = vec![0u64; n];
    let mut makespan = wl.horizon_ns;
    let mut total_requests = 0u64;
    for (i, b) in batches.iter().enumerate() {
        // Killed batches consume dispatch indices without completing, so
        // the completed stream is strictly increasing, not gap-free.
        debug_assert!(
            i == 0 || batches[i - 1].index < b.index,
            "batch stream must be index-ordered"
        );
        for (ri, r) in b.requests.iter().enumerate() {
            let l = b.completion_ns - r.arrival_ns;
            latencies[b.tenant].push(l);
            hist[b.tenant].record(l);
            if r.retries > 0 {
                degraded[b.tenant] += 1;
            }
            let err = b.errored.get(ri).copied().unwrap_or(false);
            if err {
                errored[b.tenant] += 1;
            }
            if l <= tenants[b.tenant].slo_ns && !err {
                met[b.tenant] += 1;
            }
        }
        energy[b.tenant] += b.energy_nj;
        tenant_batches[b.tenant] += 1;
        attained[b.tenant] += b.service_ns;
        total_requests += b.requests.len() as u64;
        makespan = makespan.max(b.completion_ns);
    }
    let span_s = makespan as f64 * 1e-9;
    let stats: Vec<TenantStats> = (0..n)
        .map(|t| {
            let lat = &mut latencies[t];
            lat.sort_unstable();
            let completed = lat.len() as u64;
            let submitted = core.submitted[t];
            let sum: u128 = lat.iter().map(|&l| l as u128).sum();
            TenantStats {
                name: tenants[t].name.clone(),
                submitted,
                completed,
                rejected: core.rejected[t],
                failed: core.failed[t],
                retried: core.retried[t],
                degraded_completed: degraded[t],
                errored: errored[t],
                killed_batches: core.killed_batches[t],
                batches: tenant_batches[t],
                p50_ns: percentile(lat, 0.50),
                p95_ns: percentile(lat, 0.95),
                p99_ns: percentile(lat, 0.99),
                max_ns: lat.last().copied().unwrap_or(0),
                mean_ns: if completed == 0 {
                    0.0
                } else {
                    sum as f64 / completed as f64
                },
                slo_ns: tenants[t].slo_ns,
                slo_attainment: if submitted == 0 {
                    1.0
                } else {
                    met[t] as f64 / submitted as f64
                },
                throughput_rps: if span_s > 0.0 {
                    completed as f64 / span_s
                } else {
                    0.0
                },
                energy_nj: energy[t],
                peak_queue_depth: core.peak_depth[t] as u64,
                mean_queue_depth: core.mean_depth(t, makespan),
                weight: tenants[t].weight.max(1),
                attained_service_ns: attained[t],
                histogram: hist[t].clone(),
            }
        })
        .collect();
    let total_completed: u64 = stats.iter().map(|s| s.completed).sum();
    let windows = assemble_windows(tenants, cfg, core, batches, plan, makespan);
    ServingReport {
        seed: wl.seed,
        horizon_ns: wl.horizon_ns,
        makespan_ns: makespan,
        replicas: cfg.replicas,
        batches: batches.len() as u64,
        mean_batch_size: if batches.is_empty() {
            0.0
        } else {
            total_requests as f64 / batches.len() as f64
        },
        total_completed,
        total_rejected: stats.iter().map(|s| s.rejected).sum(),
        total_failed: stats.iter().map(|s| s.failed).sum(),
        total_retried: stats.iter().map(|s| s.retried).sum(),
        total_errored: stats.iter().map(|s| s.errored).sum(),
        replica_downtime_ns: (0..cfg.replicas)
            .map(|r| plan.downtime_ns(r, makespan))
            .collect(),
        replica_trips: core.health.iter().map(|h| h.trips).collect(),
        replica_recals: core.health.iter().map(|h| h.recals).collect(),
        replica_remaps: core.health.iter().map(|h| h.remaps).collect(),
        replica_recovery_ns: core.health.iter().map(|h| h.recovery_ns).collect(),
        total_energy_nj: energy.iter().sum(),
        aggregate_throughput_rps: if span_s > 0.0 {
            total_completed as f64 / span_s
        } else {
            0.0
        },
        fairness_index: jain_index(
            stats
                .iter()
                .filter(|s| s.submitted > 0)
                .map(|s| s.attained_service_ns as f64 / s.weight as f64),
        ),
        tenants: stats,
        windows,
        health_events: core.health_events.clone(),
    }
}

/// Bucket the batch stream and the core's window accumulators into
/// [`WindowStats`]. Everything here is a pure function of inputs both
/// execution modes agree on (the index-sorted batch stream, the core's
/// recurrence-ordered accumulators, the pre-generated failure plan), so
/// windows are bit-identical across drivers.
fn assemble_windows(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    core: &SimCore,
    batches: &[BatchResult],
    plan: &FailurePlan,
    makespan: u64,
) -> Vec<WindowStats> {
    let n_win = core.win_submitted.len();
    if n_win == 0 {
        return Vec::new();
    }
    let win_len = core.window_len_ns();
    let mut completed = vec![0u64; n_win];
    let mut win_batches = vec![0u64; n_win];
    let mut met = vec![0u64; n_win];
    let mut hist = vec![LatencyHistogram::new(); n_win];
    let mut attained = vec![vec![0u64; tenants.len()]; n_win];
    for b in batches {
        let w = core.window_of(b.completion_ns);
        win_batches[w] += 1;
        attained[w][b.tenant] += b.service_ns;
        for (ri, r) in b.requests.iter().enumerate() {
            let l = b.completion_ns - r.arrival_ns;
            completed[w] += 1;
            if l <= tenants[b.tenant].slo_ns && !b.errored.get(ri).copied().unwrap_or(false) {
                met[w] += 1;
            }
            hist[w].record(l);
        }
    }
    (0..n_win)
        .map(|w| {
            let start_ns = w as u64 * win_len;
            let end_ns = start_ns + win_len;
            // The last window runs to the makespan: its depth integral
            // and downtime include the drain tail.
            let covered_to = if w + 1 == n_win {
                makespan.max(end_ns)
            } else {
                end_ns
            };
            let span = (covered_to - start_ns).max(1);
            WindowStats {
                index: w,
                start_ns,
                end_ns,
                submitted: core.win_submitted[w],
                rejected: core.win_rejected[w],
                completed: completed[w],
                batches: win_batches[w],
                mean_batch_size: if win_batches[w] == 0 {
                    0.0
                } else {
                    completed[w] as f64 / win_batches[w] as f64
                },
                batch_occupancy: if win_batches[w] == 0 {
                    0.0
                } else {
                    completed[w] as f64 / (win_batches[w] * cfg.max_batch as u64) as f64
                },
                slo_attainment: if completed[w] == 0 {
                    1.0
                } else {
                    met[w] as f64 / completed[w] as f64
                },
                mean_queue_depth: core.win_depth_area[w] as f64 / span as f64,
                peak_queue_depth: core.win_peak_depth[w] as u64,
                downtime_ns: (0..cfg.replicas)
                    .map(|r| plan.downtime_in(r, start_ns, covered_to))
                    .sum(),
                fairness_index: jain_index(
                    attained[w]
                        .iter()
                        .zip(tenants)
                        .filter(|(&a, _)| a > 0)
                        .map(|(&a, spec)| a as f64 / spec.weight.max(1) as f64),
                ),
                histogram: hist[w].clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_are_powers_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX);
        assert_eq!(h.bins[0], 2); // 0 and 1
        assert_eq!(h.bins[1], 2); // 2 and 3
        assert_eq!(h.bins[10], 1); // 1024
        assert_eq!(h.bins[63], 1); // u64::MAX
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(1000); // bin 9 = [512, 1024)
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1023);
        }
    }

    #[test]
    fn all_equal_samples_collapse_to_one_bin() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(5_000); // bin 12 = [4096, 8192)
        }
        assert_eq!(h.quantile(0.5), 8191);
        assert_eq!(h.quantile(0.999), 8191);
        // Quantiles are upper bounds and out-of-range q is clamped.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for l in [10u64, 100, 1_000, 10_000] {
            h.record(l);
        }
        assert!(h.quantile(0.5) >= 100);
        assert!(h.quantile(1.0) >= 10_000);
        assert!(h.quantile(0.25) >= 10);
        // Monotone in q.
        assert!(h.quantile(0.25) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
    }

    #[test]
    fn merge_sums_bins_and_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        a.record(1000);
        b.record(1000);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bins[3], 1); // 10
        assert_eq!(a.bins[9], 2); // both 1000s
        assert_eq!(a.bins[63], 1);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
